//! Backend race: the native CPU tier vs its per-tuple reference, plus
//! the advisor's FPGA/CPU crossover on a real system.
//!
//! Two measurements gate this PR's perf claim:
//!
//! 1. **SoA lockstep vs per-tuple interpreter.** The CPU backend runs
//!    the same deploy-time `LoweredProgram` the simulated FPGA runs —
//!    a struct-of-arrays lockstep executor — instead of interpreting
//!    micro-ops tuple-at-a-time. One training epoch over a large batch
//!    is timed on both tiers; the lowered executor must clear **2×**
//!    (1.2× in `DANA_SMOKE=1` mode, where the batch is small and cache
//!    effects flatten the gap).
//! 2. **Advisor crossover.** A full `Dana` system is calibrated
//!    (measuring this host's actual lane rate), then the same query is
//!    EXPLAINed below and above the computed break-even — the advisor
//!    must pick CPU below and FPGA above. The measured wall time of the
//!    CPU run and the simulated time of the FPGA run are recorded.
//!
//! Full runs append one JSON record per line to `BENCH_backend.json`
//! at the repo root.

use std::sync::Arc;
use std::time::Instant;

use dana::exec::initial_models;
use dana::prelude::*;
use dana_bench::{series_path, BenchRecord};
use dana_compiler::{schedule_hdfg, ScheduleParams};
use dana_dsl::zoo::{self, Algorithm, DenseParams};
use dana_engine::{ExecutionEngine, ModelStore};
use dana_hdfg::translate;
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema, TupleBatch};

const PAGE: usize = 32 * 1024;
const FEATURES: usize = 16;
const THREADS: u16 = 16;

fn synth_rows(n: usize, width: usize) -> Vec<Vec<f32>> {
    (0..n)
        .map(|k| {
            (0..width)
                .map(|i| {
                    let h = (k as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add((i as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
                    let h = (h ^ (h >> 31)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    ((h >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
                })
                .collect()
        })
        .collect()
}

fn dense_heap(n: usize) -> HeapFile {
    let truth: Vec<f32> = (0..FEATURES).map(|i| 0.25 * i as f32 - 1.5).collect();
    let mut b =
        HeapFileBuilder::new(Schema::training(FEATURES), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..FEATURES)
            .map(|i| (((k * 13 + i * 7) % 29) as f32 - 14.0) / 14.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, s)).unwrap();
    }
    b.finish()
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let n = if smoke { 40_000 } else { 400_000 };

    // ---- race 1: lowered SoA executor vs per-tuple interpreter ----------
    let spec = zoo::spec_for(
        Algorithm::Logistic,
        DenseParams {
            n_features: FEATURES,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 1,
        },
    )
    .unwrap();
    let design = schedule_hdfg(
        &translate(&spec),
        ScheduleParams {
            num_threads: THREADS,
            acs_per_thread: 2,
            slots_per_au: 4096,
            bus_lanes: 2,
        },
    )
    .unwrap();
    let engine = Arc::new(ExecutionEngine::new(design).unwrap());
    let rows = synth_rows(n, FEATURES + 1);
    let batch = TupleBatch::from_rows(FEATURES + 1, &rows);

    let time_epoch = |f: &dyn Fn(&mut ModelStore)| -> (ModelStore, f64) {
        // Warm-up pass, then the timed pass — both from fresh models so
        // the two tiers do identical arithmetic.
        let design = engine.design();
        let mut warm = ModelStore::new(design, initial_models(design)).unwrap();
        f(&mut warm);
        let mut store = ModelStore::new(design, initial_models(design)).unwrap();
        let t = Instant::now();
        f(&mut store);
        (store, t.elapsed().as_secs_f64() * 1e3)
    };
    let (soa_store, cpu_soa_ms) = time_epoch(&|store| {
        engine.run_training_batch(&batch, store).unwrap();
    });
    let (ref_store, per_tuple_ms) = time_epoch(&|store| {
        engine
            .run_training_interpreter_batch(&batch, store)
            .unwrap();
    });
    assert_eq!(soa_store, ref_store, "tiers must stay bit-identical");
    let soa_speedup = per_tuple_ms / cpu_soa_ms;
    println!("=== backend_race: one epoch over {n} × {FEATURES} ({THREADS} threads) ===");
    println!(
        "SoA lockstep {cpu_soa_ms:.1} ms | per-tuple interpreter {per_tuple_ms:.1} ms \
         ({soa_speedup:.2}x)"
    );

    // ---- race 2: advisor crossover on a calibrated system ---------------
    let mut db = Dana::default_system();
    db.create_table("probe", dense_heap(2_000)).unwrap();
    db.deploy(
        &zoo::spec_for(
            Algorithm::Linear,
            DenseParams {
                n_features: FEATURES,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs: 4,
            },
        )
        .unwrap(),
        "probe",
    )
    .unwrap();
    db.calibrate_backend_advisor();
    let measured_rate = db.hardware_profile().cpu_lane_ops_per_second;
    let cmp = db
        .explain_sql("EXPLAIN SELECT * FROM dana.linearR('probe');")
        .unwrap();
    let break_even = cmp.break_even_rows.unwrap_or(u64::MAX);
    println!("calibrated lane rate {measured_rate:.2e} ops/s, break-even ~{break_even} rows");

    let below = (break_even as usize / 20).clamp(256, 50_000);
    let above = (break_even as usize * 2).min(2_000_000);
    db.create_table("small", dense_heap(below)).unwrap();
    db.create_table("large", dense_heap(above)).unwrap();
    let small = db
        .execute("SELECT * FROM dana.linearR('small');")
        .unwrap()
        .report;
    let large = db
        .execute("SELECT * FROM dana.linearR('large');")
        .unwrap()
        .report;
    assert_eq!(small.backend, BackendKind::Cpu, "below break-even → CPU");
    assert_eq!(large.backend, BackendKind::Fpga, "above break-even → FPGA");
    let cpu_wall = small.timing.wall_seconds.unwrap();
    let fpga_sim = large.timing.total_seconds;
    println!(
        "crossover: {below} rows ran on Cpu (wall {:.2} ms), {above} rows on Fpga \
         (sim {:.2} ms)",
        cpu_wall * 1e3,
        fpga_sim * 1e3
    );

    BenchRecord::new("backend_race", per_tuple_ms, cpu_soa_ms, smoke)
        .int("tuples", n as u64)
        .int("features", FEATURES as u64)
        .int("threads", THREADS as u64)
        .num("measured_lane_rate", measured_rate)
        .int("break_even_rows", break_even)
        .num("cpu_wall_s", cpu_wall)
        .num("fpga_sim_s", fpga_sim)
        .append(&series_path("backend"));

    // Acceptance: the CPU tier's lowered executor must clear 2× over the
    // per-tuple reference (1.2× in smoke mode).
    let floor = if smoke { 1.2 } else { 2.0 };
    assert!(
        soa_speedup >= floor,
        "SoA speedup {soa_speedup:.2}x is below the {floor}x acceptance floor"
    );
    println!("backend race passed: SoA ≥ {floor}x per-tuple, advisor crossover verified.");
}
