//! Criterion microbenchmarks: simulator-component throughput.
//!
//! These measure the *reproduction's* own performance (how fast the
//! simulators run on the host), plus ablation comparisons for design
//! choices DESIGN.md calls out: Strider page-walk throughput, engine
//! cycles/tuple, scheduler cost, buffer-pool hit path, end-to-end
//! small-scale training, and — the headline of the streaming refactor —
//! the flat `TupleBatch` data path against the retained per-tuple
//! `Vec<Vec<f32>>` reference path on the same extraction+train loop.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, Criterion};

use dana::prelude::*;
use dana_compiler::{schedule_hdfg, ScheduleParams};
use dana_dsl::zoo::{linear_regression, logistic_regression, DenseParams};
use dana_engine::{ExecutionEngine, ModelStore};
use dana_hdfg::translate;
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPool, BufferPoolConfig, DiskModel, HeapFileBuilder, PageId, TupleBatch};
use dana_strider::{AccessEngine, AccessEngineConfig};
use dana_workloads::{generate, workload};

fn strider_page_walk(c: &mut Criterion) {
    let w = workload("Remote Sensing LR").unwrap().scaled(0.01);
    let table = generate(&w, 32 * 1024, 1).unwrap();
    let engine = AccessEngine::for_table(
        *table.heap.layout(),
        table.heap.schema().clone(),
        AccessEngineConfig::new(
            8,
            dana_fpga::Clock::FPGA_150MHZ,
            dana_fpga::AxiLink::with_bandwidth(2.5e9),
        ),
    );
    let page = table.heap.page_bytes(0).unwrap().to_vec();
    let width = table.heap.schema().len();
    let mut batch = TupleBatch::with_capacity(width, table.heap.layout().capacity as usize);
    c.bench_function("strider_extract_32k_page", |b| {
        b.iter(|| {
            batch.clear();
            engine
                .extract_page_into(black_box(&page), &mut batch)
                .unwrap()
        })
    });
}

/// The streaming refactor's acceptance benchmark: one extraction+train
/// micro loop (every page extracted, one training epoch) through (a) the
/// retained per-tuple `Vec<Vec<f32>>` reference path and (b) the flat
/// `TupleBatch` path *on the streaming interpreter*. Same math, same
/// pages, same executor tier — only the data representation differs, so
/// this A/B keeps isolating the data-path change. A third arm runs the
/// deploy-time-lowered SoA executor on the same loop; the executor-tier
/// A/B lives in `benches/engine_hot_loop.rs`.
fn data_path_ablation(c: &mut Criterion) {
    let w = workload("Remote Sensing LR").unwrap().scaled(0.01); // 5810 × 54
    let table = generate(&w, 32 * 1024, 17).unwrap();
    let access = AccessEngine::for_table(
        *table.heap.layout(),
        table.heap.schema().clone(),
        AccessEngineConfig::new(
            8,
            dana_fpga::Clock::FPGA_150MHZ,
            dana_fpga::AxiLink::with_bandwidth(2.5e9),
        ),
    );
    let spec = logistic_regression(DenseParams {
        n_features: 54,
        merge_coef: 8,
        epochs: 1,
        learning_rate: 0.1,
    })
    .unwrap();
    let design = schedule_hdfg(
        &translate(&spec),
        ScheduleParams {
            num_threads: 8,
            acs_per_thread: 2,
            slots_per_au: 4096,
            bus_lanes: 2,
        },
    )
    .unwrap();
    let engine = ExecutionEngine::new(design.clone()).unwrap();
    let heap = &table.heap;
    let width = heap.schema().len();

    let mut group = c.benchmark_group("data_path");
    group.bench_function("per_tuple_reference", |b| {
        b.iter(|| {
            let mut tuples: Vec<Vec<f32>> = Vec::with_capacity(heap.tuple_count() as usize);
            for p in 0..heap.page_count() {
                let (rows, _) = access
                    .extract_page_rows(heap.page_bytes(p).unwrap())
                    .unwrap();
                tuples.extend(rows.into_iter().map(|t| t.values));
            }
            let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
            engine
                .run_training_rows(black_box(&tuples), &mut store)
                .unwrap();
            store
        })
    });
    group.bench_function("flat_batch", |b| {
        b.iter(|| {
            let mut batch = TupleBatch::with_capacity(width, heap.tuple_count() as usize);
            for p in 0..heap.page_count() {
                access
                    .extract_page_into(heap.page_bytes(p).unwrap(), &mut batch)
                    .unwrap();
            }
            let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
            engine
                .run_training_interpreter_batch(black_box(&batch), &mut store)
                .unwrap();
            store
        })
    });
    group.bench_function("flat_batch_lowered", |b| {
        b.iter(|| {
            let mut batch = TupleBatch::with_capacity(width, heap.tuple_count() as usize);
            for p in 0..heap.page_count() {
                access
                    .extract_page_into(heap.page_bytes(p).unwrap(), &mut batch)
                    .unwrap();
            }
            let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
            engine
                .run_training_batch(black_box(&batch), &mut store)
                .unwrap();
            store
        })
    });
    group.finish();
}

fn engine_training_throughput(c: &mut Criterion) {
    let spec = logistic_regression(DenseParams {
        n_features: 54,
        merge_coef: 8,
        epochs: 1,
        learning_rate: 0.1,
    })
    .unwrap();
    let g = translate(&spec);
    let design = schedule_hdfg(
        &g,
        ScheduleParams {
            num_threads: 8,
            acs_per_thread: 2,
            slots_per_au: 4096,
            bus_lanes: 2,
        },
    )
    .unwrap();
    let engine = ExecutionEngine::new(design.clone()).unwrap();
    let tuples = TupleBatch::from_rows(
        55,
        (0..256).map(|k| {
            let mut t: Vec<f32> = (0..54).map(|i| ((k + i) % 7) as f32 / 7.0).collect();
            t.push(if k % 2 == 0 { 1.0 } else { 0.0 });
            t
        }),
    );
    c.bench_function("engine_epoch_256x54_logistic", |b| {
        b.iter(|| {
            let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
            engine
                .run_training_batch(black_box(&tuples), &mut store)
                .unwrap()
        })
    });
}

fn scheduler_cost(c: &mut Criterion) {
    let spec = linear_regression(DenseParams {
        n_features: 500,
        merge_coef: 16,
        epochs: 1,
        learning_rate: 0.1,
    })
    .unwrap();
    let g = translate(&spec);
    c.bench_function("schedule_500_feature_linreg", |b| {
        b.iter(|| {
            schedule_hdfg(
                black_box(&g),
                ScheduleParams {
                    num_threads: 16,
                    acs_per_thread: 4,
                    slots_per_au: 4096,
                    bus_lanes: 2,
                },
            )
            .unwrap()
        })
    });
}

fn bufferpool_hit_path(c: &mut Criterion) {
    let w = workload("Patient").unwrap().scaled(0.02);
    let table = generate(&w, 32 * 1024, 2).unwrap();
    let mut pool = BufferPool::new(BufferPoolConfig {
        pool_bytes: (table.heap.page_count() as u64 + 2) * 32 * 1024,
        page_size: 32 * 1024,
    });
    pool.prewarm(dana_storage::HeapId(0), &table.heap).unwrap();
    let disk = DiskModel::ssd();
    let pages = table.heap.page_count();
    c.bench_function("bufferpool_scan_hits", |b| {
        b.iter(|| {
            for page_no in 0..pages {
                let (f, _) = pool
                    .fetch(
                        PageId::new(dana_storage::HeapId(0), page_no),
                        &table.heap,
                        &disk,
                    )
                    .unwrap();
                black_box(pool.frame_bytes(f).len());
                pool.unpin(f);
            }
        })
    });
}

fn end_to_end_small(c: &mut Criterion) {
    let w = workload("Remote Sensing LR").unwrap().scaled(0.002);
    let table = generate(&w, 32 * 1024, 3).unwrap();
    let mut db = Dana::new(
        dana_fpga::FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 64 << 20,
            page_size: 32 * 1024,
        },
        DiskModel::instant(),
    );
    db.create_table("rs", table.heap).unwrap();
    let mut spec_w = w.clone();
    spec_w.epochs = 1;
    let spec = spec_w.spec();
    db.deploy(&spec, "rs").unwrap();
    c.bench_function("dana_end_to_end_1162x54", |b| {
        b.iter(|| db.run_udf(black_box("logisticR"), "rs").unwrap())
    });
}

fn ablation_page_layouts(c: &mut Criterion) {
    // DESIGN.md design-choice ablation: ascending vs descending tuple
    // placement should extract at the same rate (the ISA handles both).
    let mut group = c.benchmark_group("strider_layout_ablation");
    for dir in [TupleDirection::Ascending, TupleDirection::Descending] {
        let schema = dana_storage::Schema::training(54);
        let mut b = HeapFileBuilder::new(schema.clone(), 32 * 1024, dir).unwrap();
        for k in 0..500 {
            b.insert(&Tuple::training(&[k as f32; 54], k as f32))
                .unwrap();
        }
        let heap = b.finish();
        let engine = AccessEngine::for_table(
            *heap.layout(),
            schema,
            AccessEngineConfig::new(
                4,
                dana_fpga::Clock::FPGA_150MHZ,
                dana_fpga::AxiLink::with_bandwidth(2.5e9),
            ),
        );
        let page = heap.page_bytes(0).unwrap().to_vec();
        let mut batch = TupleBatch::with_capacity(55, heap.layout().capacity as usize);
        group.bench_function(format!("{dir:?}"), |b| {
            b.iter(|| {
                batch.clear();
                engine
                    .extract_page_into(black_box(&page), &mut batch)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = strider_page_walk,
    data_path_ablation,
    engine_training_throughput,
    scheduler_cost,
    bufferpool_hit_path,
    end_to_end_small,
    ablation_page_layouts
);
criterion_main!(benches);
