//! Intra-query parallelism acceptance benchmark: gang-parallel PREDICT
//! vs serial PREDICT on one large table.
//!
//! One cold-cache scoring query over a wide logistic-regression table,
//! serial and with gangs of 2 and 4 — the intra-query twin of the
//! `throughput` bench (which scales across queries; this one scales a
//! *single* query). Timing is the *simulated* end-to-end `DanaTiming`
//! every figure uses: a gang's epoch costs its critical member (shards
//! stream their page ranges simultaneously), so a 4-gang's cold scan
//! reads a quarter of the table per member. Host wall-clock is printed
//! alongside for reference (shards also run on real OS threads).
//!
//! Correctness gate: the 4-shard prediction stream must be bit-identical
//! to the serial one. Acceptance gate: 4-shard PREDICT ≥ 2.5× serial
//! (≥ 1.3× in `DANA_SMOKE=1` mode, where the table is small enough that
//! the per-query setup constants eat most of the scan). Full runs append
//! one JSON record per line to `BENCH_parallel.json` at the repo root.

use std::time::Instant;

use dana::prelude::*;
use dana_bench::{series_path, BenchRecord};
use dana_server::{SystemCore, SystemCoreConfig};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

fn logistic_heap(n: usize, d: usize) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.25 * i as f32 - 1.5).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 13 + i * 7) % 29) as f32 - 14.0) / 14.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, (s > 0.0) as u8 as f32))
            .unwrap();
    }
    b.finish()
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (n, d) = if smoke { (150_000, 16) } else { (800_000, 16) };
    let spec = dana_dsl::zoo::logistic_regression(dana_dsl::zoo::DenseParams {
        n_features: d,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 2,
    })
    .unwrap();

    let core = SystemCore::new(SystemCoreConfig {
        fpga: FpgaSpec::vu9p(),
        pool: BufferPoolConfig {
            pool_bytes: 1 << 30,
            page_size: PAGE,
        },
        ..Default::default()
    });
    let heap = logistic_heap(n, d);
    let pages = heap.page_count();
    core.create_table("clicks", heap).unwrap();
    core.deploy(&spec, "clicks").unwrap();

    println!("=== parallel_scaling: cold-cache PREDICT over {n} × {d} ({pages} pages) ===");

    // ---- sharded training (trains the model PREDICT binds) --------------
    core.clear_cache();
    let train_serial = core.run_udf("logisticR", "clicks").unwrap();
    core.clear_cache();
    let train4 = core.run_udf_sharded("logisticR", "clicks", 4).unwrap();
    let train_speedup = train_serial.timing.total_seconds / train4.timing.total_seconds;
    println!(
        "train   serial sim {:.4}s | 4-shard sim {:.4}s ({train_speedup:.2}x)",
        train_serial.timing.total_seconds, train4.timing.total_seconds
    );
    // Rebind the serial model so every scoring run uses identical values.
    core.clear_cache();
    let _ = core.run_udf("logisticR", "clicks").unwrap();

    // ---- scoring: serial vs gangs, all cold-cache ------------------------
    let run_predict = |dest: &str, shards: Option<u16>| {
        core.clear_cache();
        let wall = Instant::now();
        let report = match shards {
            None => core.predict("logisticR", "clicks", dest).unwrap(),
            Some(k) => core
                .predict_sharded("logisticR", "clicks", dest, k)
                .unwrap(),
        };
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        (report, wall_ms)
    };
    let (serial, serial_wall) = run_predict("p_serial", None);
    let (p2, _) = run_predict("p_2", Some(2));
    let (p4, wall4) = run_predict("p_4", Some(4));

    // Correctness gate: bit-identical materialized predictions.
    let read = |name: &str| -> Vec<f32> {
        let heap = core.table_snapshot(name).unwrap();
        let col = heap.schema().len() - 1;
        heap.scan_batch().unwrap().rows().map(|r| r[col]).collect()
    };
    assert_eq!(
        read("p_serial"),
        read("p_4"),
        "4-shard PREDICT must be bit-identical to serial"
    );

    let s2 = serial.timing.total_seconds / p2.timing.total_seconds;
    let s4 = serial.timing.total_seconds / p4.timing.total_seconds;
    println!(
        "predict serial sim {:.4}s (wall {serial_wall:.0} ms)",
        serial.timing.total_seconds
    );
    println!(
        "predict 2-shard sim {:.4}s ({s2:.2}x) | 4-shard sim {:.4}s ({s4:.2}x, wall {wall4:.0} ms)",
        p2.timing.total_seconds, p4.timing.total_seconds
    );

    BenchRecord::new(
        "parallel_scaling",
        serial.timing.total_seconds * 1e3,
        p4.timing.total_seconds * 1e3,
        smoke,
    )
    .int("tuples", n as u64)
    .int("features", d as u64)
    .int("pages", pages as u64)
    .num("shards2_sim_s", p2.timing.total_seconds)
    .num("speedup_2", s2)
    .num("serial_wall_ms", serial_wall)
    .num("shards4_wall_ms", wall4)
    .num("train_serial_sim_s", train_serial.timing.total_seconds)
    .num("train_shards4_sim_s", train4.timing.total_seconds)
    .num("train_speedup_4", train_speedup)
    .append(&series_path("parallel"));

    // Acceptance: 4-shard PREDICT must clear 2.5× over serial (relaxed
    // to 1.3× in smoke mode, where per-query constants dominate the
    // deliberately small scan).
    let floor = if smoke { 1.3 } else { 2.5 };
    assert!(
        s4 >= floor,
        "4-shard scoring speedup {s4:.2}x is below the {floor}x acceptance floor"
    );
    assert!(s2 > 1.0, "2 shards must beat serial: {s2:.2}x");
}
