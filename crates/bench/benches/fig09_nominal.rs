//! Figure 9 reproduction: synthetic-nominal (S/N) speedups, warm and cold.

use dana::SystemParams;
use dana_bench::{paper, print_comparison, run_systems, within_band, Row};
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();
    for (warm, title, table) in [
        (
            true,
            "Figure 9a: S/N datasets, warm cache",
            &paper::FIG9_WARM,
        ),
        (
            false,
            "Figure 9b: S/N datasets, cold cache",
            &paper::FIG9_COLD,
        ),
    ] {
        let mut gp_rows = Vec::new();
        let mut dana_rows = Vec::new();
        for (name, paper_gp, paper_dana) in table.iter() {
            let w = workload(name).expect("registry row");
            let t = run_systems(&w, warm, &p);
            gp_rows.push(Row {
                name: name.to_string(),
                paper: *paper_gp,
                ours: t.gp_speedup(),
            });
            dana_rows.push(Row {
                name: name.to_string(),
                paper: *paper_dana,
                ours: t.dana_speedup(),
            });
        }
        print_comparison(&format!("{title} — Greenplum speedup"), "x", &gp_rows);
        print_comparison(&format!("{title} — DAnA speedup"), "x", &dana_rows);
        println!(
            "shape check: DAnA > 1x everywhere: {}   rows within 3x: {:.0}%",
            dana_rows.iter().all(|r| r.ours > 1.0),
            100.0 * within_band(&dana_rows, 3.0)
        );
    }
}
