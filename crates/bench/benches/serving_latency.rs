//! Online-serving acceptance benchmark: coalesced vs singleton point
//! dispatch, plus sustained concurrent QPS with latency percentiles.
//!
//! One trained linear accelerator behind a single worker. Two parts:
//!
//! * **Acceptance — dispatch amortization.** The fixed per-request cost
//!   (admission, worker hand-off, leasing, reply plumbing) is what
//!   coalescing exists to amortize. We time N single-row `PredictPoint`
//!   calls through the full server front door against one coalesced
//!   N-row call scoring the identical rows, best-of-iters. Per-row
//!   predictions are batch-composition-independent, so both shapes
//!   return bit-identical values (asserted). The coalesced form must
//!   clear 2× per-request throughput.
//! * **Reported — sustained concurrent QPS.** A fleet of closed-loop
//!   client threads drives the serving tier with the batcher in
//!   singleton mode (window zero) and in coalescing mode; both QPS
//!   figures and the coalescing run's client-observed p50/p99 land in
//!   the record. Closed-loop lockstep is the batcher's *worst* case
//!   (every round convoys on the slowest thread wakeup), so these
//!   numbers are informational, not gated.
//!
//! The cache is disabled throughout so every request pays a real
//! dispatch. Full runs append to `BENCH_serve.json`; smoke runs
//! (`DANA_SMOKE=1`) assert but do not record.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dana::prelude::*;
use dana_bench::{series_path, BenchRecord};
use dana_dsl::zoo::{self, DenseParams};
use dana_serve::{BatcherConfig, CacheConfig, ServeConfig, ServeTier};
use dana_server::{
    AdmissionConfig, DanaServer, QueryRequest, SchedPolicy, ServerConfig, SystemCoreConfig,
};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;
const D: usize = 12;

fn dense_heap(n: usize) -> HeapFile {
    let truth: Vec<f32> = (0..D).map(|i| 0.35 * i as f32 - 0.9).collect();
    let mut b = HeapFileBuilder::new(Schema::training(D), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..D)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn server() -> Arc<DanaServer> {
    Arc::new(DanaServer::start(ServerConfig {
        accelerators: 1,
        workers: 1,
        admission: AdmissionConfig {
            max_queued: 4096,
            policy: SchedPolicy::Fifo,
        },
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: PAGE,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        },
    }))
}

/// Drives `clients × per_client` point predictions through `tier` and
/// returns (total wall ms, sorted per-request latencies in µs, one
/// spot-check prediction for row 0).
fn drive(
    tier: &Arc<ServeTier>,
    udf: &str,
    rows: &[Vec<f32>],
    clients: usize,
    per_client: usize,
) -> (f64, Vec<f64>, f32) {
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::new();
    for c in 0..clients {
        let tier = Arc::clone(tier);
        let barrier = Arc::clone(&barrier);
        let udf = udf.to_string();
        let rows = rows.to_vec();
        handles.push(std::thread::spawn(move || {
            let session = tier.server().open_session(&format!("bench-{c}"));
            barrier.wait();
            let mut lat = Vec::with_capacity(per_client);
            let mut spot = 0.0f32;
            for i in 0..per_client {
                let row = &rows[(c * per_client + i) % rows.len()];
                let t = Instant::now();
                let reply = tier.predict_point(session, &udf, row).unwrap();
                lat.push(t.elapsed().as_secs_f64() * 1e6);
                if (c * per_client + i).is_multiple_of(rows.len()) {
                    spot = reply.prediction;
                }
            }
            (lat, spot)
        }));
    }
    barrier.wait();
    let start = Instant::now();
    let mut lat = Vec::with_capacity(clients * per_client);
    let mut spot = 0.0f32;
    for h in handles {
        let (l, s) = h.join().unwrap();
        lat.extend(l);
        if s != 0.0 {
            spot = s;
        }
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (wall_ms, lat, spot)
}

fn pct(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx]
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (clients, per_client) = if smoke { (16, 10) } else { (32, 100) };

    let srv = server();
    srv.create_table("t", dense_heap(600)).unwrap();
    let spec = zoo::linear_regression(DenseParams {
        n_features: D,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 6,
    })
    .unwrap();
    let udf = spec.name.clone();
    srv.deploy(&spec, "t").unwrap();
    let session = srv.open_session("train");
    srv.call(
        session,
        QueryRequest::RunUdf {
            udf: udf.clone(),
            table: "t".to_string(),
            shards: None,
        },
    )
    .unwrap();
    let rows: Vec<Vec<f32>> = srv
        .core()
        .table_snapshot("t")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .take(64)
        .map(|r| r.to_vec())
        .collect();

    // ---- acceptance: dispatch amortization ------------------------------
    // N single-row calls vs one N-row call over identical rows, through
    // the full server front door, best-of-iters.
    let batch_rows = 16usize;
    let iters = if smoke { 10 } else { 50 };
    let amortize = Arc::new(ServeTier::new(
        Arc::clone(&srv),
        ServeConfig {
            cache: CacheConfig { capacity: 0 },
            batcher: BatcherConfig {
                max_batch: 1,
                window: Duration::ZERO,
            },
        },
    ));
    let probe: Vec<Vec<f32>> = rows.iter().take(batch_rows).cloned().collect();

    let one_by_one: Vec<f32> = probe
        .iter()
        .map(|r| amortize.predict_point(session, &udf, r).unwrap().prediction)
        .collect();
    let together = amortize.predict_rows(session, &udf, probe.clone()).unwrap();
    assert_eq!(
        one_by_one, together,
        "coalescing must not change a single prediction bit"
    );

    let best_ms = |f: &mut dyn FnMut()| {
        let mut best = f64::INFINITY;
        for _ in 0..iters {
            let t = Instant::now();
            f();
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let singleton_ms = best_ms(&mut || {
        for r in &probe {
            std::hint::black_box(amortize.predict_point(session, &udf, r).unwrap());
        }
    });
    let coalesced_ms = best_ms(&mut || {
        std::hint::black_box(amortize.predict_rows(session, &udf, probe.clone()).unwrap());
    });
    let speedup = singleton_ms / coalesced_ms;
    println!(
        "=== serving_latency: {batch_rows} rows, singleton vs coalesced dispatch, best of {iters} ==="
    );
    println!("singleton dispatches {singleton_ms:>8.3} ms");
    println!("coalesced dispatch   {coalesced_ms:>8.3} ms   ({speedup:.2}×)");

    // ---- reported: sustained concurrent QPS + latency percentiles -------
    let total = clients * per_client;
    let tier_for = |window: Duration| {
        Arc::new(ServeTier::new(
            Arc::clone(&srv),
            ServeConfig {
                cache: CacheConfig { capacity: 0 },
                batcher: BatcherConfig {
                    max_batch: clients,
                    window,
                },
            },
        ))
    };
    let singleton = tier_for(Duration::ZERO);
    let (singleton_drive_ms, _, _) = drive(&singleton, &udf, &rows, clients, per_client);
    let coalescing = tier_for(Duration::from_micros(100));
    let (coalesced_drive_ms, coalesced_lat, _) =
        drive(&coalescing, &udf, &rows, clients, per_client);

    let qps_singleton = total as f64 / (singleton_drive_ms / 1e3);
    let qps_coalesced = total as f64 / (coalesced_drive_ms / 1e3);
    println!(
        "{clients} closed-loop clients × {per_client}: singleton {qps_singleton:>8.0} qps, \
         coalescing {qps_coalesced:>8.0} qps, p50 {:.1} µs, p99 {:.1} µs",
        pct(&coalesced_lat, 0.50),
        pct(&coalesced_lat, 0.99)
    );
    let snap = srv.stats_snapshot(Some("serving"));
    println!(
        "coalesced dispatches: {}",
        snap.get("serving", "coalesced_dispatches").unwrap_or(0.0)
    );

    BenchRecord::new("serving_latency", singleton_ms, coalesced_ms, smoke)
        .int("batch_rows", batch_rows as u64)
        .int("iters", iters as u64)
        .num("qps_singleton", qps_singleton)
        .num("qps_coalesced", qps_coalesced)
        .num("p50_us", pct(&coalesced_lat, 0.50))
        .num("p99_us", pct(&coalesced_lat, 0.99))
        .int("clients", clients as u64)
        .int("requests", total as u64)
        .append(&series_path("serve"));

    // Acceptance: one coalesced dispatch must beat N singleton
    // dispatches ≥2× on a full run (relaxed in smoke mode on noisy
    // shared runners).
    let floor = if smoke { 1.3 } else { 2.0 };
    assert!(
        speedup >= floor,
        "coalesced dispatch speedup {speedup:.2}× is below the {floor}× acceptance floor"
    );
}
