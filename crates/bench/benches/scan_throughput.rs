//! Scan-tier acceptance benchmark: cold-cache pushdown scan vs full scan.
//!
//! One scoring query (EVALUATE, the scan-dominated statement) over a
//! large linear-regression table clustered on `x0`, full-width vs with a
//! `WHERE x0 < t` predicate selecting ~10% of the rows. The filtered run
//! streams the compressed sidecar — zone maps skip every page whose
//! `x0` range cannot match, the survivors decompress on fetch with the
//! decompress term charged to the cycle model — so the cold-cache
//! simulated time must drop ≥ 2× at 10% selectivity (≥ 1.2× in
//! `DANA_SMOKE=1` mode, where the table is small and per-query setup
//! constants dominate). Host wall-clock is printed for reference.
//!
//! Correctness gates: the filtered metric must equal evaluating a
//! pre-materialized filtered table bit-exactly, and the decompress cost
//! must be visible in the filtered run's `DanaTiming`. Full runs append
//! one JSON record per line to `BENCH_scan.json` at the repo root.

use std::time::Instant;

use dana::prelude::*;
use dana_bench::{series_path, BenchRecord};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

/// Rows clustered on `x0` (ascending 0..1 with insertion order — the
/// natural layout of a time- or key-sorted fact table), so the zone maps
/// concentrate the `x0 < t` survivors in the leading pages.
fn clustered_rows(n: usize, d: usize) -> Vec<(Vec<f32>, f32)> {
    let truth: Vec<f32> = (0..d).map(|i| 0.2 * i as f32 - 0.7).collect();
    (0..n)
        .map(|k| {
            let mut x: Vec<f32> = (0..d)
                .map(|i| (((k * 13 + i * 7) % 29) as f32 - 14.0) / 14.0)
                .collect();
            x[0] = k as f32 / n as f32;
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            (x, y)
        })
        .collect()
}

fn heap_of(rows: &[(Vec<f32>, f32)], d: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for (x, y) in rows {
        b.insert(&Tuple::training(x, *y)).unwrap();
    }
    b.finish()
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (n, d) = if smoke { (60_000, 12) } else { (400_000, 12) };
    let rows = clustered_rows(n, d);
    let kept: Vec<_> = rows.iter().filter(|(x, _)| x[0] < 0.1).cloned().collect();
    let selectivity = kept.len() as f64 / n as f64;

    let mut db = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 1 << 30,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    );
    let heap = heap_of(&rows, d);
    let pages = heap.page_count();
    db.create_table("facts", heap).unwrap();
    db.create_table("facts_10pct", heap_of(&kept, d)).unwrap();
    let spec = dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
        n_features: d,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 1,
    })
    .unwrap();
    db.deploy(&spec, "facts").unwrap();
    db.run_udf("linearR", "facts").unwrap();

    println!(
        "=== scan_throughput: cold-cache EVALUATE over {n} × {d} ({pages} pages, \
         {:.1}% selectivity) ===",
        selectivity * 100.0
    );

    let mut run = |sql: &str| {
        db.clear_cache();
        let wall = Instant::now();
        let out = db.execute_statement(sql).unwrap();
        let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
        match out {
            dana::StatementOutcome::Evaluate(e) => (e, wall_ms),
            other => panic!("expected EVALUATE, got {other:?}"),
        }
    };
    let (full, full_wall) = run("EVALUATE dana.linearR('facts');");
    let (filtered, filtered_wall) = run("EVALUATE dana.linearR('facts') WHERE x0 < 0.1;");
    let (reference, _) = run("EVALUATE dana.linearR('facts_10pct');");

    // Correctness: virtual materialization, bit-exact.
    assert_eq!(
        filtered.value, reference.value,
        "filtered EVALUATE must equal the pre-materialized table"
    );
    assert_eq!(filtered.rows_scored, kept.len() as u64);
    // The codec's cost is charged, not hidden: the filtered run's cycle
    // model carries a nonzero decompress term, the full scan none.
    assert!(
        filtered.timing.decompress_seconds > 0.0,
        "decompress cost must be visible in the cycle model"
    );
    assert_eq!(full.timing.decompress_seconds, 0.0);

    let scan = db.stats_snapshot(Some("scan"));
    let stat = |name: &str| {
        scan.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.value)
            .unwrap_or(0.0)
    };
    let ratio = stat("compression_ratio");
    let skipped = stat("pages_skipped");

    let speedup = full.timing.total_seconds / filtered.timing.total_seconds;
    println!(
        "full     sim {:.4}s (wall {full_wall:.0} ms)",
        full.timing.total_seconds
    );
    println!(
        "filtered sim {:.4}s (wall {filtered_wall:.0} ms, decompress {:.6}s) -> {speedup:.2}x",
        filtered.timing.total_seconds, filtered.timing.decompress_seconds
    );
    println!("compression ratio {ratio:.2}x | pages skipped {skipped:.0}/{pages}");

    BenchRecord::new(
        "scan_throughput",
        full.timing.total_seconds * 1e3,
        filtered.timing.total_seconds * 1e3,
        smoke,
    )
    .int("tuples", n as u64)
    .int("features", d as u64)
    .int("pages", pages as u64)
    .num("selectivity", selectivity)
    .num("compression_ratio", ratio)
    .num("pages_skipped", skipped)
    .num("decompress_sim_s", filtered.timing.decompress_seconds)
    .num("full_wall_ms", full_wall)
    .num("filtered_wall_ms", filtered_wall)
    .append(&series_path("scan"));

    // Acceptance: ≥ 2× cold-cache at 10% selectivity (1.2× in smoke
    // mode, where the scan is deliberately small).
    let floor = if smoke { 1.2 } else { 2.0 };
    assert!(
        speedup >= floor,
        "filtered-scan speedup {speedup:.2}x is below the {floor}x acceptance floor"
    );
}
