//! Figure 13 reproduction: Greenplum segment sweep (PostgreSQL, 4, 8, 16
//! segments) on the public datasets, runtimes relative to 8 segments.

use dana::{analytic_greenplum, analytic_madlib, SystemParams};
use dana_bench::{geomean, paper};
use dana_workloads::workload;

fn main() {
    let p = SystemParams::default();
    println!("=== Figure 13: Greenplum performance vs segments (relative to 8 segments; higher = faster) ===");
    println!(
        "{:<20} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "workload", "PG paper", "PG ours", "4s paper", "4s ours", "16s paper", "16s ours"
    );
    let mut ours_pg = Vec::new();
    let mut ours_4 = Vec::new();
    let mut ours_16 = Vec::new();
    for (name, pg_paper, s4_paper, s16_paper) in paper::FIG13.iter() {
        let w = workload(name).expect("registry row");
        let base = analytic_greenplum(&w, 8, true, &p).total_seconds;
        let pg = base / analytic_madlib(&w, true, &p).total_seconds;
        let s4 = base / analytic_greenplum(&w, 4, true, &p).total_seconds;
        let s16 = base / analytic_greenplum(&w, 16, true, &p).total_seconds;
        println!(
            "{:<20} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
            name, pg_paper, pg, s4_paper, s4, s16_paper, s16
        );
        ours_pg.push(pg);
        ours_4.push(s4);
        ours_16.push(s16);
    }
    let (gpg, g4, g16) = (geomean(&ours_pg), geomean(&ours_4), geomean(&ours_16));
    println!(
        "{:<20} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2} | {:>8.2} {:>8.2}",
        "geomean", 0.54, gpg, 0.96, g4, 0.89, g16
    );
    println!(
        "\nshape check: 8 segments is the best configuration overall: {}",
        gpg < 1.0 && g4 < 1.0 && g16 < 1.02
    );
}
