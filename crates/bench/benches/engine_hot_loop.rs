//! Engine hot-loop acceptance benchmark: interpreter vs lowered executor.
//!
//! The deploy-time-lowering refactor's measuring stick. One training run
//! over the 5810×54 Remote Sensing LR workload (the `data_path` bench's
//! loop) is driven through:
//!
//! * `rows_reference` — the original per-tuple `Vec<Vec<f32>>` pipeline
//!   (extraction to rows + the nested-scratchpad interpreter), kept for
//!   the long-term perf trajectory;
//! * `interpreter` — the flat-batch streaming interpreter, the hot path
//!   *before* this refactor (extraction to `TupleBatch` +
//!   `run_training_interpreter_batch`);
//! * `lowered` — the deploy-time-lowered SoA lockstep executor
//!   (extraction to `TupleBatch` + `run_training_batch`).
//!
//! Both the end-to-end (extract + train) and the engine-only (train from a
//! pre-extracted batch) timings are reported; the acceptance gate is the
//! engine-executor comparison, which is what the lowering changed.
//!
//! Full runs append one JSON record per line to `BENCH_engine.json` at
//! the repo root, so the file accumulates a cross-PR perf trajectory.
//! Smoke mode (`DANA_SMOKE=1`) runs fewer iterations so CI exercises the
//! full path on every push — smoke numbers are too noisy to be baselines,
//! so smoke runs assert but do not record.

use std::time::Instant;

use dana_bench::{series_path, BenchRecord};
use dana_compiler::{schedule_hdfg, ScheduleParams};
use dana_dsl::zoo::{logistic_regression, DenseParams};
use dana_engine::{ExecutionEngine, ModelStore};
use dana_hdfg::translate;
use dana_storage::TupleBatch;
use dana_strider::{AccessEngine, AccessEngineConfig};
use dana_workloads::{generate, workload};

/// Best-of-N wall milliseconds for `f`.
fn best_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let iters = if smoke { 5 } else { 25 };

    let w = workload("Remote Sensing LR").unwrap().scaled(0.01); // 5810 × 54
    let table = generate(&w, 32 * 1024, 17).unwrap();
    let heap = &table.heap;
    let access = AccessEngine::for_table(
        *heap.layout(),
        heap.schema().clone(),
        AccessEngineConfig::new(
            8,
            dana_fpga::Clock::FPGA_150MHZ,
            dana_fpga::AxiLink::with_bandwidth(2.5e9),
        ),
    );
    let spec = logistic_regression(DenseParams {
        n_features: 54,
        merge_coef: 8,
        epochs: 1,
        learning_rate: 0.1,
    })
    .unwrap();
    let design = schedule_hdfg(
        &translate(&spec),
        ScheduleParams {
            num_threads: 8,
            acs_per_thread: 2,
            slots_per_au: 4096,
            bus_lanes: 2,
        },
    )
    .unwrap();
    let engine = ExecutionEngine::new(design.clone()).unwrap();
    let width = heap.schema().len();

    println!(
        "=== engine_hot_loop: {} tuples × {} features, {} threads, best of {iters} ===",
        heap.tuple_count(),
        width - 1,
        design.num_threads
    );

    // ---- correctness gate: the two paths must agree bit-for-bit ---------
    let mut batch = TupleBatch::with_capacity(width, heap.tuple_count() as usize);
    for p in 0..heap.page_count() {
        access
            .extract_page_into(heap.page_bytes(p).unwrap(), &mut batch)
            .unwrap();
    }
    let mut interp_store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
    let interp_stats = engine
        .run_training_interpreter_batch(&batch, &mut interp_store)
        .unwrap();
    let mut lowered_store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
    let lowered_stats = engine
        .run_training_batch(&batch, &mut lowered_store)
        .unwrap();
    assert_eq!(
        interp_store, lowered_store,
        "lowered executor must train the bit-identical model"
    );
    assert_eq!(interp_stats, lowered_stats, "cycle stats must agree");

    // ---- engine-only: train from the pre-extracted batch ----------------
    let train_rows_reference_ms = {
        let tuples: Vec<Vec<f32>> = batch.rows().map(|r| r.to_vec()).collect();
        best_ms(iters, || {
            let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
            engine.run_training_rows(&tuples, &mut store).unwrap();
            std::hint::black_box(store);
        })
    };
    let train_interpreter_ms = best_ms(iters, || {
        let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
        engine
            .run_training_interpreter_batch(&batch, &mut store)
            .unwrap();
        std::hint::black_box(store);
    });
    let train_lowered_ms = best_ms(iters, || {
        let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
        engine.run_training_batch(&batch, &mut store).unwrap();
        std::hint::black_box(store);
    });

    // ---- end-to-end: extract every page, then train ---------------------
    let extract_and_train = |lowered: bool| {
        let mut batch = TupleBatch::with_capacity(width, heap.tuple_count() as usize);
        for p in 0..heap.page_count() {
            access
                .extract_page_into(heap.page_bytes(p).unwrap(), &mut batch)
                .unwrap();
        }
        let mut store = ModelStore::new(&design, vec![vec![0.0; 54]]).unwrap();
        if lowered {
            engine.run_training_batch(&batch, &mut store).unwrap();
        } else {
            engine
                .run_training_interpreter_batch(&batch, &mut store)
                .unwrap();
        }
        std::hint::black_box(store);
    };
    let e2e_interpreter_ms = best_ms(iters, || extract_and_train(false));
    let e2e_lowered_ms = best_ms(iters, || extract_and_train(true));

    let speedup = train_interpreter_ms / train_lowered_ms;
    let speedup_e2e = e2e_interpreter_ms / e2e_lowered_ms;
    println!("engine-only   rows reference {train_rows_reference_ms:>8.3} ms");
    println!("engine-only   interpreter    {train_interpreter_ms:>8.3} ms");
    println!("engine-only   lowered SoA    {train_lowered_ms:>8.3} ms   ({speedup:.2}×)");
    println!("end-to-end    interpreter    {e2e_interpreter_ms:>8.3} ms");
    println!("end-to-end    lowered SoA    {e2e_lowered_ms:>8.3} ms   ({speedup_e2e:.2}×)");

    // Append (JSON lines): the trajectory accumulates across PRs.
    BenchRecord::new(
        "engine_hot_loop",
        train_interpreter_ms,
        train_lowered_ms,
        smoke,
    )
    .str("workload", w.name)
    .int("tuples", heap.tuple_count())
    .int("features", (width - 1) as u64)
    .int("threads", design.num_threads as u64)
    .int("epochs", 1)
    .int("iters", iters as u64)
    .num("train_rows_reference_ms", train_rows_reference_ms)
    .num("e2e_interpreter_ms", e2e_interpreter_ms)
    .num("e2e_lowered_ms", e2e_lowered_ms)
    .num("speedup_e2e", speedup_e2e)
    .append(&series_path("engine"));

    // Acceptance: the lowered executor must clear 2× over the flat-batch
    // interpreter (relaxed in smoke mode, where iteration counts are too
    // low for stable minima on shared CI runners).
    let floor = if smoke { 1.3 } else { 2.0 };
    assert!(
        speedup >= floor,
        "lowered executor speedup {speedup:.2}× is below the {floor}× acceptance floor"
    );
}
