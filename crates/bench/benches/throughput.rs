//! Multi-session throughput: queries/sec vs accelerator-pool size.
//!
//! The serving-tier acceptance benchmark. A batch of identical training
//! queries over the 5810×54 Remote Sensing LR workload is pushed through
//! (a) serial back-to-back execution on the single-user `Dana` facade and
//! (b) `DanaServer` with accelerator pools of increasing size. Timing is
//! the *simulated* accelerator schedule (the same `DanaTiming` model every
//! figure uses): serial cost is the sum of per-query runtimes; the pool's
//! cost is the greedy list-scheduling makespan its lease scheduler
//! computes. Host wall-clock is printed alongside for reference.
//!
//! Acceptance: a pool of 4 must sustain ≥ 3× the serial queries/sec.
//!
//! Smoke mode (`DANA_SMOKE=1`): fewer queries and pool sizes, so CI can
//! exercise the full concurrent path on every push.

use std::time::Instant;

use dana::prelude::*;
use dana_server::{DanaServer, QueryRequest, ServerConfig, SystemCoreConfig};
use dana_storage::BufferPoolConfig;
use dana_workloads::{generate, workload};

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let queries: usize = if smoke { 8 } else { 16 };
    let pool_sizes: &[usize] = if smoke { &[1, 4] } else { &[1, 2, 4, 8] };

    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.01); // 5810 × 54
    w.epochs = 1;
    w.merge_coef = 8;
    let spec = w.spec();
    let pool_cfg = BufferPoolConfig {
        pool_bytes: 256 << 20,
        page_size: 32 * 1024,
    };

    println!(
        "=== Multi-session throughput: {queries} queries over 5810×54 (Remote Sensing LR) ==="
    );

    // ---- serial baseline: one Dana, back-to-back ------------------------
    let mut db = Dana::new(FpgaSpec::vu9p(), pool_cfg, DiskModel::ssd());
    db.create_table("rs", generate(&w, 32 * 1024, 17).unwrap().heap)
        .unwrap();
    db.prewarm("rs").unwrap();
    db.deploy(&spec, "rs").unwrap();
    let wall = Instant::now();
    let mut serial_sim = 0.0;
    for _ in 0..queries {
        serial_sim += db.run_udf("logisticR", "rs").unwrap().timing.total_seconds;
    }
    let serial_wall = wall.elapsed().as_secs_f64();
    let serial_qps = queries as f64 / serial_sim;
    println!(
        "serial (1×Dana)     sim {serial_sim:>8.3}s  {serial_qps:>7.2} q/s  (host wall {serial_wall:.2}s)"
    );

    // ---- server sweeps --------------------------------------------------
    let mut pool4_speedup = None;
    for &n in pool_sizes {
        let srv = DanaServer::start(ServerConfig {
            accelerators: n,
            workers: n,
            admission: Default::default(),
            default_timeout_ms: None,
            core: SystemCoreConfig {
                fpga: FpgaSpec::vu9p(),
                pool: pool_cfg,
                pool_shards: 8,
                disk: DiskModel::ssd(),
            },
        });
        srv.create_table("rs", generate(&w, 32 * 1024, 17).unwrap().heap)
            .unwrap();
        srv.prewarm("rs").unwrap();
        srv.deploy(&spec, "rs").unwrap();

        let session = srv.open_session("bench");
        let wall = Instant::now();
        let tickets: Vec<_> = (0..queries)
            .map(|_| {
                srv.submit(
                    session,
                    QueryRequest::RunUdf {
                        udf: "logisticR".into(),
                        table: "rs".into(),
                        shards: None,
                    },
                )
                .unwrap()
            })
            .collect();
        for t in tickets {
            srv.wait(t).unwrap();
        }
        let wall_s = wall.elapsed().as_secs_f64();
        let util = srv.shutdown();
        let makespan = util.makespan_seconds();
        let qps = queries as f64 / makespan;
        let speedup = serial_sim / makespan;
        if n == 4 {
            pool4_speedup = Some(speedup);
        }
        println!(
            "pool of {n:<2}          sim {makespan:>8.3}s  {qps:>7.2} q/s  {speedup:>5.2}x serial  \
             util {:>5.1}%  (host wall {wall_s:.2}s)",
            util.utilization() * 100.0
        );
    }

    if let Some(s) = pool4_speedup {
        println!(
            "\nacceptance: pool of 4 sustains >= 3x serial queries/sec: {} ({s:.2}x)",
            if s >= 3.0 { "PASS" } else { "FAIL" }
        );
        assert!(s >= 3.0, "pool of 4 must sustain >= 3x serial throughput");
    }
}
