//! Shared harness utilities for the per-figure reproduction targets.
//!
//! Every `benches/*.rs` target regenerates one table or figure of the
//! paper's evaluation (§7): it computes our numbers through the analytic
//! harness (`dana::analytic`, which runs the *real* compiler and the
//! calibrated cost models at full Table-3 scale), prints them next to the
//! paper's published series, and reports whether the qualitative claim
//! holds. EXPERIMENTS.md records the same comparisons.

pub mod paper;
pub mod record;

pub use record::{common_fields, common_fields_compat, read_series, series_path, BenchRecord};

use dana::{analytic_dana, analytic_greenplum, analytic_madlib, ExecutionMode, SystemParams};
use dana_workloads::Workload;

/// Geometric mean (the paper's summary statistic for every speedup chart).
pub fn geomean(vals: &[f64]) -> f64 {
    if vals.is_empty() {
        return 0.0;
    }
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// End-to-end totals for the three principal systems on one workload.
#[derive(Debug, Clone, Copy)]
pub struct SystemTotals {
    pub madlib_pg: f64,
    pub madlib_gp8: f64,
    pub dana: f64,
}

impl SystemTotals {
    pub fn gp_speedup(&self) -> f64 {
        self.madlib_pg / self.madlib_gp8
    }

    pub fn dana_speedup(&self) -> f64 {
        self.madlib_pg / self.dana
    }
}

/// Computes the three systems' totals for `w` under a cache setting.
pub fn run_systems(w: &Workload, warm: bool, p: &SystemParams) -> SystemTotals {
    let madlib = analytic_madlib(w, warm, p);
    let gp = analytic_greenplum(w, 8, warm, p);
    let dana = analytic_dana(w, ExecutionMode::Strider, warm, p)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    SystemTotals {
        madlib_pg: madlib.total_seconds,
        madlib_gp8: gp.total_seconds,
        dana: dana.total_seconds,
    }
}

/// Pretty seconds: `1 h 2 m 3 s` / `4.5 s` / `120 ms`.
pub fn fmt_seconds(s: f64) -> String {
    if s >= 3600.0 {
        format!("{:.0}h {:02.0}m", (s / 3600.0).floor(), (s % 3600.0) / 60.0)
    } else if s >= 60.0 {
        format!("{:.0}m {:02.0}s", (s / 60.0).floor(), s % 60.0)
    } else if s >= 1.0 {
        format!("{s:.1}s")
    } else {
        format!("{:.0}ms", s * 1000.0)
    }
}

/// One comparison row: a name, the paper's value, ours.
pub struct Row {
    pub name: String,
    pub paper: f64,
    pub ours: f64,
}

/// Prints a paper-vs-ours table with a per-row agreement factor and a
/// gross qualitative verdict (same winner / within ~3× shape band).
pub fn print_comparison(title: &str, unit: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "workload",
        format!("paper ({unit})"),
        "ours",
        "ratio"
    );
    for r in rows {
        let ratio = if r.paper > 0.0 {
            r.ours / r.paper
        } else {
            f64::NAN
        };
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>7.2}x",
            r.name, r.paper, r.ours, ratio
        );
    }
    let pg = geomean(&rows.iter().map(|r| r.paper).collect::<Vec<_>>());
    let og = geomean(&rows.iter().map(|r| r.ours).collect::<Vec<_>>());
    println!(
        "{:<22} {:>12.2} {:>12.2} {:>7.2}x",
        "geomean",
        pg,
        og,
        og / pg
    );
}

/// Fraction of rows whose ours/paper ratio lies within [1/band, band].
pub fn within_band(rows: &[Row], band: f64) -> f64 {
    if rows.is_empty() {
        return 1.0;
    }
    let ok = rows
        .iter()
        .filter(|r| {
            let ratio = r.ours / r.paper;
            ratio >= 1.0 / band && ratio <= band
        })
        .count();
    ok as f64 / rows.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(0.12), "120ms");
        assert_eq!(fmt_seconds(4.5), "4.5s");
        assert_eq!(fmt_seconds(62.0), "1m 02s");
        assert_eq!(fmt_seconds(3661.0), "1h 01m");
    }

    #[test]
    fn band_counting() {
        let rows = vec![
            Row {
                name: "a".into(),
                paper: 10.0,
                ours: 12.0,
            },
            Row {
                name: "b".into(),
                paper: 10.0,
                ours: 100.0,
            },
        ];
        assert!((within_band(&rows, 3.0) - 0.5).abs() < 1e-12);
    }
}
