//! Baseline-noise gate for the recorded bench trajectories.
//!
//! Reads each repo-root `BENCH_*.json` series and compares the newest
//! full (non-smoke) record's speedup against the previous full record's.
//! The speedup is dimensionless — baseline and candidate run on the same
//! host in the same process — so it is the one number that stays
//! comparable across machines; a slowdown the instrumentation introduced
//! in the candidate path shows up directly as a speedup drop.
//!
//! Usage: `cargo run --release -p dana-bench --bin check_baselines`
//! after running the recording benches. A series with fewer than two
//! full records is reported and skipped (nothing to diff yet). The
//! allowed relative drop defaults to 3% and can be widened for noisy
//! hosts with `DANA_BASELINE_TOLERANCE=0.05`.

use dana_bench::{common_fields_compat, read_series, series_path};

const SERIES: &[&str] = &["engine", "backend", "parallel", "predict", "serve", "scan"];

fn main() {
    let tolerance: f64 = std::env::var("DANA_BASELINE_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.03);
    println!(
        "=== bench baseline check (allowed speedup drop {:.0}%) ===",
        tolerance * 100.0
    );

    let mut failures = 0;
    for name in SERIES {
        let path = series_path(name);
        let records = match read_series(&path) {
            Ok(r) => r,
            Err(e) => {
                println!("BENCH_{name}: unreadable ({e})");
                failures += 1;
                continue;
            }
        };
        // Full-run records only: smoke numbers use reduced workloads.
        let full: Vec<(f64, f64, f64)> = records
            .iter()
            .filter_map(common_fields_compat)
            .filter(|(_, _, _, smoke)| !smoke)
            .map(|(b, c, s, _)| (b, c, s))
            .collect();
        match full.as_slice() {
            [] => println!("BENCH_{name}: no full records yet — skipped"),
            [only] => println!(
                "BENCH_{name}: single full record (speedup {:.2}x) — nothing to diff yet",
                only.2
            ),
            [.., (_, _, prev), (baseline_ms, candidate_ms, newest)] => {
                let floor = prev * (1.0 - tolerance);
                let ok = *newest >= floor;
                println!(
                    "BENCH_{name}: speedup {prev:.3}x -> {newest:.3}x \
                     (candidate {candidate_ms:.3} ms vs baseline {baseline_ms:.3} ms) {}",
                    if ok { "OK" } else { "REGRESSED" }
                );
                if !ok {
                    failures += 1;
                }
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} series regressed beyond tolerance");
        std::process::exit(1);
    }
    println!("all series within tolerance");
}
