//! The one writer every `BENCH_*.json` series goes through.
//!
//! Each timing bench appends one JSON line per full (non-smoke) run to a
//! repo-root `BENCH_<name>.json` file — the cross-PR trajectory the
//! baseline checker diffs. Before this module each bench hand-rolled its
//! own record struct and file append, so the files shared no schema and
//! nothing could compare them generically. Now every record carries the
//! same leading fields:
//!
//! - `bench` — the series name,
//! - `baseline_ms` — the reference implementation's time,
//! - `candidate_ms` — the optimized implementation's time,
//! - `speedup` — `baseline_ms / candidate_ms` (the acceptance number),
//! - `smoke` — whether the run used the reduced smoke workload,
//!
//! followed by bench-specific extras (workload shape, calibration data,
//! secondary timings). [`read_series`] loads a file back, and
//! [`common_fields`] also understands the pre-unification legacy key
//! names so committed history stays comparable.

use serde::json::{parse, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// One appended line of a `BENCH_*.json` series.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    bench: String,
    baseline_ms: f64,
    candidate_ms: f64,
    smoke: bool,
    extra: Vec<(String, Value)>,
}

impl BenchRecord {
    /// A record for `bench` timing `candidate_ms` against `baseline_ms`
    /// (both milliseconds; the speedup is derived, never hand-set).
    pub fn new(bench: &str, baseline_ms: f64, candidate_ms: f64, smoke: bool) -> BenchRecord {
        BenchRecord {
            bench: bench.to_string(),
            baseline_ms,
            candidate_ms,
            smoke,
            extra: Vec::new(),
        }
    }

    /// `baseline / candidate` — the dimensionless acceptance number.
    pub fn speedup(&self) -> f64 {
        if self.candidate_ms > 0.0 {
            self.baseline_ms / self.candidate_ms
        } else {
            0.0
        }
    }

    /// Attaches a bench-specific float field.
    pub fn num(mut self, key: &str, v: f64) -> BenchRecord {
        self.extra.push((key.to_string(), Value::Float(v)));
        self
    }

    /// Attaches a bench-specific integer field.
    pub fn int(mut self, key: &str, v: u64) -> BenchRecord {
        self.extra.push((key.to_string(), Value::Int(v as i64)));
        self
    }

    /// Attaches a bench-specific string field.
    pub fn str(mut self, key: &str, v: &str) -> BenchRecord {
        self.extra
            .push((key.to_string(), Value::Str(v.to_string())));
        self
    }

    /// The record as a JSON object: common schema first, extras after.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![
            ("bench".to_string(), Value::Str(self.bench.clone())),
            ("baseline_ms".to_string(), Value::Float(self.baseline_ms)),
            ("candidate_ms".to_string(), Value::Float(self.candidate_ms)),
            ("speedup".to_string(), Value::Float(self.speedup())),
            ("smoke".to_string(), Value::Bool(self.smoke)),
        ];
        pairs.extend(self.extra.iter().cloned());
        Value::Obj(pairs)
    }

    /// Appends the record as one line to `path` — unless this is a smoke
    /// run, whose reduced-workload numbers must never become baselines.
    /// Prints what happened either way so bench logs stay self-reporting.
    pub fn append(&self, path: &Path) {
        if self.smoke {
            println!("smoke mode: not recording (reduced-workload numbers are not baselines)");
            return;
        }
        let mut line = self.to_value().to_string();
        line.push('\n');
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| f.write_all(line.as_bytes()))
            .unwrap_or_else(|e| panic!("appending {}: {e}", path.display()));
        println!("recorded -> {}", path.display());
    }
}

/// Repo-root path of a bench series file, e.g. `series_path("engine")`
/// → `<repo>/BENCH_engine.json`.
pub fn series_path(name: &str) -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join(format!("BENCH_{name}.json"))
}

/// Loads every record of a series file (one JSON object per line).
/// A missing file is an empty series, not an error.
pub fn read_series(path: &Path) -> Result<Vec<Value>, String> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(format!("reading {}: {e}", path.display())),
    };
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty())
        .map(|l| parse(l).map_err(|e| format!("{}: {e}", path.display())))
        .collect()
}

/// The common fields of one series record:
/// `(baseline_ms, candidate_ms, speedup, smoke)`.
///
/// Understands both the unified schema this module writes and the legacy
/// per-bench key names committed before unification, so the baseline
/// checker can diff new runs against pre-existing history.
pub fn common_fields(record: &Value) -> Option<(f64, f64, f64, bool)> {
    let smoke = matches!(record.get("smoke"), Some(Value::Bool(true)));
    if let (Some(b), Some(c), Some(s)) = (
        as_f64(record.get("baseline_ms")?),
        as_f64(record.get("candidate_ms")?),
        as_f64(record.get("speedup")?),
    ) {
        return Some((b, c, s, smoke));
    }
    None
}

/// [`common_fields`], falling back to the legacy key names each series
/// used before the schema was unified.
pub fn common_fields_compat(record: &Value) -> Option<(f64, f64, f64, bool)> {
    if let Some(c) = common_fields(record) {
        return Some(c);
    }
    let bench = match record.get("bench") {
        Some(Value::Str(s)) => s.as_str(),
        _ => return None,
    };
    // (baseline key, candidate key, speedup key, to-milliseconds factor)
    let (bk, ck, sk, scale) = match bench {
        "engine_hot_loop" => (
            "train_interpreter_ms",
            "train_lowered_ms",
            "speedup_lowered_vs_interpreter",
            1.0,
        ),
        "backend_race" => ("per_tuple_ms", "cpu_soa_ms", "soa_speedup", 1.0),
        "scoring_throughput" => (
            "per_tuple_ms",
            "batch_ms",
            "speedup_batch_vs_per_tuple",
            1.0,
        ),
        "parallel_scaling" => ("serial_sim_s", "shards4_sim_s", "speedup_4", 1e3),
        _ => return None,
    };
    let smoke = matches!(record.get("smoke"), Some(Value::Bool(true)));
    match (
        record.get(bk).and_then(as_f64),
        record.get(ck).and_then(as_f64),
        record.get(sk).and_then(as_f64),
    ) {
        (Some(b), Some(c), Some(s)) => Some((b * scale, c * scale, s, smoke)),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f),
        Value::Int(i) => Some(*i as f64),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_common_schema_first_then_extras() {
        let r = BenchRecord::new("demo", 10.0, 4.0, false)
            .int("tuples", 100)
            .str("workload", "LR")
            .num("aux_ms", 1.5);
        let v = r.to_value();
        let s = v.to_string();
        assert!(
            s.starts_with(
                r#"{"bench":"demo","baseline_ms":10,"candidate_ms":4,"speedup":2.5,"smoke":false"#
            ),
            "{s}"
        );
        let (b, c, sp, smoke) = common_fields(&v).unwrap();
        assert_eq!((b, c, sp, smoke), (10.0, 4.0, 2.5, false));
        // The parsed line round-trips through the compat reader too.
        let back = parse(&s).unwrap();
        assert_eq!(common_fields_compat(&back), Some((10.0, 4.0, 2.5, false)));
    }

    #[test]
    fn compat_reader_understands_legacy_engine_records() {
        let legacy = parse(
            r#"{"bench":"engine_hot_loop","smoke":false,"train_interpreter_ms":5.0,"train_lowered_ms":2.0,"speedup_lowered_vs_interpreter":2.5}"#,
        )
        .unwrap();
        assert_eq!(common_fields(&legacy), None);
        assert_eq!(common_fields_compat(&legacy), Some((5.0, 2.0, 2.5, false)));
        // Legacy parallel records scale seconds into the common unit.
        let legacy = parse(
            r#"{"bench":"parallel_scaling","smoke":false,"serial_sim_s":0.4,"shards4_sim_s":0.1,"speedup_4":4.0}"#,
        )
        .unwrap();
        let (b, c, s, _) = common_fields_compat(&legacy).unwrap();
        assert!((b - 400.0).abs() < 1e-9 && (c - 100.0).abs() < 1e-9 && s == 4.0);
    }

    #[test]
    fn smoke_records_never_reach_disk() {
        let dir = std::env::temp_dir().join("dana_bench_record_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_t.json");
        BenchRecord::new("t", 2.0, 1.0, true).append(&path);
        assert!(read_series(&path).unwrap().is_empty());
        BenchRecord::new("t", 2.0, 1.0, false).append(&path);
        BenchRecord::new("t", 3.0, 1.0, false).append(&path);
        let series = read_series(&path).unwrap();
        assert_eq!(series.len(), 2);
        assert_eq!(common_fields(&series[1]).unwrap().2, 3.0);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
