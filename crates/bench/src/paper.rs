//! The paper's published numbers, transcribed from the evaluation (§7).
//!
//! Sources: Table 5 (absolute runtimes), the data tables embedded in the
//! arXiv figures for Figs. 8–16. Where the PDF prints both chart labels and
//! data tables, the data tables win.

/// Table 5 absolute runtimes in seconds: (workload, MADlib+PostgreSQL,
/// MADlib+Greenplum, DAnA+PostgreSQL).
pub const TABLE5: [(&str, f64, f64, f64); 14] = [
    ("Remote Sensing LR", 3.6, 1.1, 0.1),
    ("WLAN", 14.0, 14.0, 0.61),
    ("Remote Sensing SVM", 1.7, 0.6, 0.09),
    ("Netflix", 62.3, 69.2, 7.89),
    ("Patient", 2.8, 0.9, 1.18),
    ("Blog Feedback", 1.6, 0.5, 0.34),
    ("S/N Logistic", 3292.0, 2993.0, 131.0),
    ("S/N SVM", 3386.0, 770.0, 244.0),
    ("S/N LRMF", 23.0, 3.0, 2.0),
    ("S/N Linear", 1747.0, 1456.0, 335.0),
    ("S/E Logistic", 240_300.0, 30_600.0, 684.0),
    ("S/E SVM", 360.0, 324.0, 72.0),
    ("S/E LRMF", 3276.0, 1584.0, 2340.0),
    ("S/E Linear", 23_796.0, 19_332.0, 1008.0),
];

/// Figure 8a (warm cache, public datasets): (workload, Greenplum speedup,
/// DAnA speedup) over MADlib+PostgreSQL.
pub const FIG8_WARM: [(&str, f64, f64); 6] = [
    ("Remote Sensing LR", 3.4, 28.2),
    ("WLAN", 1.0, 18.42),
    ("Remote Sensing SVM", 2.7, 15.1),
    ("Netflix", 0.9, 6.32),
    ("Patient", 3.0, 3.65),
    ("Blog Feedback", 3.1, 1.86),
];

/// Figure 8b (cold cache, public datasets).
pub const FIG8_COLD: [(&str, f64, f64); 6] = [
    ("Remote Sensing LR", 3.2, 4.89),
    ("WLAN", 1.0, 14.58),
    ("Remote Sensing SVM", 2.4, 8.61),
    ("Netflix", 0.9, 6.01),
    ("Patient", 2.4, 2.23),
    ("Blog Feedback", 2.6, 1.48),
];

/// Figure 9 (synthetic nominal): warm then cold.
pub const FIG9_WARM: [(&str, f64, f64); 4] = [
    ("S/N Logistic", 1.1, 20.16),
    ("S/N SVM", 4.4, 8.7),
    ("S/N LRMF", 7.99, 4.17),
    ("S/N Linear", 1.2, 41.81),
];

pub const FIG9_COLD: [(&str, f64, f64); 4] = [
    ("S/N Logistic", 1.1, 10.05),
    ("S/N SVM", 5.5, 6.47),
    ("S/N LRMF", 7.78, 4.36),
    ("S/N Linear", 1.2, 28.74),
];

/// Figure 10 (synthetic extensive): warm then cold.
pub const FIG10_WARM: [(&str, f64, f64); 4] = [
    ("S/E Logistic", 7.85, 278.24),
    ("S/E SVM", 1.11, 4.71),
    ("S/E LRMF", 2.08, 1.12),
    ("S/E Linear", 1.23, 19.01),
];

pub const FIG10_COLD: [(&str, f64, f64); 4] = [
    ("S/E Logistic", 7.83, 243.78),
    ("S/E SVM", 0.77, 4.35),
    ("S/E LRMF", 1.13, 1.12),
    ("S/E Linear", 1.23, 17.02),
];

/// Figure 11: (workload, DAnA-without-Striders speedup, DAnA speedup) over
/// warm MADlib+PostgreSQL.
#[allow(clippy::approx_constant)] // 6.28 is a paper-reported speedup, not τ
pub const FIG11: [(&str, f64, f64); 14] = [
    ("Remote Sensing LR", 4.0, 28.2),
    ("WLAN", 12.21, 18.42),
    ("Remote Sensing SVM", 1.93, 15.1),
    ("Netflix", 0.58, 6.32),
    ("Patient", 0.76, 3.65),
    ("Blog Feedback", 1.14, 1.86),
    ("S/N Logistic", 19.0, 20.16),
    ("S/N SVM", 2.25, 8.70),
    ("S/N LRMF", 0.85, 4.17),
    ("S/N Linear", 6.28, 41.81),
    ("S/E Logistic", 2.91, 278.24),
    ("S/E SVM", 1.76, 4.72),
    ("S/E LRMF", 0.29, 1.12),
    ("S/E Linear", 6.63, 19.02),
];

/// Figure 13: Greenplum runtime relative to 8 segments (higher = faster),
/// rows = (workload, PostgreSQL, 4 segments, 16 segments).
pub const FIG13: [(&str, f64, f64, f64); 6] = [
    ("Remote Sensing LR", 0.31, 0.87, 0.69),
    ("WLAN", 1.03, 1.21, 0.95),
    ("Remote Sensing SVM", 0.42, 0.96, 1.26),
    ("Netflix", 1.14, 1.02, 0.90),
    ("Patient", 0.42, 0.97, 0.73),
    ("Blog Feedback", 0.39, 0.80, 0.95),
];

/// Figure 14: FPGA-time speedup over baseline bandwidth at (0.25×, 0.5×,
/// 2×, 4×) bandwidth.
pub const FIG14: [(&str, [f64; 4]); 14] = [
    ("Remote Sensing LR", [0.7, 0.9, 1.1, 1.13]),
    ("WLAN", [1.0, 1.0, 1.0, 1.0]),
    ("Remote Sensing SVM", [0.6, 0.8, 1.1, 1.2]),
    ("Netflix", [0.8, 0.9, 1.1, 1.1]),
    ("Patient", [0.9, 1.0, 1.0, 1.0]),
    ("Blog Feedback", [1.0, 1.0, 1.0, 1.0]),
    ("S/N Logistic", [0.4, 0.7, 1.4, 1.7]),
    ("S/N SVM", [0.5, 0.7, 1.2, 1.4]),
    ("S/N LRMF", [0.9, 1.0, 1.0, 1.0]),
    ("S/N Linear", [0.3, 0.6, 1.5, 2.1]),
    ("S/E Logistic", [0.4, 0.7, 1.4, 1.8]),
    ("S/E SVM", [0.4, 0.7, 1.3, 1.6]),
    ("S/E LRMF", [1.0, 1.0, 1.0, 1.0]),
    ("S/E Linear", [0.3, 0.6, 1.6, 2.1]),
];

/// Figure 15a: phase fractions (export, transform, analytics) per
/// (library, workload).
pub const FIG15A: [(&str, &str, f64, f64, f64); 10] = [
    ("Liblinear", "Remote Sensing LR", 0.8405, 0.0483, 0.1112),
    ("DimmWitted", "Remote Sensing LR", 0.5672, 0.0326, 0.4002),
    ("Liblinear", "WLAN", 0.8383, 0.0374, 0.1244),
    ("DimmWitted", "WLAN", 0.6264, 0.0279, 0.3456),
    ("Liblinear", "S/N Logistic", 0.5742, 0.0196, 0.4062),
    ("DimmWitted", "S/N Logistic", 0.6465, 0.0221, 0.3314),
    ("Liblinear", "Remote Sensing SVM", 0.6924, 0.0383, 0.2693),
    ("DimmWitted", "Remote Sensing SVM", 0.5792, 0.0320, 0.3887),
    ("Liblinear", "S/N SVM", 0.6554, 0.0209, 0.3236),
    ("DimmWitted", "S/N SVM", 0.6561, 0.021, 0.3230),
];

/// Figure 15c: end-to-end speedup over MADlib+PostgreSQL per workload:
/// (workload, Liblinear, DimmWitted, DAnA). NaN = unsupported.
pub const FIG15C: [(&str, f64, f64, f64); 5] = [
    ("Remote Sensing LR", 0.375, 0.25, 28.2),
    ("WLAN", 6.29, 4.7, 18.42),
    ("S/N Logistic", 5.528, 7.35, 20.16),
    ("Remote Sensing SVM", 0.14, 0.117, 15.1),
    ("S/N SVM", 0.1, 0.1, 8.7),
];

/// Figure 16: DAnA's compute speedup over TABLA.
pub const FIG16: [(&str, f64); 10] = [
    ("Remote Sensing LR", 10.35),
    ("WLAN", 0.79),
    ("Remote Sensing SVM", 12.33),
    ("Netflix", 8.13),
    ("Patient", 4.05),
    ("Blog Feedback", 5.43),
    ("S/N Logistic", 1.01),
    ("S/N SVM", 1.13),
    ("S/N LRMF", 4.96),
    ("S/N Linear", 5.90),
];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geomean;

    #[test]
    fn fig8_warm_geomean_is_the_papers_headline() {
        // Abstract: "on average, 8.3× end-to-end speedup" over PostgreSQL
        // and 4.0× over Greenplum-relative ratios.
        let dana = geomean(&FIG8_WARM.iter().map(|r| r.2).collect::<Vec<_>>());
        assert!((dana - 8.3).abs() < 0.2, "geomean {dana}");
        let gp = geomean(&FIG8_WARM.iter().map(|r| r.1).collect::<Vec<_>>());
        assert!((dana / gp - 4.0).abs() < 0.3);
    }

    #[test]
    fn fig11_average_strider_benefit_is_4_6x() {
        let with = geomean(&FIG11.iter().map(|r| r.2).collect::<Vec<_>>());
        let without = geomean(&FIG11.iter().map(|r| r.1).collect::<Vec<_>>());
        assert!((with / without - 4.6).abs() < 0.3, "{}", with / without);
    }

    #[test]
    fn table5_matches_fig8_ratios() {
        // Table 5's RS-LR row (3.6 s vs 0.1 s) is Fig. 8's 28.2× bar
        // within rounding.
        let (_, pg, _, dana) = TABLE5[0];
        let ratio = pg / dana;
        assert!(ratio > 25.0 && ratio < 40.0);
    }
}
