//! The cross-request batcher.
//!
//! Point predictions are tiny — one row through the SoA lockstep
//! scorer — so per-request dispatch overhead (admission, leasing, the
//! program walk) dominates. When several clients hit the *same*
//! accelerator concurrently, their rows can share one dispatch: the
//! engine scores lanes in lockstep anyway, and per-row predictions are
//! independent of batch composition, so coalescing changes throughput
//! but not a single output bit.
//!
//! ## Protocol
//!
//! Each UDF has at most one *open* batch cell. The first caller to
//! register in a cell becomes its **leader**; later callers are
//! **followers**. Followers park on a reply channel. The leader waits
//! up to the configured window (or until the cell fills to
//! `max_batch`), *seals* the cell so no further rows can join, runs the
//! scoring closure over the accumulated rows, and fans each caller its
//! own row's prediction by registration index — so replies are
//! deterministic regardless of thread arrival order.
//!
//! On a failed dispatch the leader surfaces the typed error; followers
//! receive a string copy ([`ServeError::Batch`]) because the underlying
//! errors are not cloneable.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};

use crate::error::{ServeError, ServeResult};

/// Coalescing knobs.
#[derive(Debug, Clone, Copy)]
pub struct BatcherConfig {
    /// Rows after which a cell seals immediately (leader stops waiting).
    pub max_batch: usize,
    /// How long a leader holds the cell open for followers. Zero means
    /// singleton mode: every request dispatches alone.
    pub window: Duration,
}

impl Default for BatcherConfig {
    fn default() -> BatcherConfig {
        BatcherConfig {
            max_batch: 16,
            window: Duration::from_micros(500),
        }
    }
}

type Reply = Result<(f32, usize), String>;

struct BatchInner {
    rows: Vec<Vec<f32>>,
    replies: Vec<Sender<Reply>>,
    /// Once true, no further registration: the leader is (or is about
    /// to start) dispatching this cell's rows.
    sealed: bool,
}

struct BatchCell {
    inner: Mutex<BatchInner>,
    /// Signalled when the cell fills to `max_batch`, waking the leader
    /// out of its window early.
    full: Condvar,
}

impl BatchCell {
    fn new() -> BatchCell {
        BatchCell {
            inner: Mutex::new(BatchInner {
                rows: Vec::new(),
                replies: Vec::new(),
                sealed: false,
            }),
            full: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, BatchInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Coalesces concurrent point predictions per UDF. All methods take
/// `&self`; share it behind an `Arc` across request threads.
pub struct Batcher {
    open: Mutex<HashMap<String, Arc<BatchCell>>>,
    config: BatcherConfig,
}

impl Batcher {
    pub fn new(config: BatcherConfig) -> Batcher {
        Batcher {
            open: Mutex::new(HashMap::new()),
            config,
        }
    }

    fn lock_open(&self) -> MutexGuard<'_, HashMap<String, Arc<BatchCell>>> {
        match self.open.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Submits one row for `udf` and blocks until its prediction is
    /// available. `score` runs at most once per sealed batch — on the
    /// leader's thread, with no batcher locks held — and must return
    /// one prediction per input row, in order.
    ///
    /// Returns `(prediction, batch_rows)` where `batch_rows` is how
    /// many rows shared the dispatch (1 = not coalesced).
    pub fn submit<F>(&self, udf: &str, row: Vec<f32>, score: F) -> ServeResult<(f32, usize)>
    where
        F: FnOnce(&[Vec<f32>]) -> ServeResult<Vec<f32>>,
    {
        if self.config.window.is_zero() || self.config.max_batch <= 1 {
            // Singleton mode: no cell bookkeeping at all.
            let preds = score(std::slice::from_ref(&row))?;
            return Ok((preds[0], 1));
        }

        let (tx, rx) = bounded::<Reply>(1);
        let (cell, index) = loop {
            // Take (or open) the UDF's cell under the map lock, then
            // try to register under the cell lock. A sealed cell means
            // its leader is dispatching; replace it and lead the next
            // batch ourselves.
            let cell = {
                let mut open = self.lock_open();
                Arc::clone(
                    open.entry(udf.to_string())
                        .or_insert_with(|| Arc::new(BatchCell::new())),
                )
            };
            let mut inner = cell.lock();
            if inner.sealed {
                drop(inner);
                let mut open = self.lock_open();
                if let Some(current) = open.get(udf) {
                    if Arc::ptr_eq(current, &cell) {
                        open.remove(udf);
                    }
                }
                continue;
            }
            let index = inner.rows.len();
            inner.rows.push(row.clone());
            inner.replies.push(tx.clone());
            if inner.rows.len() >= self.config.max_batch {
                inner.sealed = true;
                cell.full.notify_all();
            }
            drop(inner);
            break (cell, index);
        };

        if index == 0 {
            self.lead(udf, &cell, score)?;
        }

        match rx.recv() {
            Ok(Ok(reply)) => Ok(reply),
            Ok(Err(msg)) => Err(ServeError::Batch(msg)),
            Err(_) => Err(ServeError::Batch(
                "batch dispatch dropped without replying".to_string(),
            )),
        }
    }

    /// The leader's half: hold the window open, seal, dispatch, fan out.
    fn lead<F>(&self, udf: &str, cell: &Arc<BatchCell>, score: F) -> ServeResult<()>
    where
        F: FnOnce(&[Vec<f32>]) -> ServeResult<Vec<f32>>,
    {
        let deadline = std::time::Instant::now() + self.config.window;
        let mut inner = cell.lock();
        while !inner.sealed {
            let now = std::time::Instant::now();
            if now >= deadline {
                inner.sealed = true;
                break;
            }
            let (guard, _timeout) = match cell.full.wait_timeout(inner, deadline - now) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            inner = guard;
        }
        let rows = std::mem::take(&mut inner.rows);
        let replies = std::mem::take(&mut inner.replies);
        drop(inner);

        // Retire the cell so the next arrival opens a fresh batch.
        {
            let mut open = self.lock_open();
            if let Some(current) = open.get(udf) {
                if Arc::ptr_eq(current, cell) {
                    open.remove(udf);
                }
            }
        }

        let n = rows.len();
        match score(&rows) {
            Ok(preds) => {
                debug_assert_eq!(preds.len(), n);
                for (i, reply) in replies.iter().enumerate() {
                    let _ = reply.send(Ok((preds[i], n)));
                }
                Ok(())
            }
            Err(e) => {
                // Followers get message copies; the leader's own reply
                // channel stays empty and the typed error propagates
                // through this return instead.
                let msg = e.to_string();
                for reply in replies.iter().skip(1) {
                    let _ = reply.send(Err(msg.clone()));
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Barrier;

    fn sum_scorer(calls: &Arc<AtomicUsize>) -> impl Fn(&[Vec<f32>]) -> ServeResult<Vec<f32>> + '_ {
        let calls = Arc::clone(calls);
        move |rows: &[Vec<f32>]| {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(rows.iter().map(|r| r.iter().sum()).collect())
        }
    }

    #[test]
    fn singleton_mode_dispatches_alone() {
        let b = Batcher::new(BatcherConfig {
            max_batch: 16,
            window: Duration::ZERO,
        });
        let calls = Arc::new(AtomicUsize::new(0));
        let (p, n) = b.submit("f", vec![1.0, 2.0], sum_scorer(&calls)).unwrap();
        assert_eq!(p, 3.0);
        assert_eq!(n, 1);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_submissions_coalesce_and_fan_out_by_row() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 8,
            window: Duration::from_millis(100),
        }));
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(4));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let b = Arc::clone(&b);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                let row = vec![t as f32, 10.0];
                b.submit("f", row, |rows| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(rows.iter().map(|r| r.iter().sum()).collect())
                })
                .unwrap()
            }));
        }
        let results: Vec<(f32, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Each caller got exactly its own row's sum, and at least one
        // dispatch carried multiple rows (fewer dispatches than rows).
        for (t, (p, _n)) in results.iter().enumerate() {
            assert_eq!(*p, t as f32 + 10.0);
        }
        assert!(calls.load(Ordering::SeqCst) < 4);
        assert!(results.iter().any(|(_, n)| *n > 1));
    }

    #[test]
    fn max_batch_seals_the_cell_early() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 2,
            // A window long enough that only the max-batch seal can
            // explain a prompt return.
            window: Duration::from_secs(5),
        }));
        let calls = Arc::new(AtomicUsize::new(0));
        let barrier = Arc::new(Barrier::new(2));
        let start = std::time::Instant::now();
        let mut handles = Vec::new();
        for t in 0..2u32 {
            let b = Arc::clone(&b);
            let calls = Arc::clone(&calls);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                b.submit("f", vec![t as f32], |rows| {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok(rows.iter().map(|r| r.iter().sum()).collect())
                })
                .unwrap()
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert!(start.elapsed() < Duration::from_secs(4));
    }

    #[test]
    fn failed_dispatch_reaches_every_member() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 2,
            window: Duration::from_secs(5),
        }));
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for t in 0..2u32 {
            let b = Arc::clone(&b);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                b.submit("f", vec![t as f32], |_rows| {
                    Err(ServeError::Batch("scorer exploded".to_string()))
                })
            }));
        }
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            assert!(err.to_string().contains("scorer exploded"), "{err}");
        }
    }

    #[test]
    fn different_udfs_never_share_a_batch() {
        let b = Arc::new(Batcher::new(BatcherConfig {
            max_batch: 8,
            window: Duration::from_millis(20),
        }));
        let barrier = Arc::new(Barrier::new(2));
        let mut handles = Vec::new();
        for (udf, v) in [("f", 1.0f32), ("g", 2.0f32)] {
            let b = Arc::clone(&b);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                b.submit(udf, vec![v], |rows| {
                    Ok(rows.iter().map(|r| r.iter().sum()).collect())
                })
                .unwrap()
            }));
        }
        let results: Vec<(f32, usize)> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results[0].0, 1.0);
        assert_eq!(results[1].0, 2.0);
        assert!(results.iter().all(|(_, n)| *n == 1));
    }
}
