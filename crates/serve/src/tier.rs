//! The serving tier facade: cache → batcher → server, in that order.
//!
//! [`ServeTier`] wraps an [`Arc<DanaServer>`] and gives point
//! predictions the short path they need:
//!
//! 1. **cache probe** — if the row was scored under the *current*
//!    model generation, answer from memory (no admission, no dispatch);
//! 2. **coalesced dispatch** — otherwise ride the [`Batcher`]: rows
//!    for the same UDF that arrive within the window share one
//!    `QueryRequest::PredictPoint` call through the server's full
//!    admission/lease/deadline machinery, on the leader's session;
//! 3. **stamp-stable insert** — the result is cached only if the model
//!    generation observed *before* the dispatch is still the live one
//!    afterwards. A retrain that lands mid-flight simply skips the
//!    insert, so the cache can never hold a prediction whose provenance
//!    is ambiguous.
//!
//! Serving counters (hits, misses, invalidations, occupancy, latency)
//! land in the core [`MetricsRegistry`] and surface through
//! `SHOW STATS ('serving')`.

use std::sync::Arc;
use std::time::Instant;

use dana_server::{DanaServer, QueryRequest, SessionId};

use crate::batcher::{Batcher, BatcherConfig};
use crate::cache::{CacheConfig, CacheLookup, PredictionCache};
use crate::error::ServeResult;

/// Tier-wide knobs: cache sizing plus coalescing window.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeConfig {
    pub cache: CacheConfig,
    pub batcher: BatcherConfig,
}

/// One point prediction's answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PointReply {
    pub prediction: f32,
    /// Served from the prediction cache (no dispatch at all).
    pub cached: bool,
    /// How many rows shared the dispatch that produced this value
    /// (1 = uncoalesced; cache hits report 1).
    pub batch_rows: usize,
}

/// The online serving tier over an unchanged [`DanaServer`].
pub struct ServeTier {
    server: Arc<DanaServer>,
    cache: PredictionCache,
    batcher: Batcher,
}

impl ServeTier {
    pub fn new(server: Arc<DanaServer>, config: ServeConfig) -> ServeTier {
        ServeTier {
            cache: PredictionCache::new(config.cache),
            batcher: Batcher::new(config.batcher),
            server,
        }
    }

    pub fn with_defaults(server: Arc<DanaServer>) -> ServeTier {
        ServeTier::new(server, ServeConfig::default())
    }

    /// The wrapped server, for table/deploy/train administration.
    pub fn server(&self) -> &Arc<DanaServer> {
        &self.server
    }

    /// Predicts one row through the fast path: cache probe, then a
    /// (possibly coalesced) point dispatch on `session`.
    ///
    /// Coalesced rows ride the *leader's* session and admission ticket;
    /// followers only wait on the reply, so per-session accounting
    /// attributes the dispatch to whichever request opened the batch.
    pub fn predict_point(
        &self,
        session: SessionId,
        udf: &str,
        row: &[f32],
    ) -> ServeResult<PointReply> {
        let metrics = self.server.core().metrics();
        let start = Instant::now();

        // The generation witness read *before* dispatch; the insert
        // below requires it unchanged.
        let generation = self.server.core().trained_generation(udf);
        match &generation {
            Some(gen) => match self.cache.get(udf, row, gen) {
                CacheLookup::Hit(prediction) => {
                    metrics.prediction_cache_hits.inc();
                    metrics.point_queries.inc();
                    metrics.point_latency.record(start.elapsed().as_secs_f64());
                    return Ok(PointReply {
                        prediction,
                        cached: true,
                        batch_rows: 1,
                    });
                }
                CacheLookup::Stale => {
                    metrics.prediction_cache_invalidations.inc();
                    metrics.prediction_cache_misses.inc();
                }
                CacheLookup::Miss => {
                    metrics.prediction_cache_misses.inc();
                }
            },
            // Untrained/stale/unknown: let the dispatch surface the
            // typed refusal rather than guessing here.
            None => {
                metrics.prediction_cache_misses.inc();
            }
        }

        let (prediction, batch_rows) = self.batcher.submit(udf, row.to_vec(), |rows| {
            metrics.batch_occupancy.record(rows.len() as f64);
            if rows.len() > 1 {
                metrics.coalesced_dispatches.inc();
            }
            let reply = self.server.call(
                session,
                QueryRequest::PredictPoint {
                    udf: udf.to_string(),
                    rows: rows.to_vec(),
                },
            )?;
            Ok(reply.try_point_report()?.predictions.clone())
        })?;

        // Stamp-stable insert: cache only if the pre-dispatch
        // generation is still the live one (a retrain that landed
        // mid-flight makes the value's provenance ambiguous — skip).
        if let Some(gen) = generation {
            let still_live = self
                .server
                .core()
                .trained_generation(udf)
                .map(|now| Arc::ptr_eq(&now, &gen))
                .unwrap_or(false);
            if still_live {
                self.cache.insert(udf, row, gen, prediction);
            }
        }

        Ok(PointReply {
            prediction,
            cached: false,
            batch_rows,
        })
    }

    /// Dispatches a micro-batch of rows directly (no cache, no
    /// coalescing) and returns the per-row predictions in order.
    pub fn predict_rows(
        &self,
        session: SessionId,
        udf: &str,
        rows: Vec<Vec<f32>>,
    ) -> ServeResult<Vec<f32>> {
        let reply = self.server.call(
            session,
            QueryRequest::PredictPoint {
                udf: udf.to_string(),
                rows,
            },
        )?;
        Ok(reply.try_point_report()?.predictions.clone())
    }

    /// Proactively flushes every cached prediction for one UDF (e.g.
    /// alongside an explicit redeploy); returns how many entries were
    /// dropped. The generation stamp already guarantees stale entries
    /// are never *served* — this just reclaims their space eagerly.
    pub fn flush_udf(&self, udf: &str) -> usize {
        let flushed = self.cache.invalidate_udf(udf);
        self.server
            .core()
            .metrics()
            .prediction_cache_invalidations
            .add(flushed as u64);
        flushed
    }

    /// Live prediction-cache entries.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }
}
