//! The staleness-aware prediction cache.
//!
//! Point workloads are heavily repetitive — the same entity's feature
//! vector is scored again and again between model refreshes — so the
//! serving tier memoizes (accelerator, input row) → prediction. The
//! correctness obligation is staleness: a cached value must never
//! outlive the model that computed it. Every entry is therefore
//! stamped with the **model-generation witness**: the
//! `Arc<TrainedModels>` that was live when the value was scored. A
//! lookup is a hit only while its stamp is pointer-equal to the UDF's
//! current generation — a retrain stores a new `Arc` (last write wins)
//! and a drop clears the slot entirely, so either event invalidates
//! every dependent entry without touching the cache. Holding the `Arc`
//! itself (not a raw pointer) keeps the comparison ABA-safe: the old
//! generation's allocation cannot be recycled while an entry still
//! references it.
//!
//! Rows key on their `f32` bit patterns, so a hit requires the exact
//! same input bits — there is no tolerance window to smear predictions
//! across nearby inputs.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard};

use dana::TrainedModels;

/// Cache sizing.
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Most entries held; the oldest insertion evicts first. Zero
    /// disables caching entirely.
    pub capacity: usize,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig { capacity: 4096 }
    }
}

/// One lookup's outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheLookup {
    /// A value scored under the current model generation.
    Hit(f32),
    /// An entry existed but its generation stamp no longer matches the
    /// live model — it was evicted, never served.
    Stale,
    /// No entry.
    Miss,
}

/// (UDF name, row bit pattern) — exact-bits keying.
type Key = (String, Vec<u32>);

struct Entry {
    prediction: f32,
    /// The generation witness the value was scored under.
    generation: Arc<TrainedModels>,
}

struct CacheState {
    map: HashMap<Key, Entry>,
    /// Insertion order for eviction; keys already removed from `map`
    /// (stale evictions, UDF flushes) are skipped lazily.
    order: VecDeque<Key>,
}

/// The prediction cache proper. All methods take `&self`; one mutex
/// guards the map (point lookups are microseconds, contention is the
/// dispatch path's problem, not this one's).
pub struct PredictionCache {
    state: Mutex<CacheState>,
    capacity: usize,
}

impl PredictionCache {
    pub fn new(config: CacheConfig) -> PredictionCache {
        PredictionCache {
            state: Mutex::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
            }),
            capacity: config.capacity,
        }
    }

    fn lock(&self) -> MutexGuard<'_, CacheState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn key(udf: &str, row: &[f32]) -> Key {
        (udf.to_string(), row.iter().map(|v| v.to_bits()).collect())
    }

    /// Looks up a row's prediction under the given live generation.
    /// A stamped entry whose generation no longer matches is removed
    /// and reported as [`CacheLookup::Stale`] — it is never served.
    pub fn get(&self, udf: &str, row: &[f32], generation: &Arc<TrainedModels>) -> CacheLookup {
        let key = Self::key(udf, row);
        let mut st = self.lock();
        match st.map.get(&key) {
            Some(e) if Arc::ptr_eq(&e.generation, generation) => CacheLookup::Hit(e.prediction),
            Some(_) => {
                st.map.remove(&key);
                CacheLookup::Stale
            }
            None => CacheLookup::Miss,
        }
    }

    /// Stores a row's prediction stamped with the generation that
    /// scored it. A no-op when the cache is sized zero.
    pub fn insert(&self, udf: &str, row: &[f32], generation: Arc<TrainedModels>, prediction: f32) {
        if self.capacity == 0 {
            return;
        }
        let key = Self::key(udf, row);
        let mut st = self.lock();
        if st
            .map
            .insert(
                key.clone(),
                Entry {
                    prediction,
                    generation,
                },
            )
            .is_none()
        {
            st.order.push_back(key);
        }
        while st.map.len() > self.capacity {
            // Skip order keys whose entries were already removed by a
            // stale eviction or a UDF flush.
            match st.order.pop_front() {
                Some(old) => {
                    st.map.remove(&old);
                }
                None => break,
            }
        }
    }

    /// Flushes every entry for one UDF (the drop/retrain hook); returns
    /// how many entries were removed.
    pub fn invalidate_udf(&self, udf: &str) -> usize {
        let mut st = self.lock();
        let before = st.map.len();
        st.map.retain(|(u, _), _| u != udf);
        before - st.map.len()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generation() -> Arc<TrainedModels> {
        Arc::new(TrainedModels {
            models: Vec::new(),
            names: Vec::new(),
        })
    }

    #[test]
    fn hit_requires_matching_generation() {
        let c = PredictionCache::new(CacheConfig { capacity: 8 });
        let g1 = generation();
        c.insert("f", &[1.0, 2.0], Arc::clone(&g1), 0.5);
        assert_eq!(c.get("f", &[1.0, 2.0], &g1), CacheLookup::Hit(0.5));
        // A new generation (retrain) turns the entry stale; it is
        // evicted on that lookup, and a subsequent one is a plain miss.
        let g2 = generation();
        assert_eq!(c.get("f", &[1.0, 2.0], &g2), CacheLookup::Stale);
        assert_eq!(c.get("f", &[1.0, 2.0], &g2), CacheLookup::Miss);
    }

    #[test]
    fn keys_are_exact_bit_patterns() {
        let c = PredictionCache::new(CacheConfig { capacity: 8 });
        let g = generation();
        c.insert("f", &[1.0], Arc::clone(&g), 0.5);
        assert_eq!(c.get("f", &[1.0 + 1e-7], &g), CacheLookup::Miss);
        assert_eq!(c.get("g", &[1.0], &g), CacheLookup::Miss);
    }

    #[test]
    fn capacity_evicts_oldest_insertion_first() {
        let c = PredictionCache::new(CacheConfig { capacity: 2 });
        let g = generation();
        c.insert("f", &[1.0], Arc::clone(&g), 0.1);
        c.insert("f", &[2.0], Arc::clone(&g), 0.2);
        c.insert("f", &[3.0], Arc::clone(&g), 0.3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get("f", &[1.0], &g), CacheLookup::Miss);
        assert_eq!(c.get("f", &[3.0], &g), CacheLookup::Hit(0.3));
    }

    #[test]
    fn invalidate_udf_flushes_only_that_udf() {
        let c = PredictionCache::new(CacheConfig { capacity: 8 });
        let g = generation();
        c.insert("f", &[1.0], Arc::clone(&g), 0.1);
        c.insert("f", &[2.0], Arc::clone(&g), 0.2);
        c.insert("h", &[1.0], Arc::clone(&g), 0.9);
        assert_eq!(c.invalidate_udf("f"), 2);
        assert_eq!(c.get("h", &[1.0], &g), CacheLookup::Hit(0.9));
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let c = PredictionCache::new(CacheConfig { capacity: 0 });
        let g = generation();
        c.insert("f", &[1.0], Arc::clone(&g), 0.1);
        assert_eq!(c.get("f", &[1.0], &g), CacheLookup::Miss);
        assert!(c.is_empty());
    }
}
