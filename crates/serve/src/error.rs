//! The serving tier's error type.

use dana::DanaError;
use dana_server::ServerError;

/// What a point prediction can fail with.
///
/// The underlying refusal is always typed on the request that carried
/// the dispatch: the batch *leader* (and every unbatched call) gets
/// [`ServeError::Server`] with the full [`ServerError`] chain — e.g. a
/// `DanaError::StaleAccelerator` when the bound table was dropped
/// mid-flight. Followers of a failed coalesced dispatch receive
/// [`ServeError::Batch`] carrying the shared failure's message (the
/// originals are not cloneable).
#[derive(Debug)]
pub enum ServeError {
    /// The server/core refusal, typed.
    Server(ServerError),
    /// A coalesced dispatch this request rode failed; the message is
    /// this member's copy of the shared failure.
    Batch(String),
}

pub type ServeResult<T> = Result<T, ServeError>;

impl ServeError {
    /// Whether this is the typed stale-accelerator refusal (the bound
    /// table was dropped): the race the prediction cache must never
    /// paper over. Matches a batch-follower copy by message.
    pub fn is_stale_model(&self) -> bool {
        match self {
            ServeError::Server(ServerError::Dana(DanaError::StaleAccelerator { .. })) => true,
            ServeError::Server(_) => false,
            ServeError::Batch(msg) => msg.contains("stale"),
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Server(e) => write!(f, "{e}"),
            ServeError::Batch(msg) => write!(f, "coalesced dispatch failed: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Server(e) => Some(e),
            ServeError::Batch(_) => None,
        }
    }
}

impl From<ServerError> for ServeError {
    fn from(e: ServerError) -> ServeError {
        ServeError::Server(e)
    }
}

impl From<DanaError> for ServeError {
    fn from(e: DanaError) -> ServeError {
        ServeError::Server(ServerError::Dana(e))
    }
}
