//! # dana-serve — the online serving tier
//!
//! DAnA's front door ([`dana_server::DanaServer`]) is built for
//! analytical traffic: multi-epoch training gangs and whole-table
//! scoring scans. An *online* workload looks nothing like that — a
//! stream of single-row `PREDICT` calls, each microseconds of work,
//! latency-bound, and heavily repetitive. This crate layers the three
//! mechanisms that workload needs over the unchanged server:
//!
//! * **the point fast path** — `PREDICT dana.<udf>(VALUES (…))` (or the
//!   typed [`dana_server::QueryRequest::PredictPoint`]) binds parameter
//!   rows straight into the cached scoring program: no heap scan, no
//!   buffer-pool traffic, no materialization, and no accelerator lease
//!   when the advisor routes the rows to the CPU tier. Predictions are
//!   bit-identical to the materializing path on the same rows, because
//!   the rows feed the *same* SoA lockstep scorer the scan would;
//! * **cross-request batching** ([`Batcher`]) — concurrent point
//!   requests against the same accelerator coalesce into one dispatch
//!   (bounded wait window + max batch size). Fan-out is deterministic:
//!   each caller gets exactly its own row's prediction, so replies are
//!   independent of arrival order and bit-identical to serial scoring;
//! * **a staleness-aware prediction cache** ([`PredictionCache`]) —
//!   keyed on (accelerator, input row bits), every entry stamped with
//!   the model-generation `Arc` it was computed under. A hit is served
//!   only while the stamp is pointer-equal to the live generation;
//!   retrain swaps the generation and drop clears it, so a hit can
//!   never surface a stale model's prediction, and a dropped
//!   accelerator refuses with the same typed error the scan path uses.
//!
//! Point queries ride the admission queue's `Interactive` class
//! ([`dana_server::Priority`]): the dequeue prefers them over any
//! waiting batch job, so they are never starved behind gang training.
//! Serving counters land in the core metrics registry and surface
//! through `SHOW STATS ('serving')`.

pub mod batcher;
pub mod cache;
pub mod error;
pub mod tier;

pub use batcher::{Batcher, BatcherConfig};
pub use cache::{CacheConfig, CacheLookup, PredictionCache};
pub use error::{ServeError, ServeResult};
pub use tier::{PointReply, ServeConfig, ServeTier};
