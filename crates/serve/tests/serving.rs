//! Acceptance suite for the online serving tier.
//!
//! * Point-form PREDICT (typed and SQL VALUES form) must be
//!   **bit-identical** to the materializing PREDICT path on the same
//!   rows, for all four zoo models.
//! * The prediction cache must never serve a value computed under a
//!   superseded model generation: retrain invalidates, drop refuses
//!   with the same typed error the scan path uses.
//! * Cross-request coalescing must be deterministic: every caller gets
//!   exactly its own row's prediction, bit-equal to serial scoring,
//!   regardless of batch composition or arrival order.

use std::sync::{Arc, Barrier};
use std::time::Duration;

use dana::prelude::*;
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_serve::{BatcherConfig, CacheConfig, ServeConfig, ServeTier};
use dana_server::{
    AdmissionConfig, DanaServer, QueryRequest, SchedPolicy, ServerConfig, SystemCoreConfig,
};
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 8 * 1024;

fn server() -> Arc<DanaServer> {
    Arc::new(DanaServer::start(ServerConfig {
        accelerators: 2,
        workers: 2,
        admission: AdmissionConfig {
            max_queued: 1024,
            policy: SchedPolicy::Fifo,
        },
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: PAGE,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        },
    }))
}

/// A serving tier whose batcher is in singleton mode — every request
/// dispatches alone, keeping single-threaded tests deterministic.
fn singleton_tier(srv: &Arc<DanaServer>) -> ServeTier {
    ServeTier::new(
        Arc::clone(srv),
        ServeConfig {
            cache: CacheConfig::default(),
            batcher: BatcherConfig {
                max_batch: 16,
                window: Duration::ZERO,
            },
        },
    )
}

/// The predict_differential dense table, with a tunable truth offset so
/// two tables can train visibly different models.
fn dense_heap(n: usize, d: usize, algo: Algorithm, truth_off: f32) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.35 * i as f32 - 0.9 + truth_off).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => {
                if s > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!("dense heap"),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let i = (k * 7) % rows;
        let j = (k * 13) % cols;
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

fn dense_spec(algo: Algorithm, d: usize) -> dana_dsl::AlgoSpec {
    zoo::spec_for(
        algo,
        DenseParams {
            n_features: d,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 6,
        },
    )
    .unwrap()
}

/// Creates table `t`, deploys the dense zoo spec, trains it through the
/// server's front door, and returns the UDF name.
fn dense_setup(srv: &Arc<DanaServer>, algo: Algorithm, n: usize, d: usize) -> String {
    srv.create_table("t", dense_heap(n, d, algo, 0.0)).unwrap();
    let spec = dense_spec(algo, d);
    let udf = spec.name.clone();
    srv.deploy(&spec, "t").unwrap();
    let session = srv.open_session("setup");
    srv.call(
        session,
        QueryRequest::RunUdf {
            udf: udf.clone(),
            table: "t".to_string(),
            shards: None,
        },
    )
    .unwrap();
    udf
}

/// Materializes PREDICT over `table` and returns (source rows, the
/// prediction column) — the reference the point path must bit-match.
fn materialized(
    srv: &Arc<DanaServer>,
    udf: &str,
    table: &str,
    pred_col: usize,
) -> (Vec<Vec<f32>>, Vec<f32>) {
    let session = srv.open_session("materialize");
    srv.call(
        session,
        QueryRequest::Predict {
            udf: udf.to_string(),
            table: table.to_string(),
            into: "scores".to_string(),
            shards: None,
        },
    )
    .unwrap();
    let src: Vec<Vec<f32>> = srv
        .core()
        .table_snapshot(table)
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .map(|r| r.to_vec())
        .collect();
    let preds: Vec<f32> = srv
        .core()
        .table_snapshot("scores")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .map(|r| r[pred_col])
        .collect();
    assert_eq!(src.len(), preds.len());
    (src, preds)
}

/// Point predictions — typed request and SQL VALUES form — must be
/// bit-identical to the materializing PREDICT on the same rows.
fn dense_point_vs_materialized(algo: Algorithm) {
    let d = 12;
    let srv = server();
    let udf = dense_setup(&srv, algo, 600, d);
    let (src, reference) = materialized(&srv, &udf, "t", d + 1);

    let tier = singleton_tier(&srv);
    let session = srv.open_session("client");
    // The feature generator has period 17 in k, so some sampled rows
    // repeat — those may legitimately hit the cache; either way the
    // bits must match.
    for k in (0..src.len()).step_by(13) {
        let reply = tier.predict_point(session, &udf, &src[k]).unwrap();
        assert_eq!(
            reply.prediction, reference[k],
            "{udf}: point row {k} must bit-match the materialized column"
        );
    }

    // The SQL VALUES form runs the same fast path.
    let vals: Vec<String> = src[0].iter().map(|v| format!("{v}")).collect();
    let sql = format!("PREDICT dana.{udf}(VALUES ({}));", vals.join(", "));
    let reply = srv.call(session, QueryRequest::Sql(sql)).unwrap();
    let report = reply.point_report();
    assert_eq!(report.predictions, vec![reference[0]]);
    assert_eq!(report.udf, udf);
}

#[test]
fn linear_point_matches_materialized_bit_exactly() {
    dense_point_vs_materialized(Algorithm::Linear);
}

#[test]
fn logistic_point_matches_materialized_bit_exactly() {
    dense_point_vs_materialized(Algorithm::Logistic);
}

#[test]
fn svm_point_matches_materialized_bit_exactly() {
    dense_point_vs_materialized(Algorithm::Svm);
}

#[test]
fn lrmf_point_matches_materialized_bit_exactly() {
    let (rows, cols) = (24usize, 18usize);
    let srv = server();
    srv.create_table("ratings", rating_heap(400, rows, cols))
        .unwrap();
    let spec = zoo::lrmf(LrmfParams {
        rows,
        cols,
        rank: 8,
        learning_rate: 0.05,
        merge_coef: 4,
        epochs: 4,
    })
    .unwrap();
    srv.deploy(&spec, "ratings").unwrap();
    let session = srv.open_session("setup");
    srv.call(
        session,
        QueryRequest::RunUdf {
            udf: "lrmf".to_string(),
            table: "ratings".to_string(),
            shards: None,
        },
    )
    .unwrap();
    // Rating tuples are (i, j, r); the materialized table appends the
    // predicted rating at column 3.
    let (src, reference) = materialized(&srv, "lrmf", "ratings", 3);

    let tier = singleton_tier(&srv);
    for k in (0..src.len()).step_by(11) {
        let reply = tier.predict_point(session, "lrmf", &src[k]).unwrap();
        assert_eq!(
            reply.prediction, reference[k],
            "lrmf: point row {k} must bit-match the materialized column"
        );
    }
}

/// Retrain-vs-cached-hit: a hit is served only under the generation
/// that computed it. Rebinding the UDF to a different table and
/// retraining must turn the warm entry stale — the next call dispatches
/// fresh and returns the *new* model's value.
#[test]
fn retrained_model_invalidates_warm_cache_entries() {
    let d = 12;
    let srv = server();
    let udf = dense_setup(&srv, Algorithm::Linear, 600, d);
    let tier = singleton_tier(&srv);
    let session = srv.open_session("client");
    let row: Vec<f32> = srv
        .core()
        .table_snapshot("t")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .next()
        .unwrap()
        .to_vec();

    let p1 = tier.predict_point(session, &udf, &row).unwrap();
    assert!(!p1.cached);
    let p2 = tier.predict_point(session, &udf, &row).unwrap();
    assert!(p2.cached, "second identical call must hit the cache");
    assert_eq!(p2.prediction, p1.prediction);

    // Rebind the same UDF name to a table with a shifted truth vector
    // and retrain: a new model generation with visibly different
    // weights.
    srv.create_table("t2", dense_heap(600, d, Algorithm::Linear, 1.5))
        .unwrap();
    srv.deploy(&dense_spec(Algorithm::Linear, d), "t2").unwrap();
    srv.call(
        session,
        QueryRequest::RunUdf {
            udf: udf.clone(),
            table: "t2".to_string(),
            shards: None,
        },
    )
    .unwrap();

    // Direct dispatch (never cached) gives the new model's reference.
    let fresh = tier.predict_rows(session, &udf, vec![row.clone()]).unwrap()[0];
    let p3 = tier.predict_point(session, &udf, &row).unwrap();
    assert!(!p3.cached, "stale entry must not serve after retrain");
    assert_eq!(p3.prediction, fresh);
    assert_ne!(
        p3.prediction, p1.prediction,
        "shifted truth must change the trained model's output"
    );

    let snap = srv.stats_snapshot(Some("serving"));
    assert!(snap.get("serving", "cache_invalidations").unwrap() >= 1.0);
    assert!(snap.get("serving", "cache_hits").unwrap() >= 1.0);
}

/// Drop-vs-point-predict: after the bound table is dropped, a warm
/// cache must not answer — the call refuses with the same typed
/// stale-accelerator error the scan path uses.
#[test]
fn dropped_table_refuses_point_predict_despite_warm_cache() {
    let d = 12;
    let srv = server();
    let udf = dense_setup(&srv, Algorithm::Linear, 600, d);
    let tier = singleton_tier(&srv);
    let session = srv.open_session("client");
    let row: Vec<f32> = srv
        .core()
        .table_snapshot("t")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .next()
        .unwrap()
        .to_vec();

    tier.predict_point(session, &udf, &row).unwrap();
    let warm = tier.predict_point(session, &udf, &row).unwrap();
    assert!(warm.cached);

    srv.drop_table("t").unwrap();
    let err = tier.predict_point(session, &udf, &row).unwrap_err();
    assert!(
        err.is_stale_model(),
        "expected the typed stale-accelerator refusal, got: {err}"
    );
}

/// Batcher determinism through the full server: N concurrent clients
/// with distinct rows coalesce, and every reply bit-equals the serial
/// reference for exactly its own row.
#[test]
fn coalesced_predictions_are_bit_identical_to_serial() {
    let d = 12;
    let srv = server();
    let udf = dense_setup(&srv, Algorithm::Linear, 600, d);
    // Cache off: every call must dispatch; a generous window so the
    // barrier-released threads land in one batch.
    let tier = Arc::new(ServeTier::new(
        Arc::clone(&srv),
        ServeConfig {
            cache: CacheConfig { capacity: 0 },
            batcher: BatcherConfig {
                max_batch: 8,
                window: Duration::from_millis(200),
            },
        },
    ));
    let rows: Vec<Vec<f32>> = srv
        .core()
        .table_snapshot("t")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .take(8)
        .map(|r| r.to_vec())
        .collect();
    let session = srv.open_session("reference");
    let reference = tier.predict_rows(session, &udf, rows.clone()).unwrap();

    let barrier = Arc::new(Barrier::new(rows.len()));
    let mut handles = Vec::new();
    for (k, row) in rows.iter().cloned().enumerate() {
        let tier = Arc::clone(&tier);
        let barrier = Arc::clone(&barrier);
        let udf = udf.clone();
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || {
            let session = srv.open_session(&format!("client-{k}"));
            barrier.wait();
            (k, tier.predict_point(session, &udf, &row).unwrap())
        }));
    }
    let mut coalesced = false;
    for h in handles {
        let (k, reply) = h.join().unwrap();
        assert_eq!(
            reply.prediction, reference[k],
            "client {k} must get exactly its own row's serial prediction"
        );
        coalesced |= reply.batch_rows > 1;
    }
    assert!(coalesced, "barrier-released clients must share a dispatch");

    let snap = srv.stats_snapshot(Some("serving"));
    assert!(snap.get("serving", "coalesced_dispatches").unwrap() >= 1.0);
    assert!(snap.get("serving", "batch_occupancy_count").unwrap() >= 1.0);
}

/// The serving counters surface through `SHOW STATS ('serving')` — the
/// SQL front door, not just the typed snapshot.
#[test]
fn serving_stats_surface_through_show_stats() {
    let d = 12;
    let srv = server();
    let udf = dense_setup(&srv, Algorithm::Linear, 600, d);
    let tier = singleton_tier(&srv);
    let session = srv.open_session("client");
    let row: Vec<f32> = srv
        .core()
        .table_snapshot("t")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .next()
        .unwrap()
        .to_vec();
    tier.predict_point(session, &udf, &row).unwrap();
    tier.predict_point(session, &udf, &row).unwrap();

    let reply = srv
        .call(
            session,
            QueryRequest::Sql("SHOW STATS ('serving');".to_string()),
        )
        .unwrap();
    let snap = reply.stats();
    assert!(snap.get("serving", "point_queries").unwrap() >= 2.0);
    assert!(snap.get("serving", "cache_hits").unwrap() >= 1.0);
    assert!(snap.get("serving", "cache_misses").unwrap() >= 1.0);
    assert!(snap.get("serving", "point_latency_count").unwrap() >= 1.0);
    let table = snap.render_table();
    assert!(table.contains("cache_hits"), "table:\n{table}");
}
