//! The accelerator pool: N independent FPGA instances behind a lease
//! scheduler.
//!
//! The paper deploys *one* accelerator per query; a serving tier
//! multiplexes many concurrent queries over a fixed pool of FPGA cards
//! (each a full Strider + execution-engine machine of the same
//! [`dana_fpga::FpgaSpec`]). Workers lease an instance, run the admitted
//! query on it, and release it with the query's **simulated** runtime.
//!
//! Because all end-to-end timing in this reproduction is analytic, the
//! pool also plays simulated-time list scheduler: each instance carries a
//! busy clock, a lease picks the least-loaded free instance, and releasing
//! advances that instance's clock by the query's simulated seconds. For a
//! batch of queries all submitted up front this computes exactly the
//! greedy list-scheduling makespan — the number the throughput benchmark
//! compares against serial back-to-back execution.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Simulated seconds (matches `dana::report::Seconds`).
pub type Seconds = f64;

struct PoolState {
    /// Free instance ids.
    free: Vec<usize>,
    /// Accumulated simulated busy seconds per instance.
    busy_seconds: Vec<Seconds>,
    /// Leases granted per instance.
    leases: Vec<u64>,
    closed: bool,
}

/// A pool of `n` identical accelerator instances.
pub struct AcceleratorPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// Exclusive use of one instance. Release with the query's simulated
/// runtime; dropping without releasing returns the instance free of
/// charge (the panic path).
pub struct Lease<'a> {
    pool: &'a AcceleratorPool,
    id: usize,
    released: bool,
}

impl Lease<'_> {
    /// Which instance this lease holds.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Returns the instance, charging `sim_seconds` of simulated busy time
    /// to its clock.
    pub fn release(mut self, sim_seconds: Seconds) {
        self.released = true;
        self.pool.give_back(self.id, sim_seconds.max(0.0));
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.pool.give_back(self.id, 0.0);
        }
    }
}

/// Utilization snapshot: the pool's simulated schedule so far.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolUtilization {
    /// Simulated busy seconds per instance.
    pub busy_seconds: Vec<Seconds>,
    /// Leases granted per instance.
    pub leases: Vec<u64>,
}

impl PoolUtilization {
    pub fn instances(&self) -> usize {
        self.busy_seconds.len()
    }

    /// Total simulated work across all instances — what serial
    /// back-to-back execution would take.
    pub fn serial_seconds(&self) -> Seconds {
        self.busy_seconds.iter().sum()
    }

    /// Simulated completion time of the pool's greedy schedule (the most
    /// loaded instance finishes last).
    pub fn makespan_seconds(&self) -> Seconds {
        self.busy_seconds.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean instance utilization over the makespan, in [0, 1].
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.serial_seconds() / (self.instances() as f64 * makespan)
    }

    /// Throughput speedup over one-at-a-time execution of the same work.
    pub fn speedup_vs_serial(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan <= 0.0 {
            return 1.0;
        }
        self.serial_seconds() / makespan
    }
}

impl AcceleratorPool {
    pub fn new(instances: usize) -> AcceleratorPool {
        let n = instances.max(1);
        AcceleratorPool {
            state: Mutex::new(PoolState {
                free: (0..n).rev().collect(),
                busy_seconds: vec![0.0; n],
                leases: vec![0; n],
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn size(&self) -> usize {
        self.lock().busy_seconds.len()
    }

    /// Blocks until an instance is free and leases the one with the least
    /// simulated load (greedy list scheduling). Returns `None` once the
    /// pool is closed.
    pub fn lease(&self) -> Option<Lease<'_>> {
        let mut st = self.lock();
        loop {
            if st.closed {
                return None;
            }
            if !st.free.is_empty() {
                // Least-loaded free instance; ties break to the lowest id
                // for determinism.
                let (pos, _) = st
                    .free
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| {
                        let (la, lb) = (st.busy_seconds[**a], st.busy_seconds[**b]);
                        la.partial_cmp(&lb)
                            .unwrap_or(std::cmp::Ordering::Equal)
                            .then(a.cmp(b))
                    })
                    .expect("free list non-empty");
                let id = st.free.swap_remove(pos);
                st.leases[id] += 1;
                return Some(Lease {
                    pool: self,
                    id,
                    released: false,
                });
            }
            st = match self.available.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn give_back(&self, id: usize, sim_seconds: Seconds) {
        let mut st = self.lock();
        st.busy_seconds[id] += sim_seconds;
        st.free.push(id);
        drop(st);
        self.available.notify_one();
    }

    /// Closes the pool: pending and future `lease` calls return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    pub fn utilization(&self) -> PoolUtilization {
        let st = self.lock();
        PoolUtilization {
            busy_seconds: st.busy_seconds.clone(),
            leases: st.leases.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leases_pack_onto_least_loaded_instance() {
        let pool = AcceleratorPool::new(2);
        // Two jobs of unequal length, then two more: the greedy schedule
        // puts the later jobs opposite the heavy one.
        let l0 = pool.lease().unwrap();
        let l1 = pool.lease().unwrap();
        assert_ne!(l0.id(), l1.id());
        let heavy = l0.id();
        l0.release(10.0);
        l1.release(1.0);
        let l2 = pool.lease().unwrap();
        assert_ne!(l2.id(), heavy, "next lease must avoid the loaded instance");
        l2.release(1.0);

        let u = pool.utilization();
        assert_eq!(u.instances(), 2);
        assert_eq!(u.serial_seconds(), 12.0);
        assert_eq!(u.makespan_seconds(), 10.0);
        assert!((u.speedup_vs_serial() - 1.2).abs() < 1e-12);
        assert_eq!(u.leases.iter().sum::<u64>(), 3);
    }

    #[test]
    fn equal_jobs_reach_near_linear_speedup() {
        let pool = AcceleratorPool::new(4);
        for _ in 0..16 {
            let lease = pool.lease().unwrap();
            lease.release(1.0);
        }
        let u = pool.utilization();
        assert_eq!(u.serial_seconds(), 16.0);
        assert_eq!(u.makespan_seconds(), 4.0);
        assert!((u.speedup_vs_serial() - 4.0).abs() < 1e-12);
        assert!((u.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_lease_returns_instance_without_charge() {
        let pool = AcceleratorPool::new(1);
        {
            let _lease = pool.lease().unwrap();
            // Dropped without release (the panic path).
        }
        let again = pool.lease().expect("instance must come back");
        again.release(2.0);
        assert_eq!(pool.utilization().serial_seconds(), 2.0);
    }

    #[test]
    fn close_wakes_blocked_leases() {
        let pool = std::sync::Arc::new(AcceleratorPool::new(1));
        let held = pool.lease().unwrap();
        let p2 = std::sync::Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p2.lease().is_none());
        // Give the waiter time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.close();
        assert!(waiter.join().unwrap(), "blocked lease must see the close");
        drop(held);
        assert!(pool.lease().is_none(), "closed pool stays closed");
    }

    #[test]
    fn empty_pool_utilization_is_safe() {
        let pool = AcceleratorPool::new(3);
        let u = pool.utilization();
        assert_eq!(u.utilization(), 0.0);
        assert_eq!(u.speedup_vs_serial(), 1.0);
        assert_eq!(u.makespan_seconds(), 0.0);
    }
}
