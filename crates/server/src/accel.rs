//! The accelerator pool: N independent FPGA instances behind a lease
//! scheduler, with atomic **gang leases** for intra-query parallelism.
//!
//! The paper deploys *one* accelerator per query; a serving tier
//! multiplexes many concurrent queries over a fixed pool of FPGA cards
//! (each a full Strider + execution-engine machine of the same
//! [`dana_fpga::FpgaSpec`]). Workers lease an instance — or a **gang** of
//! `k` instances for a sharded query — run the admitted query on it, and
//! release it with the query's **simulated** runtime.
//!
//! Grant discipline: requests (singles and gangs alike) queue FIFO and
//! are granted strictly in arrival order, each **atomically** — a gang
//! takes all `k` instances in one step or keeps waiting. Waiters hold
//! nothing while they wait, so gangs cannot deadlock against singles or
//! each other; FIFO order bounds everyone's wait, so gangs are neither
//! starved by a stream of singles nor able to starve the singles behind
//! them indefinitely. Instance selection is deterministic: the
//! least-loaded free instances win, ties broken by the **lowest instance
//! id** — so gang placement and utilization metrics are reproducible
//! run-to-run regardless of how the free list got scrambled by earlier
//! releases.
//!
//! Because all end-to-end timing in this reproduction is analytic, the
//! pool also plays simulated-time list scheduler: each instance carries a
//! busy clock, and releasing advances the clock(s) by the query's
//! simulated seconds (every member of a gang is busy for the gang's whole
//! runtime — that is what gang scheduling means). For a batch of queries
//! all submitted up front this computes exactly the greedy
//! list-scheduling makespan — the number the throughput benchmark
//! compares against serial back-to-back execution.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Simulated seconds (matches `dana::report::Seconds`).
pub type Seconds = f64;

/// An instance's health, as the pool's scheduler sees it.
///
/// Fault reports escalate one step at a time (healthy → suspect →
/// quarantined); a quarantined instance is withheld from scheduling until
/// a [`AcceleratorPool::probe`] reinstates it. If *every* instance ends
/// up quarantined the pool self-heals by auto-probing the lowest id
/// rather than deadlocking the admission pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    Healthy,
    /// One fault observed; still schedulable, next fault quarantines.
    Suspect,
    /// Withheld from scheduling until probed.
    Quarantined,
}

impl Health {
    /// Numeric code for stats rows (0 = healthy, 1 = suspect,
    /// 2 = quarantined).
    pub fn code(&self) -> u8 {
        match self {
            Health::Healthy => 0,
            Health::Suspect => 1,
            Health::Quarantined => 2,
        }
    }
}

/// Snapshot of the pool's health machinery for `SHOW STATS('faults')`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolHealth {
    /// Per-instance health, instance order.
    pub states: Vec<Health>,
    /// Instances quarantined, cumulatively.
    pub quarantines: u64,
    /// Quarantined instances reinstated (probes + self-heals).
    pub reinstates: u64,
    /// Fault reports received.
    pub faults_reported: u64,
}

impl PoolHealth {
    pub fn quarantined_now(&self) -> usize {
        self.states
            .iter()
            .filter(|h| **h == Health::Quarantined)
            .count()
    }
}

struct PoolState {
    /// Free instance ids (order-insignificant; selection sorts).
    free: Vec<usize>,
    /// Accumulated simulated busy seconds per instance.
    busy_seconds: Vec<Seconds>,
    /// Accumulated simulated idle seconds per instance: the schedule
    /// holes gang scheduling forces, charged **at grant time** — a gang
    /// starts in lockstep at its slowest member's clock, so every other
    /// member sits idle from its own clock until then. Recording the gap
    /// when it happens is what lets utilization gauges report idle
    /// directly instead of inferring it from wall clock after the fact.
    idle_seconds: Vec<Seconds>,
    /// Leases granted per instance.
    leases: Vec<u64>,
    /// FIFO of waiting requests: `(ticket, gang size)`.
    waiting: VecDeque<(u64, usize)>,
    next_ticket: u64,
    closed: bool,
    /// Per-instance health; quarantined instances are withheld from the
    /// free list until probed.
    health: Vec<Health>,
    /// Whether the instance is currently out on a lease (guards the
    /// probe/give-back race: a reinstated-but-still-leased instance must
    /// not be double-freed).
    leased_now: Vec<bool>,
    quarantines: u64,
    reinstates: u64,
    faults_reported: u64,
    /// Fault-injection: stall every lease grant by this long.
    lease_stall: Option<Duration>,
}

impl PoolState {
    fn quarantined_count(&self) -> usize {
        self.health
            .iter()
            .filter(|h| **h == Health::Quarantined)
            .count()
    }

    /// Reinstates `id` if idle; returns it to the free list.
    fn reinstate(&mut self, id: usize) {
        self.health[id] = Health::Healthy;
        self.reinstates += 1;
        if !self.leased_now[id] && !self.free.contains(&id) {
            self.free.push(id);
        }
    }
}

impl PoolState {
    /// Deterministically picks the `k` least-loaded free instances
    /// (lowest id on ties), removes them from the free list, counts the
    /// leases, and charges the gang-skew idle gap to every member that
    /// has to wait for the slowest one. Caller guarantees
    /// `free.len() >= k`.
    fn take_least_loaded(&mut self, k: usize) -> Vec<usize> {
        let PoolState {
            free, busy_seconds, ..
        } = self;
        free.sort_unstable_by(|a, b| {
            busy_seconds[*a]
                .partial_cmp(&busy_seconds[*b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(b))
        });
        let mut ids: Vec<usize> = free.drain(..k).collect();
        ids.sort_unstable();
        // Lockstep start: the gang begins at its most-loaded member's
        // clock; everyone else idles from their own clock until then.
        // (A single's start is its own clock — zero idle accrues.)
        let gang_start = ids
            .iter()
            .map(|&id| self.busy_seconds[id])
            .fold(0.0, f64::max);
        for &id in &ids {
            self.idle_seconds[id] += gang_start - self.busy_seconds[id];
            self.leases[id] += 1;
            self.leased_now[id] = true;
        }
        ids
    }
}

/// A pool of `n` identical accelerator instances.
pub struct AcceleratorPool {
    state: Mutex<PoolState>,
    available: Condvar,
}

/// Exclusive use of one instance. Release with the query's simulated
/// runtime; dropping without releasing returns the instance free of
/// charge (the panic path).
pub struct Lease<'a> {
    pool: &'a AcceleratorPool,
    id: usize,
    released: bool,
}

impl Lease<'_> {
    /// Which instance this lease holds.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Returns the instance, charging `sim_seconds` of simulated busy time
    /// to its clock.
    pub fn release(mut self, sim_seconds: Seconds) {
        self.released = true;
        self.pool.give_back(&[self.id], sim_seconds.max(0.0));
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.pool.give_back(&[self.id], 0.0);
        }
    }
}

/// Exclusive use of `k` instances, acquired atomically — the gang one
/// sharded query trains or scores on. Releasing charges **every** member
/// the gang's simulated runtime (lockstep members idle-wait on the
/// critical shard; the hardware is occupied either way).
pub struct GangLease<'a> {
    pool: &'a AcceleratorPool,
    ids: Vec<usize>,
    released: bool,
}

impl GangLease<'_> {
    /// Member instance ids, ascending.
    pub fn ids(&self) -> &[usize] {
        &self.ids
    }

    pub fn size(&self) -> usize {
        self.ids.len()
    }

    /// Returns every member, charging each `sim_seconds` of simulated
    /// busy time.
    pub fn release(mut self, sim_seconds: Seconds) {
        self.released = true;
        self.pool.give_back(&self.ids, sim_seconds.max(0.0));
    }
}

impl Drop for GangLease<'_> {
    fn drop(&mut self) {
        if !self.released {
            self.pool.give_back(&self.ids, 0.0);
        }
    }
}

/// Utilization snapshot: the pool's simulated schedule so far.
#[derive(Debug, Clone, PartialEq)]
pub struct PoolUtilization {
    /// Simulated busy seconds per instance.
    pub busy_seconds: Vec<Seconds>,
    /// Simulated idle seconds per instance: schedule holes charged at
    /// gang-grant time, when a member waits for its most-loaded peer.
    pub idle_seconds: Vec<Seconds>,
    /// Leases granted per instance.
    pub leases: Vec<u64>,
}

impl PoolUtilization {
    pub fn instances(&self) -> usize {
        self.busy_seconds.len()
    }

    /// Total simulated work across all instances — what serial
    /// back-to-back execution would take.
    pub fn serial_seconds(&self) -> Seconds {
        self.busy_seconds.iter().sum()
    }

    /// Simulated completion time of the pool's greedy schedule (the most
    /// loaded instance finishes last).
    pub fn makespan_seconds(&self) -> Seconds {
        self.busy_seconds.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean instance utilization over the makespan, in [0, 1].
    pub fn utilization(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan <= 0.0 {
            return 0.0;
        }
        self.serial_seconds() / (self.instances() as f64 * makespan)
    }

    /// Throughput speedup over one-at-a-time execution of the same work.
    pub fn speedup_vs_serial(&self) -> f64 {
        let makespan = self.makespan_seconds();
        if makespan <= 0.0 {
            return 1.0;
        }
        self.serial_seconds() / makespan
    }
}

impl AcceleratorPool {
    pub fn new(instances: usize) -> AcceleratorPool {
        let n = instances.max(1);
        AcceleratorPool {
            state: Mutex::new(PoolState {
                free: (0..n).rev().collect(),
                busy_seconds: vec![0.0; n],
                idle_seconds: vec![0.0; n],
                leases: vec![0; n],
                waiting: VecDeque::new(),
                next_ticket: 0,
                closed: false,
                health: vec![Health::Healthy; n],
                leased_now: vec![false; n],
                quarantines: 0,
                reinstates: 0,
                faults_reported: 0,
                lease_stall: None,
            }),
            available: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PoolState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn size(&self) -> usize {
        self.lock().busy_seconds.len()
    }

    /// Blocks until this request reaches the head of the FIFO *and*
    /// enough instances are free, then atomically takes the `k`
    /// least-loaded ones (lowest ids on ties). Returns `None` once the
    /// pool is closed. `k` is clamped to the pool size — a larger gang
    /// could never be satisfied.
    fn acquire(&self, k: usize) -> Option<Vec<usize>> {
        let mut st = self.lock();
        let k = k.clamp(1, st.busy_seconds.len());
        if st.closed {
            return None;
        }
        let ticket = st.next_ticket;
        st.next_ticket += 1;
        st.waiting.push_back((ticket, k));
        loop {
            if st.closed {
                st.waiting.retain(|(t, _)| *t != ticket);
                return None;
            }
            // Quarantined instances shrink the schedulable pool; if every
            // instance is quarantined, self-heal by auto-probing the
            // lowest id rather than deadlocking the pipeline.
            let n = st.busy_seconds.len();
            if st.quarantined_count() == n {
                st.reinstate(0);
            }
            let need = k.min(n - st.quarantined_count()).max(1);
            if st.waiting.front().map(|(t, _)| *t) == Some(ticket) && st.free.len() >= need {
                st.waiting.pop_front();
                let ids = st.take_least_loaded(need);
                let stall = st.lease_stall;
                drop(st);
                // Leftover free instances may satisfy the next request.
                self.available.notify_all();
                if let Some(stall) = stall {
                    // Injected lease-grant stall (deterministic duration).
                    std::thread::sleep(stall);
                }
                return Some(ids);
            }
            st = match self.available.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Leases one instance (FIFO with every other request). Returns
    /// `None` once the pool is closed.
    pub fn lease(&self) -> Option<Lease<'_>> {
        let ids = self.acquire(1)?;
        Some(Lease {
            pool: self,
            id: ids[0],
            released: false,
        })
    }

    /// Atomically leases a gang of `k` instances (clamped to the pool
    /// size). The gang waits its FIFO turn and takes all members in one
    /// step — it can neither deadlock against other gangs (no incremental
    /// hoarding) nor be starved by a stream of singles (arrival order
    /// wins). Returns `None` once the pool is closed.
    pub fn lease_gang(&self, k: usize) -> Option<GangLease<'_>> {
        let ids = self.acquire(k)?;
        Some(GangLease {
            pool: self,
            ids,
            released: false,
        })
    }

    fn give_back(&self, ids: &[usize], sim_seconds: Seconds) {
        let mut st = self.lock();
        for &id in ids {
            st.busy_seconds[id] += sim_seconds;
            st.leased_now[id] = false;
            // Quarantined instances sit out until a probe reinstates them.
            if st.health[id] != Health::Quarantined {
                st.free.push(id);
            }
        }
        drop(st);
        self.available.notify_all();
    }

    /// Reports a fault on `id`, escalating its health one step:
    /// healthy → suspect → quarantined. A newly quarantined idle instance
    /// leaves the free list immediately; a leased one is withheld at
    /// give-back. Returns the instance's new health.
    pub fn report_fault(&self, id: usize) -> Health {
        let mut st = self.lock();
        if id >= st.health.len() {
            return Health::Healthy;
        }
        st.faults_reported += 1;
        let next = match st.health[id] {
            Health::Healthy => Health::Suspect,
            Health::Suspect | Health::Quarantined => Health::Quarantined,
        };
        if next == Health::Quarantined && st.health[id] != Health::Quarantined {
            st.quarantines += 1;
            st.free.retain(|&f| f != id);
        }
        st.health[id] = next;
        drop(st);
        // Capacity may have shrunk; waiters re-evaluate their clamp.
        self.available.notify_all();
        next
    }

    /// Probes a quarantined instance and reinstates it (the simulated
    /// probe always passes — instances here don't stay broken). Returns
    /// whether the instance was quarantined. No-op for healthy, suspect,
    /// or out-of-range ids.
    pub fn probe(&self, id: usize) -> bool {
        let mut st = self.lock();
        if id >= st.health.len() || st.health[id] != Health::Quarantined {
            return false;
        }
        st.reinstate(id);
        drop(st);
        self.available.notify_all();
        true
    }

    /// Injects a stall into every subsequent lease grant (`None` clears).
    pub fn set_lease_stall(&self, stall: Option<Duration>) {
        self.lock().lease_stall = stall;
    }

    /// Snapshot of instance health and the fault/quarantine counters.
    pub fn health(&self) -> PoolHealth {
        let st = self.lock();
        PoolHealth {
            states: st.health.clone(),
            quarantines: st.quarantines,
            reinstates: st.reinstates,
            faults_reported: st.faults_reported,
        }
    }

    /// Closes the pool: pending and future leases return `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.available.notify_all();
    }

    pub fn utilization(&self) -> PoolUtilization {
        let st = self.lock();
        PoolUtilization {
            busy_seconds: st.busy_seconds.clone(),
            idle_seconds: st.idle_seconds.clone(),
            leases: st.leases.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn leases_pack_onto_least_loaded_instance() {
        let pool = AcceleratorPool::new(2);
        // Two jobs of unequal length, then two more: the greedy schedule
        // puts the later jobs opposite the heavy one.
        let l0 = pool.lease().unwrap();
        let l1 = pool.lease().unwrap();
        assert_ne!(l0.id(), l1.id());
        let heavy = l0.id();
        l0.release(10.0);
        l1.release(1.0);
        let l2 = pool.lease().unwrap();
        assert_ne!(l2.id(), heavy, "next lease must avoid the loaded instance");
        l2.release(1.0);

        let u = pool.utilization();
        assert_eq!(u.instances(), 2);
        assert_eq!(u.serial_seconds(), 12.0);
        assert_eq!(u.makespan_seconds(), 10.0);
        assert!((u.speedup_vs_serial() - 1.2).abs() < 1e-12);
        assert_eq!(u.leases.iter().sum::<u64>(), 3);
    }

    /// Regression: ties on simulated load must break to the lowest
    /// instance id no matter how earlier lease/release traffic scrambled
    /// the free list — placement and utilization metrics must be
    /// reproducible run-to-run.
    #[test]
    fn equal_load_ties_break_to_lowest_instance_id() {
        let pool = AcceleratorPool::new(4);
        // Scramble the free list: take all four, release out of order
        // with *equal* charges so every instance stays tied.
        let leases: Vec<_> = (0..4).map(|_| pool.lease().unwrap()).collect();
        let mut leases: Vec<_> = leases.into_iter().collect();
        // Release 2, 0, 3, 1.
        for want in [2usize, 0, 3, 1] {
            let pos = leases.iter().position(|l| l.id() == want).unwrap();
            leases.remove(pos).release(1.0);
        }
        // All tied at 1.0s; the next lease must take instance 0, then 1…
        let a = pool.lease().unwrap();
        assert_eq!(a.id(), 0, "tie must break to the lowest id");
        let b = pool.lease().unwrap();
        assert_eq!(b.id(), 1);
        drop((a, b));

        // Same for a gang: lowest ids among the least loaded, ascending.
        let g = pool.lease_gang(3).unwrap();
        assert_eq!(g.ids(), &[0, 1, 2]);
        g.release(2.0);
        // Now 0/1/2 carry 3.0s, instance 3 carries 1.0s: a 2-gang takes
        // the least-loaded 3 plus the lowest-id tied instance 0.
        let g = pool.lease_gang(2).unwrap();
        assert_eq!(g.ids(), &[0, 3]);
        g.release(0.0);
    }

    #[test]
    fn gang_lease_is_atomic_and_charges_every_member() {
        let pool = AcceleratorPool::new(4);
        let g = pool.lease_gang(3).unwrap();
        assert_eq!(g.size(), 3);
        assert_eq!(g.ids(), &[0, 1, 2]);
        // One instance left for singles while the gang runs.
        let s = pool.lease().unwrap();
        assert_eq!(s.id(), 3);
        s.release(1.0);
        g.release(5.0);
        let u = pool.utilization();
        assert_eq!(u.busy_seconds, vec![5.0, 5.0, 5.0, 1.0]);
        assert_eq!(u.makespan_seconds(), 5.0);
        // Oversized gangs clamp to the pool rather than deadlocking.
        let g = pool.lease_gang(9).unwrap();
        assert_eq!(g.size(), 4);
        g.release(0.0);
    }

    /// A gang over uneven clocks starts in lockstep at its slowest
    /// member, so the lighter members are charged the schedule hole as
    /// idle time at grant; singles never accrue idle.
    #[test]
    fn gang_grant_charges_schedule_hole_idle_to_lighter_members() {
        let pool = AcceleratorPool::new(2);
        let a = pool.lease().unwrap();
        let b = pool.lease().unwrap();
        a.release(3.0);
        b.release(1.0);
        // Singles accrue no idle, whatever their clocks.
        assert_eq!(pool.utilization().idle_seconds, vec![0.0, 0.0]);

        // Gang starts at t = 3.0 (instance 0's clock); instance 1 sat
        // idle from t = 1.0 until then.
        let g = pool.lease_gang(2).unwrap();
        g.release(2.0);
        let u = pool.utilization();
        assert_eq!(u.busy_seconds, vec![5.0, 3.0]);
        assert_eq!(u.idle_seconds, vec![0.0, 2.0]);

        // Busy-clock accounting is untouched by the idle charge.
        assert_eq!(u.serial_seconds(), 8.0);
    }

    /// FIFO grant order: a waiting gang is not starved by singles that
    /// arrive after it, and the singles still run once the gang got its
    /// turn — neither side starves the other.
    #[test]
    fn waiting_gang_neither_starves_nor_is_starved() {
        let pool = Arc::new(AcceleratorPool::new(2));
        let l0 = pool.lease().unwrap();
        let l1 = pool.lease().unwrap();

        let (tx, rx) = mpsc::channel::<&'static str>();
        let gang_pool = Arc::clone(&pool);
        let gang_tx = tx.clone();
        let gang = std::thread::spawn(move || {
            let g = gang_pool.lease_gang(2).unwrap();
            gang_tx.send("gang").unwrap();
            g.release(1.0);
        });
        // Give the gang time to enqueue, then queue a single behind it.
        std::thread::sleep(Duration::from_millis(30));
        let single_pool = Arc::clone(&pool);
        let single_tx = tx.clone();
        let single = std::thread::spawn(move || {
            let s = single_pool.lease().unwrap();
            single_tx.send("single").unwrap();
            s.release(1.0);
        });
        std::thread::sleep(Duration::from_millis(30));

        // One instance frees: the gang (head of the queue) still needs
        // two, and the single behind it must not jump the line.
        l0.release(1.0);
        assert!(
            rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "nobody can be served on one free instance while a 2-gang heads the queue"
        );
        // Second instance frees: the gang takes both, then the single.
        l1.release(1.0);
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "gang");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "single");
        gang.join().unwrap();
        single.join().unwrap();
        let u = pool.utilization();
        assert_eq!(
            u.leases.iter().sum::<u64>(),
            5,
            "2 singles + 2-gang + 1 single"
        );
    }

    #[test]
    fn equal_jobs_reach_near_linear_speedup() {
        let pool = AcceleratorPool::new(4);
        for _ in 0..16 {
            let lease = pool.lease().unwrap();
            lease.release(1.0);
        }
        let u = pool.utilization();
        assert_eq!(u.serial_seconds(), 16.0);
        assert_eq!(u.makespan_seconds(), 4.0);
        assert!((u.speedup_vs_serial() - 4.0).abs() < 1e-12);
        assert!((u.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dropped_lease_returns_instance_without_charge() {
        let pool = AcceleratorPool::new(1);
        {
            let _lease = pool.lease().unwrap();
            // Dropped without release (the panic path).
        }
        let again = pool.lease().expect("instance must come back");
        again.release(2.0);
        assert_eq!(pool.utilization().serial_seconds(), 2.0);
        {
            let _gang = pool.lease_gang(1).unwrap();
        }
        assert!(pool.lease().is_some(), "dropped gang frees its members");
    }

    #[test]
    fn close_wakes_blocked_leases() {
        let pool = std::sync::Arc::new(AcceleratorPool::new(1));
        let held = pool.lease().unwrap();
        let p2 = std::sync::Arc::clone(&pool);
        let waiter = std::thread::spawn(move || p2.lease().is_none());
        let p3 = std::sync::Arc::clone(&pool);
        let gang_waiter = std::thread::spawn(move || p3.lease_gang(1).is_none());
        // Give the waiters time to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        pool.close();
        assert!(waiter.join().unwrap(), "blocked lease must see the close");
        assert!(
            gang_waiter.join().unwrap(),
            "blocked gang must see the close"
        );
        drop(held);
        assert!(pool.lease().is_none(), "closed pool stays closed");
    }

    #[test]
    fn fault_reports_escalate_and_quarantine_withholds_the_instance() {
        let pool = AcceleratorPool::new(2);
        assert_eq!(pool.report_fault(0), Health::Suspect);
        // Suspect instances still schedule.
        let l = pool.lease().unwrap();
        assert_eq!(l.id(), 0);
        l.release(1.0);
        // Second fault quarantines; the idle instance leaves the free
        // list immediately, so the next lease lands elsewhere even though
        // instance 0 is the least loaded... (it is not: 1.0 vs 0.0 — take
        // the other one anyway to prove avoidance).
        assert_eq!(pool.report_fault(0), Health::Quarantined);
        let l = pool.lease().unwrap();
        assert_eq!(l.id(), 1);
        l.release(5.0);
        let l = pool.lease().unwrap();
        assert_eq!(l.id(), 1, "quarantined instance must not be leased");
        l.release(0.0);
        // Probe reinstates; instance 0 is schedulable again.
        assert!(pool.probe(0));
        assert!(!pool.probe(0), "probe is idempotent");
        let l = pool.lease().unwrap();
        assert_eq!(l.id(), 0);
        l.release(0.0);
        let h = pool.health();
        assert_eq!(h.quarantines, 1);
        assert_eq!(h.reinstates, 1);
        assert_eq!(h.faults_reported, 2);
        assert_eq!(h.quarantined_now(), 0);
    }

    #[test]
    fn quarantine_of_a_leased_instance_takes_effect_at_give_back() {
        let pool = AcceleratorPool::new(2);
        let g = pool.lease_gang(2).unwrap();
        // Confirmed gang-member fault: escalate instance 1 twice.
        pool.report_fault(1);
        pool.report_fault(1);
        g.release(1.0);
        assert_eq!(pool.health().states[1], Health::Quarantined);
        // Both capacity and gang clamp shrink to the surviving instance.
        let g = pool.lease_gang(2).unwrap();
        assert_eq!(g.ids(), &[0], "gang clamps to non-quarantined capacity");
        g.release(1.0);
    }

    #[test]
    fn fully_quarantined_pool_self_heals_instead_of_deadlocking() {
        let pool = AcceleratorPool::new(2);
        for id in 0..2 {
            pool.report_fault(id);
            pool.report_fault(id);
        }
        assert_eq!(pool.health().quarantined_now(), 2);
        let l = pool.lease().expect("self-heal must reinstate an instance");
        assert_eq!(l.id(), 0, "lowest id is auto-probed");
        l.release(1.0);
        let h = pool.health();
        assert_eq!(h.quarantined_now(), 1);
        assert_eq!(h.reinstates, 1);
    }

    #[test]
    fn probe_during_lease_does_not_double_free() {
        let pool = AcceleratorPool::new(1);
        let l = pool.lease().unwrap();
        pool.report_fault(0);
        pool.report_fault(0);
        // Reinstate while the lease is still out: no double-free.
        assert!(pool.probe(0));
        l.release(1.0);
        let a = pool.lease().unwrap();
        let p2: &AcceleratorPool = &pool;
        std::thread::scope(|scope| {
            let t = scope.spawn(move || {
                // Must block (only one instance), not succeed instantly.
                std::thread::sleep(Duration::from_millis(20));
                p2.close();
            });
            assert!(p2.lease().is_none(), "second lease must wait, then close");
            t.join().unwrap();
        });
        a.release(0.0);
    }

    #[test]
    fn lease_stall_injection_delays_grants() {
        let pool = AcceleratorPool::new(1);
        pool.set_lease_stall(Some(Duration::from_millis(25)));
        let t0 = std::time::Instant::now();
        let l = pool.lease().unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(25));
        l.release(0.0);
        pool.set_lease_stall(None);
        let t0 = std::time::Instant::now();
        pool.lease().unwrap().release(0.0);
        assert!(t0.elapsed() < Duration::from_millis(25));
    }

    #[test]
    fn empty_pool_utilization_is_safe() {
        let pool = AcceleratorPool::new(3);
        let u = pool.utilization();
        assert_eq!(u.utilization(), 0.0);
        assert_eq!(u.speedup_vs_serial(), 1.0);
        assert_eq!(u.makespan_seconds(), 0.0);
    }
}
