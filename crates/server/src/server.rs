//! The serving front door: [`DanaServer`].
//!
//! Lifecycle of one query (the Fig. 2 flow, lifted to a serving tier):
//!
//! ```text
//!  client ──open_session──► SessionManager
//!    │ submit(SQL / UDF / spec)
//!    ▼
//!  AdmissionQueue  (bounded; FIFO or SJF by DanaTiming cost estimate)
//!    │ pop
//!    ▼
//!  worker thread ──lease──► AcceleratorPool (N FpgaSpec instances)
//!    │ run on SystemCore (shared catalog + sharded buffer pool)
//!    ▼
//!  QueryReply ──crossbeam channel──► Ticket::wait
//! ```
//!
//! DDL (create/drop/prewarm/deploy) executes synchronously on the caller's
//! thread — it needs no accelerator, and the catalog's own locking already
//! serializes it correctly against in-flight queries. Queries (anything
//! that trains) are admitted, scheduled, and executed on a leased
//! accelerator by the worker pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{self, Receiver};

use dana::{
    exec, parse_statement, AnalyzeReport, BackendKind, DanaReport, DanaResult, DeployInfo,
    DropSummary, EvalReport, ExecutionMode, MetricKind, PointReport, PredictReport, QueryTrace,
    SpanRecorder, Statement, StatementOutcome, StatsSnapshot, StrategyComparison,
};
use dana_engine::{CancelToken, FaultPlan, RetryPolicy};
use dana_obs::StatEntry;
use dana_storage::HeapFile;

use crate::accel::{AcceleratorPool, PoolHealth, PoolUtilization};
use crate::admission::{AdmissionConfig, AdmissionQueue, Priority, QueueStats};
use crate::core::{QueryCtx, SystemCore, SystemCoreConfig};
use crate::error::{ServerError, ServerResult};
use crate::session::{SessionId, SessionManager, SessionStats};

/// A query a client can submit for scheduled execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Any front-door SQL statement: `SELECT * FROM dana.<udf>(…)`,
    /// `PREDICT … INTO …`, or `EVALUATE …`.
    Sql(String),
    /// Direct invocation of a deployed UDF (full-Strider mode).
    /// `shards > 1` runs it gang-parallel on that many pool instances
    /// (acquired atomically; clamped to the pool size).
    RunUdf {
        udf: String,
        table: String,
        shards: Option<u16>,
    },
    /// Ad-hoc compile-and-train in a specific execution mode (the
    /// ablation path; nothing is stored in the catalog).
    TrainSpec {
        spec: dana_dsl::AlgoSpec,
        table: String,
        mode: ExecutionMode,
    },
    /// Score `table` with `udf`'s latest trained model and materialize
    /// the predictions as catalog table `into`.
    Predict {
        udf: String,
        table: String,
        into: String,
        shards: Option<u16>,
    },
    /// Score `table` and compute an in-database quality metric.
    Evaluate {
        udf: String,
        table: String,
        metric: Option<MetricKind>,
        shards: Option<u16>,
    },
    /// The **point fast path**: score inline parameter rows against
    /// `udf`'s latest trained model — no heap scan, no buffer-pool
    /// traffic, no materialization, and no accelerator lease when the
    /// advisor routes it to the CPU tier. Admitted `Interactive`, so
    /// it is never starved behind gang training jobs. The typed twin
    /// of `PREDICT dana.<udf>(VALUES (…), …)`.
    PredictPoint { udf: String, rows: Vec<Vec<f32>> },
}

/// What a finished query produced: training, scoring, and evaluation
/// queries return different artifacts.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// EXECUTE/train: the trained model and its timing.
    Trained(DanaReport),
    /// PREDICT: the materialized prediction table's report.
    Predicted(PredictReport),
    /// EVALUATE: the computed metric.
    Evaluated(EvalReport),
    /// EXPLAIN: the advisor's per-backend comparison; nothing executed.
    Explained(StrategyComparison),
    /// EXPLAIN ANALYZE: the inner statement's outcome plus its lifecycle
    /// trace (and the advisor prediction it calibrates).
    Analyzed(Box<AnalyzeReport>),
    /// Point-form PREDICT: inline predictions, nothing materialized.
    Point(PointReport),
    /// SHOW STATS: the server-wide metrics snapshot (core registry +
    /// admission queue + accelerator pool + sessions).
    Stats(StatsSnapshot),
}

impl QueryResponse {
    /// End-to-end simulated seconds, whichever query type ran. Zero for
    /// EXPLAIN / SHOW STATS (nothing executed) and for CPU-tier runs
    /// (nothing simulated — their stopwatch lives in
    /// `timing.wall_seconds`). An EXPLAIN ANALYZE charges its inner
    /// statement's simulated total (it really ran on the lease).
    pub fn sim_seconds(&self) -> f64 {
        match self {
            QueryResponse::Trained(r) => r.timing.total_seconds,
            QueryResponse::Predicted(p) => p.timing.total_seconds,
            QueryResponse::Evaluated(e) => e.timing.total_seconds,
            QueryResponse::Point(p) => p.timing.total_seconds,
            QueryResponse::Explained(_) | QueryResponse::Stats(_) => 0.0,
            QueryResponse::Analyzed(a) => {
                a.outcome.timing().map(|t| t.total_seconds).unwrap_or(0.0)
            }
        }
    }

    /// Short kind name for typed-accessor mismatch errors.
    fn kind(&self) -> &'static str {
        match self {
            QueryResponse::Trained(_) => "training",
            QueryResponse::Predicted(_) => "predict",
            QueryResponse::Evaluated(_) => "evaluate",
            QueryResponse::Point(_) => "point-predict",
            QueryResponse::Explained(_) => "explain",
            QueryResponse::Analyzed(_) => "explain-analyze",
            QueryResponse::Stats(_) => "stats",
        }
    }

    /// The substrate that ran the query, if one did.
    fn backend(&self) -> Option<BackendKind> {
        match self {
            QueryResponse::Trained(r) => Some(r.backend),
            QueryResponse::Predicted(p) => Some(p.backend),
            QueryResponse::Evaluated(e) => Some(e.backend),
            QueryResponse::Point(p) => Some(p.backend),
            QueryResponse::Explained(_) | QueryResponse::Stats(_) => None,
            QueryResponse::Analyzed(a) => a.outcome.backend(),
        }
    }
}

/// A finished query, as delivered to the submitting client.
#[derive(Debug, Clone)]
pub struct QueryReply {
    pub response: QueryResponse,
    /// Which accelerator-pool instance ran the query (a gang's first
    /// member for sharded queries). `usize::MAX` for lease-free work —
    /// EXPLAIN and CPU-tier runs never touch the pool.
    pub accelerator: usize,
    /// Every pool instance the query's gang held, ascending (one entry
    /// for serial queries; empty for lease-free EXPLAIN/CPU-tier work).
    pub gang: Vec<usize>,
    /// Wall-clock seconds spent waiting in the admission queue.
    pub queue_seconds: f64,
    /// Wall-clock seconds spent executing on the worker.
    pub exec_seconds: f64,
    /// The query-lifecycle trace, present when the statement opted in
    /// with `WITH (trace = on)`. (`EXPLAIN ANALYZE` carries its trace
    /// inside [`QueryResponse::Analyzed`] instead.)
    pub trace: Option<QueryTrace>,
}

impl QueryReply {
    /// The training report, or the typed
    /// [`ServerError::UnexpectedReply`] for other reply kinds.
    pub fn try_report(&self) -> ServerResult<&DanaReport> {
        match &self.response {
            QueryResponse::Trained(r) => Ok(r),
            other => Err(unexpected("training", other)),
        }
    }

    /// The prediction report, or the typed mismatch error.
    pub fn try_predict_report(&self) -> ServerResult<&PredictReport> {
        match &self.response {
            QueryResponse::Predicted(p) => Ok(p),
            other => Err(unexpected("predict", other)),
        }
    }

    /// The evaluation report, or the typed mismatch error.
    pub fn try_eval_report(&self) -> ServerResult<&EvalReport> {
        match &self.response {
            QueryResponse::Evaluated(e) => Ok(e),
            other => Err(unexpected("evaluate", other)),
        }
    }

    /// The point-prediction report, or the typed mismatch error.
    pub fn try_point_report(&self) -> ServerResult<&PointReport> {
        match &self.response {
            QueryResponse::Point(p) => Ok(p),
            other => Err(unexpected("point-predict", other)),
        }
    }

    /// The EXPLAIN comparison, or the typed mismatch error.
    pub fn try_comparison(&self) -> ServerResult<&StrategyComparison> {
        match &self.response {
            QueryResponse::Explained(c) => Ok(c),
            other => Err(unexpected("explain", other)),
        }
    }

    /// The EXPLAIN ANALYZE report, or the typed mismatch error.
    pub fn try_analyze_report(&self) -> ServerResult<&AnalyzeReport> {
        match &self.response {
            QueryResponse::Analyzed(a) => Ok(a),
            other => Err(unexpected("explain-analyze", other)),
        }
    }

    /// The SHOW STATS snapshot, or the typed mismatch error.
    pub fn try_stats(&self) -> ServerResult<&StatsSnapshot> {
        match &self.response {
            QueryResponse::Stats(s) => Ok(s),
            other => Err(unexpected("stats", other)),
        }
    }

    /// The training report (panics for other reply kinds — the training
    /// clients' convenience accessor; [`QueryReply::try_report`] is the
    /// non-panicking form).
    pub fn report(&self) -> &DanaReport {
        self.try_report().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The prediction report (panics for other reply kinds).
    pub fn predict_report(&self) -> &PredictReport {
        self.try_predict_report().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The evaluation report (panics for other reply kinds).
    pub fn eval_report(&self) -> &EvalReport {
        self.try_eval_report().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The point-prediction report (panics for other reply kinds).
    pub fn point_report(&self) -> &PointReport {
        self.try_point_report().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The EXPLAIN comparison (panics for other reply kinds).
    pub fn comparison(&self) -> &StrategyComparison {
        self.try_comparison().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The EXPLAIN ANALYZE report (panics for other reply kinds).
    pub fn analyze_report(&self) -> &AnalyzeReport {
        self.try_analyze_report().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The SHOW STATS snapshot (panics for other reply kinds).
    pub fn stats(&self) -> &StatsSnapshot {
        self.try_stats().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// The typed accessor-mismatch error.
fn unexpected(expected: &'static str, got: &QueryResponse) -> ServerError {
    ServerError::UnexpectedReply {
        expected,
        got: got.kind().to_string(),
    }
}

pub(crate) type ReplyResult = ServerResult<QueryReply>;

/// Handle to one submitted query; redeem with [`DanaServer::wait`].
pub struct Ticket {
    pub seq: u64,
    pub session: SessionId,
    rx: Receiver<ReplyResult>,
}

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Accelerator instances in the pool.
    pub accelerators: usize,
    /// Worker threads executing admitted queries. Defaults to the
    /// accelerator count — more workers than instances just wait on
    /// leases.
    pub workers: usize,
    pub admission: AdmissionConfig,
    pub core: SystemCoreConfig,
    /// Default per-query deadline, applied to every submission whose
    /// statement doesn't carry its own `WITH (timeout_ms = …)`. `None`
    /// (the default) means queries without the option never time out.
    pub default_timeout_ms: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::with_accelerators(4)
    }
}

impl ServerConfig {
    /// A config with `n` accelerators and `n` workers.
    pub fn with_accelerators(n: usize) -> ServerConfig {
        let n = n.max(1);
        ServerConfig {
            accelerators: n,
            workers: n,
            admission: AdmissionConfig::default(),
            core: SystemCoreConfig::default(),
            default_timeout_ms: None,
        }
    }

    /// Sets the server-wide default query deadline.
    pub fn with_default_timeout_ms(mut self, ms: u64) -> ServerConfig {
        self.default_timeout_ms = Some(ms);
        self
    }
}

/// The concurrent query-serving subsystem.
pub struct DanaServer {
    core: Arc<SystemCore>,
    accels: Arc<AcceleratorPool>,
    queue: Arc<AdmissionQueue>,
    sessions: Arc<SessionManager>,
    workers: Vec<JoinHandle<()>>,
    default_timeout_ms: Option<u64>,
}

impl DanaServer {
    /// Boots the server: builds the shared core and starts the worker
    /// pool.
    pub fn start(config: ServerConfig) -> DanaServer {
        let core = Arc::new(SystemCore::new(config.core));
        let accels = Arc::new(AcceleratorPool::new(config.accelerators));
        let queue = Arc::new(AdmissionQueue::new(config.admission));
        let sessions = Arc::new(SessionManager::new());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let accels = Arc::clone(&accels);
                let queue = Arc::clone(&queue);
                let sessions = Arc::clone(&sessions);
                std::thread::Builder::new()
                    .name(format!("dana-worker-{i}"))
                    .spawn(move || worker_loop(&core, &accels, &queue, &sessions))
                    .expect("spawn worker thread")
            })
            .collect();
        DanaServer {
            core,
            accels,
            queue,
            sessions,
            workers,
            default_timeout_ms: config.default_timeout_ms,
        }
    }

    /// The shared system core (storage statistics, leak detectors, direct
    /// DDL).
    pub fn core(&self) -> &SystemCore {
        &self.core
    }

    // ---- sessions -------------------------------------------------------

    pub fn open_session(&self, name: &str) -> SessionId {
        self.sessions.open(name)
    }

    pub fn close_session(&self, id: SessionId) -> ServerResult<SessionStats> {
        self.sessions.close(id)
    }

    pub fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.sessions.stats(id)
    }

    pub fn all_session_stats(&self) -> Vec<(SessionId, SessionStats)> {
        self.sessions.all_stats()
    }

    // ---- DDL (synchronous) ----------------------------------------------

    pub fn create_table(&self, name: &str, heap: HeapFile) -> DanaResult<dana_storage::HeapId> {
        self.core.create_table(name, heap)
    }

    pub fn drop_table(&self, name: &str) -> DanaResult<DropSummary> {
        self.core.drop_table(name)
    }

    pub fn prewarm(&self, table: &str) -> DanaResult<usize> {
        self.core.prewarm(table)
    }

    pub fn deploy(&self, spec: &dana_dsl::AlgoSpec, table: &str) -> DanaResult<DeployInfo> {
        self.core.deploy(spec, table)
    }

    // ---- queries --------------------------------------------------------

    /// Admits a query for scheduled execution. Non-blocking: refusal
    /// (overload, unknown session, shutdown) is immediate and typed.
    pub fn submit(&self, session: SessionId, request: QueryRequest) -> ServerResult<Ticket> {
        self.sessions.record_submit(session)?;
        let priority = priority_for(&request);
        let cost_hint = self.cost_hint(&request);
        let deadline = self.deadline_for(&request);
        let (tx, rx) = channel::bounded(1);
        let seq = self
            .queue
            .submit(session, request, priority, cost_hint, deadline, tx)?;
        Ok(Ticket { seq, session, rx })
    }

    /// The query's deadline, anchored at submit time (admission wait
    /// counts against it): the statement's `WITH (timeout_ms = …)`, or
    /// the server-wide default for statements (and ad-hoc requests)
    /// without one.
    fn deadline_for(&self, request: &QueryRequest) -> Option<Instant> {
        let ms = match request {
            QueryRequest::Sql(sql) => match parse_statement(sql) {
                Ok(stmt) => stmt.timeout_ms().or(self.default_timeout_ms),
                // Parse errors surface typed from the dispatch; don't
                // let a deadline shed them into a misleading timeout.
                Err(_) => None,
            },
            _ => self.default_timeout_ms,
        };
        ms.map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    /// Blocks until the ticket's query finishes.
    pub fn wait(&self, ticket: Ticket) -> ServerResult<QueryReply> {
        ticket.rx.recv().unwrap_or(Err(ServerError::WorkerLost))
    }

    /// Submit + wait in one call (the blocking client API).
    pub fn call(&self, session: SessionId, request: QueryRequest) -> ServerResult<QueryReply> {
        let ticket = self.submit(session, request)?;
        self.wait(ticket)
    }

    /// SJF's ordering key. Training queries are priced by the deploy-time
    /// engine estimate × epochs; scoring queries by tuple count ×
    /// program length (a single pass — under SJF they overtake long
    /// training jobs). **Sharded queries divide the estimate by their
    /// gang size** — a 4-shard gang finishes its scan ~4× sooner, and
    /// pricing it serially would let SJF wrongly starve it behind
    /// genuinely shorter singles. Unknown or ad-hoc work gets a neutral
    /// hint (0), which SJF treats as "probably interactive": it runs
    /// early, keeping the policy conservative rather than starving
    /// unknowns.
    pub fn cost_hint(&self, request: &QueryRequest) -> f64 {
        let serial = match request {
            QueryRequest::Sql(sql) => match parse_statement(sql) {
                Ok(stmt) => statement_cost_hint(&self.core, &stmt),
                Err(_) => 0.0,
            },
            QueryRequest::RunUdf { udf, .. } => self.core.estimated_seconds(udf).unwrap_or(0.0),
            QueryRequest::TrainSpec { .. } => 0.0,
            QueryRequest::Predict { udf, table, .. }
            | QueryRequest::Evaluate { udf, table, .. } => self
                .core
                .estimated_scoring_seconds(udf, table)
                .unwrap_or(0.0),
            QueryRequest::PredictPoint { udf, rows } => self
                .core
                .estimated_point_seconds(udf, rows.len() as u64)
                .unwrap_or(0.0),
        };
        serial / gang_size(request, self.accels.size(), &self.core) as f64
    }

    // ---- observability --------------------------------------------------

    pub fn pool_utilization(&self) -> PoolUtilization {
        self.accels.utilization()
    }

    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    // ---- fault tolerance -------------------------------------------------

    /// Installs (or clears) the deterministic fault-injection plan:
    /// guarded training paths consult it at epoch boundaries, and the
    /// accelerator pool applies its lease stall, if any. Test/smoke-run
    /// machinery — production servers never install one.
    pub fn install_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        self.accels
            .set_lease_stall(plan.as_ref().and_then(|p| p.lease_stall_for()));
        self.core.install_fault_plan(plan);
    }

    /// Snapshot of per-instance health and the quarantine counters.
    pub fn pool_health(&self) -> PoolHealth {
        self.accels.health()
    }

    /// Probes a quarantined accelerator instance and reinstates it on
    /// success (the injected faults this build answers are transient, so
    /// a probe always passes). Returns whether the instance was
    /// reinstated; healthy instances return `false`.
    pub fn probe_accelerator(&self, id: usize) -> bool {
        self.accels.probe(id)
    }

    /// The server-wide `SHOW STATS` snapshot: the core's registry and
    /// buffer/engine rows plus admission-queue, accelerator-pool, and
    /// session rows, every pull-side value read from its authoritative
    /// owner at snapshot time. Identical to what a `SHOW STATS` query
    /// submitted through a session returns.
    pub fn stats_snapshot(&self, subsystem: Option<&str>) -> StatsSnapshot {
        server_stats(
            &self.core,
            &self.accels,
            &self.queue,
            &self.sessions,
            subsystem,
        )
    }

    /// Drains admitted work, stops the workers, and returns the final
    /// utilization report.
    pub fn shutdown(mut self) -> PoolUtilization {
        self.stop_workers();
        self.accels.utilization()
    }

    fn stop_workers(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.accels.close();
    }
}

impl Drop for DanaServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// The admission class one request rides in: point predictions (typed
/// or SQL form) are `Interactive` — the dequeue prefers them over any
/// waiting batch job, so a microsecond lookup is never starved behind
/// a gang training job. Everything else (including unparseable SQL,
/// which surfaces its error from the dispatch) is `Batch`.
fn priority_for(request: &QueryRequest) -> Priority {
    match request {
        QueryRequest::PredictPoint { .. } => Priority::Interactive,
        QueryRequest::Sql(sql) => match parse_statement(sql) {
            Ok(stmt) => statement_priority(&stmt),
            Err(_) => Priority::Batch,
        },
        _ => Priority::Batch,
    }
}

/// [`priority_for`] for an already-parsed statement (`EXPLAIN ANALYZE`
/// rides its inner statement's class — it really runs it).
fn statement_priority(stmt: &Statement) -> Priority {
    match stmt {
        Statement::PredictPoint(_) => Priority::Interactive,
        Statement::ExplainAnalyze(inner) => statement_priority(inner),
        _ => Priority::Batch,
    }
}

/// SJF's serial ordering key for one parsed statement. `EXPLAIN
/// ANALYZE` prices its inner statement (it really runs); metadata-only
/// statements run instantly and schedule first.
fn statement_cost_hint(core: &SystemCore, stmt: &Statement) -> f64 {
    match stmt {
        Statement::Train(call) => core.estimated_seconds(&call.udf).unwrap_or(0.0),
        Statement::Predict(p) => core
            .estimated_scoring_seconds(&p.udf, &p.table)
            .unwrap_or(0.0),
        Statement::Evaluate(e) => core
            .estimated_scoring_seconds(&e.udf, &e.table)
            .unwrap_or(0.0),
        // Point queries are priced by their inline row count × program
        // length across the lanes — never the bound table's
        // tuples × epochs, so SJF sees them for the microseconds of
        // work they are.
        Statement::PredictPoint(p) => core
            .estimated_point_seconds(&p.udf, p.rows.len() as u64)
            .unwrap_or(0.0),
        Statement::ExplainAnalyze(inner) => statement_cost_hint(core, inner),
        // Metadata-only: runs instantly, schedule it first.
        Statement::Explain(_) | Statement::ShowStats(_) => 0.0,
    }
}

/// The shard request and scanned table of one parsed statement
/// (`EXPLAIN ANALYZE` leases for its inner statement).
fn statement_shards(stmt: &Statement) -> (Option<u16>, Option<&str>) {
    match stmt {
        Statement::Train(c) => (c.shards, Some(&c.table)),
        Statement::Predict(p) => (p.shards, Some(&p.table)),
        Statement::Evaluate(e) => (e.shards, Some(&e.table)),
        // Point-form PREDICT has no scan: nothing to shard, no table.
        Statement::PredictPoint(_) => (None, None),
        Statement::ExplainAnalyze(inner) => statement_shards(inner),
        Statement::Explain(_) | Statement::ShowStats(_) => (None, None),
    }
}

/// The gang size a request calls for, clamped to the pool size **and**
/// the scanned table's page count (the shard planner never makes more
/// shards than pages) — the number of instances the worker leases
/// atomically and the shard count the query actually runs with. They
/// must agree, or the simulated schedule would charge hardware the
/// query never used.
fn gang_size(request: &QueryRequest, pool: usize, core: &SystemCore) -> u16 {
    let (requested, table) = match request {
        QueryRequest::Sql(sql) => match parse_statement(sql) {
            Ok(stmt) => return statement_gang_size(&stmt, pool, core),
            Err(_) => (None, None),
        },
        QueryRequest::RunUdf { shards, table, .. }
        | QueryRequest::Predict { shards, table, .. }
        | QueryRequest::Evaluate { shards, table, .. } => (*shards, Some(table.clone())),
        QueryRequest::TrainSpec { .. } | QueryRequest::PredictPoint { .. } => (None, None),
    };
    clamp_gang(requested, table.as_deref(), pool, core)
}

/// [`gang_size`] for an already-parsed statement.
fn statement_gang_size(stmt: &Statement, pool: usize, core: &SystemCore) -> u16 {
    let (requested, table) = statement_shards(stmt);
    clamp_gang(requested, table, pool, core)
}

fn clamp_gang(requested: Option<u16>, table: Option<&str>, pool: usize, core: &SystemCore) -> u16 {
    let mut k = requested.unwrap_or(1).clamp(1, pool.max(1) as u16);
    if let Some(pages) = table.and_then(|t| core.table_pages(t)) {
        k = k.min(dana_parallel::ShardPlan::effective_shards(pages, k as usize) as u16);
    }
    k
}

/// Whether a request needs the simulated-FPGA tier (and therefore an
/// accelerator lease). `EXPLAIN`, `SHOW STATS`, and statements the
/// advisor (or a `WITH (backend = cpu)` override) routes to the native
/// CPU tier run lease-free — the pool is accelerator hardware, and a CPU
/// run charging it would corrupt the utilization accounting. Resolution
/// errors say FPGA here: the execution dispatch re-resolves and surfaces
/// them typed.
fn statement_needs_accelerator(core: &SystemCore, stmt: &Statement) -> bool {
    match stmt {
        Statement::Explain(_) | Statement::ShowStats(_) => false,
        Statement::ExplainAnalyze(inner) => statement_needs_accelerator(core, inner),
        _ => !matches!(core.resolve_backend(stmt), Ok(BackendKind::Cpu)),
    }
}

/// [`statement_needs_accelerator`] for ad-hoc (typed, non-SQL)
/// requests: they run on the accelerator tier — except point
/// predictions the advisor routes to the CPU tier, which are
/// lease-free exactly like their SQL form.
fn request_needs_accelerator(core: &SystemCore, request: &QueryRequest) -> bool {
    match request {
        QueryRequest::PredictPoint { udf, rows } => {
            !matches!(core.point_backend(udf, rows), Ok(BackendKind::Cpu))
        }
        _ => true,
    }
}

/// Maps a dispatched statement outcome to the wire-level reply variant.
fn outcome_to_response(outcome: StatementOutcome) -> QueryResponse {
    match outcome {
        StatementOutcome::Train(o) => QueryResponse::Trained(o.report),
        StatementOutcome::Predict(p) => QueryResponse::Predicted(p),
        StatementOutcome::Evaluate(e) => QueryResponse::Evaluated(e),
        StatementOutcome::Point(p) => QueryResponse::Point(p),
        StatementOutcome::Explain(c) => QueryResponse::Explained(c),
        StatementOutcome::Analyze(a) => QueryResponse::Analyzed(a),
        StatementOutcome::Stats(s) => QueryResponse::Stats(s),
    }
}

/// Assembles the server-wide `SHOW STATS` snapshot: core-owned rows
/// (registry, buffer pool, engine cache) plus the admission queue's,
/// accelerator pool's, and session manager's — each read from its
/// authoritative owner at snapshot time, so `SHOW STATS` can never
/// disagree with `pool_utilization()` / `queue_stats()`.
fn server_stats(
    core: &SystemCore,
    accels: &AcceleratorPool,
    queue: &AdmissionQueue,
    sessions: &SessionManager,
    subsystem: Option<&str>,
) -> StatsSnapshot {
    let mut entries = Vec::new();
    core.stats_entries(&mut entries);
    let qs = queue.stats();
    entries.push(StatEntry::new("admission", "depth", qs.depth as f64));
    entries.push(StatEntry::new("admission", "admitted", qs.admitted as f64));
    entries.push(StatEntry::new("admission", "rejected", qs.rejected as f64));
    entries.push(StatEntry::new("admission", "shed", qs.shed as f64));
    let h = accels.health();
    entries.push(StatEntry::new(
        "faults",
        "quarantined_now",
        h.quarantined_now() as f64,
    ));
    entries.push(StatEntry::new(
        "faults",
        "quarantines",
        h.quarantines as f64,
    ));
    entries.push(StatEntry::new("faults", "reinstates", h.reinstates as f64));
    entries.push(StatEntry::new(
        "faults",
        "faults_reported",
        h.faults_reported as f64,
    ));
    for (i, state) in h.states.iter().enumerate() {
        entries.push(StatEntry::new(
            "faults",
            format!("health_{i}"),
            state.code() as f64,
        ));
    }
    let u = accels.utilization();
    entries.push(StatEntry::new("pool", "instances", u.instances() as f64));
    entries.push(StatEntry::new("pool", "utilization", u.utilization()));
    entries.push(StatEntry::new(
        "pool",
        "busy_seconds_total",
        u.serial_seconds(),
    ));
    for i in 0..u.instances() {
        entries.push(StatEntry::new(
            "pool",
            format!("busy_seconds_{i}"),
            u.busy_seconds[i],
        ));
        entries.push(StatEntry::new(
            "pool",
            format!("idle_seconds_{i}"),
            u.idle_seconds[i],
        ));
        entries.push(StatEntry::new(
            "pool",
            format!("leases_{i}"),
            u.leases[i] as f64,
        ));
    }
    let all = sessions.all_stats();
    entries.push(StatEntry::new("sessions", "open", all.len() as f64));
    let sum = |f: fn(&SessionStats) -> f64| all.iter().map(|(_, s)| f(s)).sum::<f64>();
    entries.push(StatEntry::new(
        "sessions",
        "submitted",
        sum(|s| s.submitted as f64),
    ));
    entries.push(StatEntry::new(
        "sessions",
        "completed",
        sum(|s| s.completed as f64),
    ));
    entries.push(StatEntry::new(
        "sessions",
        "failed",
        sum(|s| s.failed as f64),
    ));
    entries.push(StatEntry::new(
        "sessions",
        "sim_seconds",
        sum(|s| s.sim_seconds),
    ));
    entries.push(StatEntry::new(
        "sessions",
        "wall_seconds",
        sum(|s| s.wall_seconds),
    ));
    let snap = StatsSnapshot::new(entries);
    match subsystem {
        Some(s) => snap.filtered(s),
        None => snap,
    }
}

/// Folds one finished worker dispatch into the core's metrics registry:
/// completion/failure counters, the exec-wall histogram, the backend
/// split, and epochs trained.
fn record_query_metrics(
    core: &SystemCore,
    result: &ServerResult<(QueryResponse, Option<QueryTrace>)>,
    wall: f64,
) {
    let m = core.metrics();
    match result {
        Ok((response, _)) => {
            m.queries_completed.inc();
            m.exec_wall.record(wall);
            match response.backend() {
                Some(BackendKind::Fpga) => m.fpga_queries.inc(),
                Some(BackendKind::Cpu) => m.cpu_queries.inc(),
                None => {}
            }
            if let QueryResponse::Trained(r) = response {
                m.epochs_run.add(r.epochs_run as u64);
            }
            if let QueryResponse::Point(_) = response {
                m.point_queries.inc();
                m.point_latency.record(wall);
            }
        }
        Err(e) => {
            m.queries_failed.inc();
            if e.is_deadline_exceeded() {
                m.deadline_exceeded.inc();
            }
        }
    }
}

/// One worker: pop an admitted query, atomically lease its gang (size 1
/// for serial queries; none at all for EXPLAIN/SHOW STATS and CPU-tier
/// runs), execute, release every member with the simulated runtime,
/// reply. SQL is parsed exactly once, before leasing — the measured
/// parse/admission/lease walls feed the lifecycle trace when the
/// statement asked for one.
fn worker_loop(
    core: &SystemCore,
    accels: &AcceleratorPool,
    queue: &AdmissionQueue,
    sessions: &SessionManager,
) {
    while let Some(job) = queue.pop() {
        let admission_wall = job.submitted_at.elapsed().as_secs_f64();
        core.metrics().admission_wait.record(admission_wall);
        let parse_start = Instant::now();
        let parsed: Option<DanaResult<Statement>> = match &job.request {
            QueryRequest::Sql(sql) => Some(parse_statement(sql)),
            _ => None,
        };
        let parse_wall = parse_start.elapsed().as_secs_f64();
        let needs_lease = match &parsed {
            Some(Ok(stmt)) => statement_needs_accelerator(core, stmt),
            // Parse errors surface typed from the dispatch below.
            Some(Err(_)) => true,
            None => request_needs_accelerator(core, &job.request),
        };
        let (shards, lease, lease_wall) = if needs_lease {
            let shards = match &parsed {
                Some(Ok(stmt)) => statement_gang_size(stmt, accels.size(), core),
                Some(Err(_)) => 1,
                None => gang_size(&job.request, accels.size(), core),
            };
            let lease_start = Instant::now();
            let Some(lease) = accels.lease_gang(shards as usize) else {
                let _ = job.reply.send(Err(ServerError::ShuttingDown));
                continue;
            };
            let lease_wall = lease_start.elapsed().as_secs_f64();
            core.metrics().lease_wait.record(lease_wall);
            (shards, Some(lease), lease_wall)
        } else {
            (1, None, 0.0)
        };
        let gang: Vec<usize> = lease.as_ref().map(|l| l.ids().to_vec()).unwrap_or_default();
        let accelerator = gang.first().copied().unwrap_or(usize::MAX);
        let queue_seconds = job.submitted_at.elapsed().as_secs_f64();
        // The query's cancellation/retry context: the deadline was
        // anchored at submit time (admission wait counts against it);
        // the statement's `WITH (retries = n)` overrides the default
        // retry budget.
        let retry = match &parsed {
            Some(Ok(stmt)) => stmt
                .retries()
                .map(|n| RetryPolicy {
                    max_retries: n,
                    ..RetryPolicy::default()
                })
                .unwrap_or_default(),
            _ => RetryPolicy::default(),
        };
        let cancel = match job.deadline {
            Some(d) => CancelToken::with_deadline(d),
            None => CancelToken::none(),
        };
        let ctx = QueryCtx::new(cancel, retry);
        let started = Instant::now();
        // Panic isolation: a panicking dispatch (a bug, or an injected
        // accelerator panic) is caught here and surfaced as the typed
        // `QueryPanicked` reply — the worker thread survives to serve
        // the next query.
        let dispatched = catch_unwind(AssertUnwindSafe(|| {
            dispatch_job(
                core,
                accels,
                queue,
                sessions,
                &job.request,
                parsed,
                shards,
                &ctx,
                parse_wall,
                admission_wall,
                lease_wall,
            )
        }));
        let result: ServerResult<(QueryResponse, Option<QueryTrace>)> = match dispatched {
            Ok(r) => r.map_err(ServerError::Dana),
            Err(payload) => {
                core.metrics().panics_caught.inc();
                Err(ServerError::QueryPanicked(panic_message(payload.as_ref())))
            }
        };
        // Quarantine wiring: gang members whose shards faulted (even
        // when the run recovered) and serially-leased instances whose
        // retries were exhausted report to the pool's health machine.
        if let Some(lease) = &lease {
            let mut faulted = ctx.faulted_shards();
            if matches!(&result, Err(ServerError::Dana(e)) if e.is_transient_fault()) {
                faulted.push(0);
            }
            for shard in faulted {
                if let Some(&id) = lease.ids().get(shard) {
                    accels.report_fault(id);
                }
            }
        }
        let exec_seconds = started.elapsed().as_secs_f64();
        let sim_seconds = result.as_ref().map(|(r, _)| r.sim_seconds()).unwrap_or(0.0);
        if let Some(lease) = lease {
            lease.release(sim_seconds);
        }
        record_query_metrics(core, &result, exec_seconds);
        sessions.record_done(job.session, result.is_ok(), sim_seconds, exec_seconds);
        let reply = result.map(|(response, trace)| QueryReply {
            response,
            accelerator,
            gang,
            queue_seconds,
            exec_seconds,
            trace,
        });
        // A client that dropped its ticket just doesn't read the reply.
        let _ = job.reply.send(reply);
    }
}

/// The panic payload's message, when it carried one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One query's dispatch, exactly as the worker runs it (factored out so
/// the worker can wrap it in `catch_unwind`).
#[allow(clippy::too_many_arguments)]
fn dispatch_job(
    core: &SystemCore,
    accels: &AcceleratorPool,
    queue: &AdmissionQueue,
    sessions: &SessionManager,
    request: &QueryRequest,
    parsed: Option<DanaResult<Statement>>,
    shards: u16,
    ctx: &QueryCtx,
    parse_wall: f64,
    admission_wall: f64,
    lease_wall: f64,
) -> DanaResult<(QueryResponse, Option<QueryTrace>)> {
    match (request, parsed) {
        (QueryRequest::Sql(_), Some(stmt_result)) => stmt_result.and_then(|stmt| match &stmt {
            // Worker-level statements: SHOW STATS sees the whole
            // server (queue/pool/sessions), EXPLAIN ANALYZE charges
            // the worker's measured front-door walls to its trace.
            Statement::ShowStats(filter) => Ok((
                QueryResponse::Stats(server_stats(
                    core,
                    accels,
                    queue,
                    sessions,
                    filter.as_deref(),
                )),
                None,
            )),
            Statement::ExplainAnalyze(inner) => core
                .analyze_parsed_ctx(inner, shards, parse_wall, admission_wall, lease_wall, ctx)
                .map(|outcome| (outcome_to_response(outcome), None)),
            _ if stmt.wants_trace() => {
                let rec = SpanRecorder::enabled();
                exec::begin_trace(&rec, parse_wall, admission_wall);
                rec.add_wall(exec::stage::LEASE, lease_wall);
                let exec_start = Instant::now();
                core.execute_parsed_ctx(&stmt, shards, &rec, ctx)
                    .map(|outcome| {
                        let total_sim = outcome.timing().map(|t| t.total_seconds).unwrap_or(0.0);
                        let trace =
                            exec::finish_trace(&rec, total_sim, exec_start.elapsed().as_secs_f64());
                        (outcome_to_response(outcome), trace)
                    })
            }
            _ => core
                .execute_parsed_ctx(&stmt, shards, &SpanRecorder::disabled(), ctx)
                .map(|outcome| (outcome_to_response(outcome), None)),
        }),
        (QueryRequest::Sql(_), None) => {
            unreachable!("SQL requests are always parsed above")
        }
        (QueryRequest::RunUdf { udf, table, .. }, _) if shards > 1 => core
            .run_udf_sharded(udf, table, shards)
            .map(|r| (QueryResponse::Trained(r), None)),
        (QueryRequest::RunUdf { udf, table, .. }, _) => core
            .run_udf(udf, table)
            .map(|r| (QueryResponse::Trained(r), None)),
        (QueryRequest::TrainSpec { spec, table, mode }, _) => core
            .train_with_spec(spec, table, *mode)
            .map(|r| (QueryResponse::Trained(r), None)),
        (
            QueryRequest::Predict {
                udf, table, into, ..
            },
            _,
        ) if shards > 1 => core
            .predict_sharded(udf, table, into, shards)
            .map(|p| (QueryResponse::Predicted(p), None)),
        (
            QueryRequest::Predict {
                udf, table, into, ..
            },
            _,
        ) => core
            .predict(udf, table, into)
            .map(|p| (QueryResponse::Predicted(p), None)),
        (
            QueryRequest::Evaluate {
                udf, table, metric, ..
            },
            _,
        ) if shards > 1 => core
            .evaluate_sharded(udf, table, *metric, shards)
            .map(|e| (QueryResponse::Evaluated(e), None)),
        (
            QueryRequest::Evaluate {
                udf, table, metric, ..
            },
            _,
        ) => core
            .evaluate(udf, table, *metric)
            .map(|e| (QueryResponse::Evaluated(e), None)),
        (QueryRequest::PredictPoint { udf, rows }, _) => core
            .predict_point_ctx(udf, rows, ctx)
            .map(|p| (QueryResponse::Point(p), None)),
    }
}
