//! The serving front door: [`DanaServer`].
//!
//! Lifecycle of one query (the Fig. 2 flow, lifted to a serving tier):
//!
//! ```text
//!  client ──open_session──► SessionManager
//!    │ submit(SQL / UDF / spec)
//!    ▼
//!  AdmissionQueue  (bounded; FIFO or SJF by DanaTiming cost estimate)
//!    │ pop
//!    ▼
//!  worker thread ──lease──► AcceleratorPool (N FpgaSpec instances)
//!    │ run on SystemCore (shared catalog + sharded buffer pool)
//!    ▼
//!  QueryReply ──crossbeam channel──► Ticket::wait
//! ```
//!
//! DDL (create/drop/prewarm/deploy) executes synchronously on the caller's
//! thread — it needs no accelerator, and the catalog's own locking already
//! serializes it correctly against in-flight queries. Queries (anything
//! that trains) are admitted, scheduled, and executed on a leased
//! accelerator by the worker pool.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{self, Receiver};

use dana::{
    parse_statement, BackendKind, DanaReport, DanaResult, DeployInfo, DropSummary, EvalReport,
    ExecutionMode, MetricKind, PredictReport, Statement, StrategyComparison,
};
use dana_storage::HeapFile;

use crate::accel::{AcceleratorPool, PoolUtilization};
use crate::admission::{AdmissionConfig, AdmissionQueue, QueueStats};
use crate::core::{SystemCore, SystemCoreConfig};
use crate::error::{ServerError, ServerResult};
use crate::session::{SessionId, SessionManager, SessionStats};

/// A query a client can submit for scheduled execution.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryRequest {
    /// Any front-door SQL statement: `SELECT * FROM dana.<udf>(…)`,
    /// `PREDICT … INTO …`, or `EVALUATE …`.
    Sql(String),
    /// Direct invocation of a deployed UDF (full-Strider mode).
    /// `shards > 1` runs it gang-parallel on that many pool instances
    /// (acquired atomically; clamped to the pool size).
    RunUdf {
        udf: String,
        table: String,
        shards: Option<u16>,
    },
    /// Ad-hoc compile-and-train in a specific execution mode (the
    /// ablation path; nothing is stored in the catalog).
    TrainSpec {
        spec: dana_dsl::AlgoSpec,
        table: String,
        mode: ExecutionMode,
    },
    /// Score `table` with `udf`'s latest trained model and materialize
    /// the predictions as catalog table `into`.
    Predict {
        udf: String,
        table: String,
        into: String,
        shards: Option<u16>,
    },
    /// Score `table` and compute an in-database quality metric.
    Evaluate {
        udf: String,
        table: String,
        metric: Option<MetricKind>,
        shards: Option<u16>,
    },
}

/// What a finished query produced: training, scoring, and evaluation
/// queries return different artifacts.
#[derive(Debug, Clone)]
pub enum QueryResponse {
    /// EXECUTE/train: the trained model and its timing.
    Trained(DanaReport),
    /// PREDICT: the materialized prediction table's report.
    Predicted(PredictReport),
    /// EVALUATE: the computed metric.
    Evaluated(EvalReport),
    /// EXPLAIN: the advisor's per-backend comparison; nothing executed.
    Explained(StrategyComparison),
}

impl QueryResponse {
    /// End-to-end simulated seconds, whichever query type ran. Zero for
    /// EXPLAIN (nothing executed) and for CPU-tier runs (nothing
    /// simulated — their stopwatch lives in `timing.wall_seconds`).
    pub fn sim_seconds(&self) -> f64 {
        match self {
            QueryResponse::Trained(r) => r.timing.total_seconds,
            QueryResponse::Predicted(p) => p.timing.total_seconds,
            QueryResponse::Evaluated(e) => e.timing.total_seconds,
            QueryResponse::Explained(_) => 0.0,
        }
    }
}

/// A finished query, as delivered to the submitting client.
#[derive(Debug, Clone)]
pub struct QueryReply {
    pub response: QueryResponse,
    /// Which accelerator-pool instance ran the query (a gang's first
    /// member for sharded queries). `usize::MAX` for lease-free work —
    /// EXPLAIN and CPU-tier runs never touch the pool.
    pub accelerator: usize,
    /// Every pool instance the query's gang held, ascending (one entry
    /// for serial queries; empty for lease-free EXPLAIN/CPU-tier work).
    pub gang: Vec<usize>,
    /// Wall-clock seconds spent waiting in the admission queue.
    pub queue_seconds: f64,
    /// Wall-clock seconds spent executing on the worker.
    pub exec_seconds: f64,
}

impl QueryReply {
    /// The training report (panics for scoring replies — the training
    /// clients' convenience accessor).
    pub fn report(&self) -> &DanaReport {
        match &self.response {
            QueryResponse::Trained(r) => r,
            other => panic!("expected a training reply, got {other:?}"),
        }
    }

    /// The prediction report (panics for other reply kinds).
    pub fn predict_report(&self) -> &PredictReport {
        match &self.response {
            QueryResponse::Predicted(p) => p,
            other => panic!("expected a predict reply, got {other:?}"),
        }
    }

    /// The evaluation report (panics for other reply kinds).
    pub fn eval_report(&self) -> &EvalReport {
        match &self.response {
            QueryResponse::Evaluated(e) => e,
            other => panic!("expected an evaluate reply, got {other:?}"),
        }
    }

    /// The EXPLAIN comparison (panics for other reply kinds).
    pub fn comparison(&self) -> &StrategyComparison {
        match &self.response {
            QueryResponse::Explained(c) => c,
            other => panic!("expected an explain reply, got {other:?}"),
        }
    }
}

pub(crate) type ReplyResult = ServerResult<QueryReply>;

/// Handle to one submitted query; redeem with [`DanaServer::wait`].
pub struct Ticket {
    pub seq: u64,
    pub session: SessionId,
    rx: Receiver<ReplyResult>,
}

/// Server construction knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Accelerator instances in the pool.
    pub accelerators: usize,
    /// Worker threads executing admitted queries. Defaults to the
    /// accelerator count — more workers than instances just wait on
    /// leases.
    pub workers: usize,
    pub admission: AdmissionConfig,
    pub core: SystemCoreConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig::with_accelerators(4)
    }
}

impl ServerConfig {
    /// A config with `n` accelerators and `n` workers.
    pub fn with_accelerators(n: usize) -> ServerConfig {
        let n = n.max(1);
        ServerConfig {
            accelerators: n,
            workers: n,
            admission: AdmissionConfig::default(),
            core: SystemCoreConfig::default(),
        }
    }
}

/// The concurrent query-serving subsystem.
pub struct DanaServer {
    core: Arc<SystemCore>,
    accels: Arc<AcceleratorPool>,
    queue: Arc<AdmissionQueue>,
    sessions: Arc<SessionManager>,
    workers: Vec<JoinHandle<()>>,
}

impl DanaServer {
    /// Boots the server: builds the shared core and starts the worker
    /// pool.
    pub fn start(config: ServerConfig) -> DanaServer {
        let core = Arc::new(SystemCore::new(config.core));
        let accels = Arc::new(AcceleratorPool::new(config.accelerators));
        let queue = Arc::new(AdmissionQueue::new(config.admission));
        let sessions = Arc::new(SessionManager::new());
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let core = Arc::clone(&core);
                let accels = Arc::clone(&accels);
                let queue = Arc::clone(&queue);
                let sessions = Arc::clone(&sessions);
                std::thread::Builder::new()
                    .name(format!("dana-worker-{i}"))
                    .spawn(move || worker_loop(&core, &accels, &queue, &sessions))
                    .expect("spawn worker thread")
            })
            .collect();
        DanaServer {
            core,
            accels,
            queue,
            sessions,
            workers,
        }
    }

    /// The shared system core (storage statistics, leak detectors, direct
    /// DDL).
    pub fn core(&self) -> &SystemCore {
        &self.core
    }

    // ---- sessions -------------------------------------------------------

    pub fn open_session(&self, name: &str) -> SessionId {
        self.sessions.open(name)
    }

    pub fn close_session(&self, id: SessionId) -> ServerResult<SessionStats> {
        self.sessions.close(id)
    }

    pub fn session_stats(&self, id: SessionId) -> Option<SessionStats> {
        self.sessions.stats(id)
    }

    pub fn all_session_stats(&self) -> Vec<(SessionId, SessionStats)> {
        self.sessions.all_stats()
    }

    // ---- DDL (synchronous) ----------------------------------------------

    pub fn create_table(&self, name: &str, heap: HeapFile) -> DanaResult<dana_storage::HeapId> {
        self.core.create_table(name, heap)
    }

    pub fn drop_table(&self, name: &str) -> DanaResult<DropSummary> {
        self.core.drop_table(name)
    }

    pub fn prewarm(&self, table: &str) -> DanaResult<usize> {
        self.core.prewarm(table)
    }

    pub fn deploy(&self, spec: &dana_dsl::AlgoSpec, table: &str) -> DanaResult<DeployInfo> {
        self.core.deploy(spec, table)
    }

    // ---- queries --------------------------------------------------------

    /// Admits a query for scheduled execution. Non-blocking: refusal
    /// (overload, unknown session, shutdown) is immediate and typed.
    pub fn submit(&self, session: SessionId, request: QueryRequest) -> ServerResult<Ticket> {
        self.sessions.record_submit(session)?;
        let cost_hint = self.cost_hint(&request);
        let (tx, rx) = channel::bounded(1);
        let seq = self.queue.submit(session, request, cost_hint, tx)?;
        Ok(Ticket { seq, session, rx })
    }

    /// Blocks until the ticket's query finishes.
    pub fn wait(&self, ticket: Ticket) -> ServerResult<QueryReply> {
        ticket.rx.recv().unwrap_or(Err(ServerError::WorkerLost))
    }

    /// Submit + wait in one call (the blocking client API).
    pub fn call(&self, session: SessionId, request: QueryRequest) -> ServerResult<QueryReply> {
        let ticket = self.submit(session, request)?;
        self.wait(ticket)
    }

    /// SJF's ordering key. Training queries are priced by the deploy-time
    /// engine estimate × epochs; scoring queries by tuple count ×
    /// program length (a single pass — under SJF they overtake long
    /// training jobs). **Sharded queries divide the estimate by their
    /// gang size** — a 4-shard gang finishes its scan ~4× sooner, and
    /// pricing it serially would let SJF wrongly starve it behind
    /// genuinely shorter singles. Unknown or ad-hoc work gets a neutral
    /// hint (0), which SJF treats as "probably interactive": it runs
    /// early, keeping the policy conservative rather than starving
    /// unknowns.
    pub fn cost_hint(&self, request: &QueryRequest) -> f64 {
        let serial = match request {
            QueryRequest::Sql(sql) => match parse_statement(sql) {
                Ok(Statement::Train(call)) => self.core.estimated_seconds(&call.udf).unwrap_or(0.0),
                Ok(Statement::Predict(p)) => self
                    .core
                    .estimated_scoring_seconds(&p.udf, &p.table)
                    .unwrap_or(0.0),
                Ok(Statement::Evaluate(e)) => self
                    .core
                    .estimated_scoring_seconds(&e.udf, &e.table)
                    .unwrap_or(0.0),
                // Metadata-only: runs instantly, schedule it first.
                Ok(Statement::Explain(_)) => 0.0,
                Err(_) => 0.0,
            },
            QueryRequest::RunUdf { udf, .. } => self.core.estimated_seconds(udf).unwrap_or(0.0),
            QueryRequest::TrainSpec { .. } => 0.0,
            QueryRequest::Predict { udf, table, .. }
            | QueryRequest::Evaluate { udf, table, .. } => self
                .core
                .estimated_scoring_seconds(udf, table)
                .unwrap_or(0.0),
        };
        serial / gang_size(request, self.accels.size(), &self.core) as f64
    }

    // ---- observability --------------------------------------------------

    pub fn pool_utilization(&self) -> PoolUtilization {
        self.accels.utilization()
    }

    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Drains admitted work, stops the workers, and returns the final
    /// utilization report.
    pub fn shutdown(mut self) -> PoolUtilization {
        self.stop_workers();
        self.accels.utilization()
    }

    fn stop_workers(&mut self) {
        self.queue.close();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        self.accels.close();
    }
}

impl Drop for DanaServer {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// The gang size a request calls for, clamped to the pool size **and**
/// the scanned table's page count (the shard planner never makes more
/// shards than pages) — the number of instances the worker leases
/// atomically and the shard count the query actually runs with. They
/// must agree, or the simulated schedule would charge hardware the
/// query never used.
fn gang_size(request: &QueryRequest, pool: usize, core: &SystemCore) -> u16 {
    let (requested, table) = match request {
        QueryRequest::Sql(sql) => match parse_statement(sql) {
            Ok(Statement::Train(c)) => (c.shards, Some(c.table)),
            Ok(Statement::Predict(p)) => (p.shards, Some(p.table)),
            Ok(Statement::Evaluate(e)) => (e.shards, Some(e.table)),
            Ok(Statement::Explain(_)) | Err(_) => (None, None),
        },
        QueryRequest::RunUdf { shards, table, .. }
        | QueryRequest::Predict { shards, table, .. }
        | QueryRequest::Evaluate { shards, table, .. } => (*shards, Some(table.clone())),
        QueryRequest::TrainSpec { .. } => (None, None),
    };
    let mut k = requested.unwrap_or(1).clamp(1, pool.max(1) as u16);
    if let Some(pages) = table.and_then(|t| core.table_pages(&t)) {
        k = k.min(dana_parallel::ShardPlan::effective_shards(pages, k as usize) as u16);
    }
    k
}

/// Whether a request needs the simulated-FPGA tier (and therefore an
/// accelerator lease). `EXPLAIN` and statements the advisor (or a
/// `WITH (backend = cpu)` override) routes to the native CPU tier run
/// lease-free — the pool is accelerator hardware, and a CPU run charging
/// it would corrupt the utilization accounting. Resolution errors say
/// FPGA here: the execution dispatch re-resolves and surfaces them typed.
fn needs_accelerator(core: &SystemCore, request: &QueryRequest) -> bool {
    match request {
        QueryRequest::Sql(sql) => match parse_statement(sql) {
            Ok(Statement::Explain(_)) => false,
            Ok(stmt) => !matches!(core.resolve_backend(&stmt), Ok(BackendKind::Cpu)),
            Err(_) => true,
        },
        _ => true,
    }
}

/// One worker: pop an admitted query, atomically lease its gang (size 1
/// for serial queries; none at all for EXPLAIN and CPU-tier runs),
/// execute, release every member with the simulated runtime, reply.
fn worker_loop(
    core: &SystemCore,
    accels: &AcceleratorPool,
    queue: &AdmissionQueue,
    sessions: &SessionManager,
) {
    while let Some(job) = queue.pop() {
        let (shards, lease) = if needs_accelerator(core, &job.request) {
            let shards = gang_size(&job.request, accels.size(), core);
            let Some(lease) = accels.lease_gang(shards as usize) else {
                let _ = job.reply.send(Err(ServerError::ShuttingDown));
                continue;
            };
            (shards, Some(lease))
        } else {
            (1, None)
        };
        let gang: Vec<usize> = lease.as_ref().map(|l| l.ids().to_vec()).unwrap_or_default();
        let accelerator = gang.first().copied().unwrap_or(usize::MAX);
        let queue_seconds = job.submitted_at.elapsed().as_secs_f64();
        let started = Instant::now();
        let result: DanaResult<QueryResponse> = match &job.request {
            QueryRequest::Sql(sql) => parse_statement(sql).and_then(|stmt| match stmt {
                Statement::Explain(inner) => {
                    core.explain_statement(&inner).map(QueryResponse::Explained)
                }
                Statement::Train(call) if shards > 1 => core
                    .run_udf_sharded(&call.udf, &call.table, shards)
                    .map(QueryResponse::Trained),
                Statement::Train(call) => {
                    match core.resolve_backend(&Statement::Train(call.clone()))? {
                        BackendKind::Cpu => core
                            .run_udf_cpu(&call.udf, &call.table)
                            .map(QueryResponse::Trained),
                        BackendKind::Fpga => core
                            .run_udf(&call.udf, &call.table)
                            .map(QueryResponse::Trained),
                    }
                }
                Statement::Predict(p) if shards > 1 => core
                    .predict_sharded(&p.udf, &p.table, &p.into, shards)
                    .map(QueryResponse::Predicted),
                Statement::Predict(p) => {
                    match core.resolve_backend(&Statement::Predict(p.clone()))? {
                        BackendKind::Cpu => core
                            .predict_cpu(&p.udf, &p.table, &p.into)
                            .map(QueryResponse::Predicted),
                        BackendKind::Fpga => core
                            .predict(&p.udf, &p.table, &p.into)
                            .map(QueryResponse::Predicted),
                    }
                }
                Statement::Evaluate(e) if shards > 1 => core
                    .evaluate_sharded(&e.udf, &e.table, e.metric, shards)
                    .map(QueryResponse::Evaluated),
                Statement::Evaluate(e) => {
                    match core.resolve_backend(&Statement::Evaluate(e.clone()))? {
                        BackendKind::Cpu => core
                            .evaluate_cpu(&e.udf, &e.table, e.metric)
                            .map(QueryResponse::Evaluated),
                        BackendKind::Fpga => core
                            .evaluate(&e.udf, &e.table, e.metric)
                            .map(QueryResponse::Evaluated),
                    }
                }
            }),
            QueryRequest::RunUdf { udf, table, .. } if shards > 1 => core
                .run_udf_sharded(udf, table, shards)
                .map(QueryResponse::Trained),
            QueryRequest::RunUdf { udf, table, .. } => {
                core.run_udf(udf, table).map(QueryResponse::Trained)
            }
            QueryRequest::TrainSpec { spec, table, mode } => core
                .train_with_spec(spec, table, *mode)
                .map(QueryResponse::Trained),
            QueryRequest::Predict {
                udf, table, into, ..
            } if shards > 1 => core
                .predict_sharded(udf, table, into, shards)
                .map(QueryResponse::Predicted),
            QueryRequest::Predict {
                udf, table, into, ..
            } => core.predict(udf, table, into).map(QueryResponse::Predicted),
            QueryRequest::Evaluate {
                udf, table, metric, ..
            } if shards > 1 => core
                .evaluate_sharded(udf, table, *metric, shards)
                .map(QueryResponse::Evaluated),
            QueryRequest::Evaluate {
                udf, table, metric, ..
            } => core
                .evaluate(udf, table, *metric)
                .map(QueryResponse::Evaluated),
        };
        let exec_seconds = started.elapsed().as_secs_f64();
        let sim_seconds = result.as_ref().map(|r| r.sim_seconds()).unwrap_or(0.0);
        if let Some(lease) = lease {
            lease.release(sim_seconds);
        }
        sessions.record_done(job.session, result.is_ok(), sim_seconds, exec_seconds);
        let reply = result
            .map(|response| QueryReply {
                response,
                accelerator,
                gang,
                queue_seconds,
                exec_seconds,
            })
            .map_err(ServerError::Dana);
        // A client that dropped its ticket just doesn't read the reply.
        let _ = job.reply.send(reply);
    }
}
