//! # dana-server — the concurrent query-serving subsystem
//!
//! DAnA's premise is an accelerator *inside a live RDBMS* (§1): analytics
//! queries arrive alongside regular traffic and contend for a fixed set of
//! FPGA resources. The single-user `dana::Dana` facade cannot express
//! that — everything funnels through one `&mut`. This crate is the serving
//! tier on top of the shared core:
//!
//! * [`SystemCore`] — the thread-safe split of `Dana`: `RwLock` catalog,
//!   sharded [`dana_storage::SharedBufferPool`], per-query execution
//!   contexts that share every numerical path with the serial facade;
//! * [`SessionManager`] — per-client sessions with query accounting;
//! * admission control ([`AdmissionConfig`]) — a bounded queue with FIFO
//!   and shortest-job-first policies, SJF ordered by the deploy-time
//!   `DanaTiming` cost estimate;
//! * [`AcceleratorPool`] — N independent accelerator instances behind a
//!   lease scheduler that doubles as the simulated-time list scheduler
//!   (greedy least-loaded placement, makespan and utilization reports);
//! * [`DanaServer`] — the front door: worker threads (vendored crossbeam
//!   channels carry replies) execute admitted queries in parallel on
//!   leased instances.
//!
//! Concurrent execution is held **bit-identical** to the single-threaded
//! path by the equivalence suite: same compiler, same extraction, same
//! engine interpreter, same report assembly — only the locking changed.

pub mod accel;
pub mod admission;
pub mod core;
pub mod error;
pub mod server;
pub mod session;

pub use accel::{AcceleratorPool, GangLease, Health, Lease, PoolHealth, PoolUtilization};
pub use admission::{AdmissionConfig, Priority, QueueStats, SchedPolicy};
pub use core::{EngineCacheStats, QueryCtx, SystemCore, SystemCoreConfig};
pub use error::{ServerError, ServerResult};
pub use server::{DanaServer, QueryReply, QueryRequest, QueryResponse, ServerConfig, Ticket};
pub use session::{SessionId, SessionManager, SessionStats};
