//! Session management: who is asking, and how their queries are doing.
//!
//! Every client opens a session before submitting queries. The session
//! tracks per-client accounting — queries submitted / completed / failed,
//! simulated accelerator seconds consumed, and wall-clock execution time —
//! which is what an operator reads to see which tenant is saturating the
//! accelerator pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

use crate::error::{ServerError, ServerResult};

/// Opaque session handle.
pub type SessionId = u64;

/// Per-session accounting snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SessionStats {
    /// Client-supplied label (shown in utilization reports).
    pub name: String,
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    /// Simulated accelerator seconds consumed by completed queries.
    pub sim_seconds: f64,
    /// Host wall-clock seconds spent executing (excludes queue wait).
    pub wall_seconds: f64,
    /// Largest single-query wall execution time.
    pub max_wall_seconds: f64,
}

/// The session table.
#[derive(Default)]
pub struct SessionManager {
    sessions: Mutex<HashMap<SessionId, SessionStats>>,
    next: AtomicU64,
}

impl SessionManager {
    pub fn new() -> SessionManager {
        SessionManager::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<SessionId, SessionStats>> {
        match self.sessions.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Opens a session and returns its id.
    pub fn open(&self, name: &str) -> SessionId {
        let id = self.next.fetch_add(1, Ordering::Relaxed) + 1;
        self.lock().insert(
            id,
            SessionStats {
                name: name.to_string(),
                ..SessionStats::default()
            },
        );
        id
    }

    /// Closes a session, returning its final stats.
    pub fn close(&self, id: SessionId) -> ServerResult<SessionStats> {
        self.lock()
            .remove(&id)
            .ok_or(ServerError::UnknownSession(id))
    }

    /// Records a submission attempt; errors if the session is unknown.
    pub fn record_submit(&self, id: SessionId) -> ServerResult<()> {
        let mut map = self.lock();
        let s = map.get_mut(&id).ok_or(ServerError::UnknownSession(id))?;
        s.submitted += 1;
        Ok(())
    }

    /// Records a query outcome. Unknown sessions are ignored (the client
    /// may have closed the session while its query was still queued).
    pub fn record_done(&self, id: SessionId, ok: bool, sim_seconds: f64, wall_seconds: f64) {
        let mut map = self.lock();
        if let Some(s) = map.get_mut(&id) {
            if ok {
                s.completed += 1;
                s.sim_seconds += sim_seconds;
            } else {
                s.failed += 1;
            }
            s.wall_seconds += wall_seconds;
            s.max_wall_seconds = s.max_wall_seconds.max(wall_seconds);
        }
    }

    pub fn stats(&self, id: SessionId) -> Option<SessionStats> {
        self.lock().get(&id).cloned()
    }

    /// All open sessions, sorted by id.
    pub fn all_stats(&self) -> Vec<(SessionId, SessionStats)> {
        let mut v: Vec<_> = self.lock().iter().map(|(k, v)| (*k, v.clone())).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }

    pub fn open_sessions(&self) -> usize {
        self.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifecycle_and_accounting() {
        let mgr = SessionManager::new();
        let a = mgr.open("alice");
        let b = mgr.open("bob");
        assert_ne!(a, b);
        assert_eq!(mgr.open_sessions(), 2);

        mgr.record_submit(a).unwrap();
        mgr.record_done(a, true, 1.5, 0.1);
        mgr.record_submit(a).unwrap();
        mgr.record_done(a, false, 0.0, 0.3);

        let s = mgr.stats(a).unwrap();
        assert_eq!(s.name, "alice");
        assert_eq!(s.submitted, 2);
        assert_eq!(s.completed, 1);
        assert_eq!(s.failed, 1);
        assert!((s.sim_seconds - 1.5).abs() < 1e-12);
        assert!((s.wall_seconds - 0.4).abs() < 1e-12);
        assert!((s.max_wall_seconds - 0.3).abs() < 1e-12);

        let all = mgr.all_stats();
        assert_eq!(all.len(), 2);
        assert!(all[0].0 < all[1].0);

        let closed = mgr.close(a).unwrap();
        assert_eq!(closed.completed, 1);
        assert!(matches!(
            mgr.record_submit(a),
            Err(ServerError::UnknownSession(_))
        ));
        assert!(matches!(mgr.close(a), Err(ServerError::UnknownSession(_))));
        // A straggler completion for a closed session is dropped silently.
        mgr.record_done(a, true, 1.0, 1.0);
        assert_eq!(mgr.open_sessions(), 1);
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let mgr = std::sync::Arc::new(SessionManager::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = std::sync::Arc::clone(&mgr);
            handles.push(std::thread::spawn(move || {
                (0..50)
                    .map(|i| m.open(&format!("s{i}")))
                    .collect::<Vec<_>>()
            }));
        }
        let mut ids: Vec<SessionId> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 200);
    }
}
