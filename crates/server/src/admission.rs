//! Admission control and scheduling policy.
//!
//! Queries are not handed straight to workers: they pass an admission
//! controller that (a) bounds the queue so an overload sheds load with a
//! typed [`crate::ServerError::Overloaded`] instead of unbounded memory
//! growth, and (b) orders dequeues by policy. FIFO is the fairness
//! baseline; shortest-job-first uses the deploy-time cost estimate (the
//! compiler's [`dana_compiler::PerfEstimate`] priced through the
//! `DanaTiming` cost model by `dana::exec::estimate_seconds`) to let
//! cheap interactive queries overtake long training jobs.

use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crossbeam::channel::Sender;
use dana::DanaError;
use dana_engine::EngineError;

use crate::error::{ServerError, ServerResult};
use crate::server::{QueryRequest, ReplyResult};
use crate::session::SessionId;

/// Dequeue ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedPolicy {
    /// First come, first served.
    #[default]
    Fifo,
    /// Shortest (estimated) job first; FIFO among ties.
    Sjf,
}

/// Admission priority class. The dequeue always prefers a waiting
/// `Interactive` job over any `Batch` job, whatever the configured
/// policy; within a class the policy (FIFO/SJF) orders as before. Point
/// predictions are `Interactive` — microseconds of work that must never
/// be starved behind a gang training job occupying the whole pool.
/// (`Interactive` declares first so the derived `Ord` sorts it ahead.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Latency-bound work (point predictions): dequeued before any
    /// waiting `Batch` job.
    Interactive,
    /// Training and scan-bound analytical queries (the default).
    #[default]
    Batch,
}

/// Admission controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionConfig {
    /// Maximum queries waiting for a worker; submissions beyond this are
    /// refused with [`ServerError::Overloaded`].
    pub max_queued: usize,
    pub policy: SchedPolicy,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            max_queued: 1024,
            policy: SchedPolicy::Fifo,
        }
    }
}

/// One admitted query waiting for a worker.
pub(crate) struct Job {
    pub seq: u64,
    pub session: SessionId,
    pub request: QueryRequest,
    /// Admission class: `Interactive` jobs dequeue before any `Batch`
    /// job regardless of policy.
    pub priority: Priority,
    /// Estimated simulated runtime (SJF's ordering key; FIFO ignores it).
    pub cost_hint: f64,
    pub reply: Sender<ReplyResult>,
    pub submitted_at: Instant,
    /// The query's deadline (statement `timeout_ms` or the server
    /// default), anchored at submission. Expired jobs are shed at
    /// dequeue time — they never reach a worker or take a lease.
    pub deadline: Option<Instant>,
}

/// Queue counters for observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    pub admitted: u64,
    pub rejected: u64,
    /// Queries shed at dequeue time because their deadline had already
    /// passed while they waited (replied with the typed deadline error,
    /// never leased).
    pub shed: u64,
    /// Currently waiting (not yet picked up by a worker).
    pub depth: usize,
}

struct QState {
    jobs: Vec<Job>,
    next_seq: u64,
    admitted: u64,
    rejected: u64,
    shed: u64,
    closed: bool,
}

/// Whether a job's deadline has already passed.
fn expired(job: &Job) -> bool {
    matches!(job.deadline, Some(d) if Instant::now() >= d)
}

/// The admission queue proper.
pub(crate) struct AdmissionQueue {
    state: Mutex<QState>,
    readable: Condvar,
    config: AdmissionConfig,
}

impl AdmissionQueue {
    pub fn new(config: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            state: Mutex::new(QState {
                jobs: Vec::new(),
                next_seq: 0,
                admitted: 0,
                rejected: 0,
                shed: 0,
                closed: false,
            }),
            readable: Condvar::new(),
            config,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Admits a query or refuses it (queue full / shutting down).
    pub fn submit(
        &self,
        session: SessionId,
        request: QueryRequest,
        priority: Priority,
        cost_hint: f64,
        deadline: Option<Instant>,
        reply: Sender<ReplyResult>,
    ) -> ServerResult<u64> {
        let mut st = self.lock();
        if st.closed {
            return Err(ServerError::ShuttingDown);
        }
        if st.jobs.len() >= self.config.max_queued {
            st.rejected += 1;
            return Err(ServerError::Overloaded {
                queued: st.jobs.len(),
                limit: self.config.max_queued,
            });
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        st.admitted += 1;
        st.jobs.push(Job {
            seq,
            session,
            request,
            priority,
            cost_hint,
            reply,
            submitted_at: Instant::now(),
            deadline,
        });
        drop(st);
        self.readable.notify_one();
        Ok(seq)
    }

    /// Blocks for the next job per the configured policy. Returns `None`
    /// once the queue is closed *and* drained — workers finish admitted
    /// work before exiting.
    pub fn pop(&self) -> Option<Job> {
        let mut st = self.lock();
        loop {
            // Shed queries that outlived their deadline while queued:
            // reply with the typed deadline error now, so they never
            // occupy a worker or an accelerator lease.
            if st.jobs.iter().any(expired) {
                let now = Instant::now();
                let mut kept = Vec::with_capacity(st.jobs.len());
                for job in std::mem::take(&mut st.jobs) {
                    if matches!(job.deadline, Some(d) if now >= d) {
                        st.shed += 1;
                        let _ = job.reply.send(Err(ServerError::Dana(DanaError::Engine(
                            EngineError::DeadlineExceeded,
                        ))));
                    } else {
                        kept.push(job);
                    }
                }
                st.jobs = kept;
            }
            if !st.jobs.is_empty() {
                // Priority class first — an Interactive point query
                // beats any Batch job — then the configured policy
                // within the class.
                let idx = match self.config.policy {
                    SchedPolicy::Fifo => st
                        .jobs
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| (j.priority, j.seq))
                        .map(|(i, _)| i)
                        .expect("non-empty"),
                    SchedPolicy::Sjf => st
                        .jobs
                        .iter()
                        .enumerate()
                        .min_by(|(_, a), (_, b)| {
                            a.priority.cmp(&b.priority).then(
                                a.cost_hint
                                    .partial_cmp(&b.cost_hint)
                                    .unwrap_or(std::cmp::Ordering::Equal)
                                    .then(a.seq.cmp(&b.seq)),
                            )
                        })
                        .map(|(i, _)| i)
                        .expect("non-empty"),
                };
                return Some(st.jobs.swap_remove(idx));
            }
            if st.closed {
                return None;
            }
            st = match self.readable.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Stops admitting; wakes every blocked worker so the queue drains.
    pub fn close(&self) {
        self.lock().closed = true;
        self.readable.notify_all();
    }

    pub fn stats(&self) -> QueueStats {
        let st = self.lock();
        QueueStats {
            admitted: st.admitted,
            rejected: st.rejected,
            shed: st.shed,
            depth: st.jobs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel;

    fn dummy_request() -> QueryRequest {
        QueryRequest::RunUdf {
            udf: "linearR".into(),
            table: "t".into(),
            shards: None,
        }
    }

    fn queue(max: usize, policy: SchedPolicy) -> AdmissionQueue {
        AdmissionQueue::new(AdmissionConfig {
            max_queued: max,
            policy,
        })
    }

    #[test]
    fn fifo_pops_in_submission_order() {
        let q = queue(16, SchedPolicy::Fifo);
        let (tx, _rx) = channel::unbounded();
        for cost in [3.0, 1.0, 2.0] {
            q.submit(1, dummy_request(), Priority::Batch, cost, None, tx.clone())
                .unwrap();
        }
        let order: Vec<f64> = (0..3).map(|_| q.pop().unwrap().cost_hint).collect();
        assert_eq!(order, vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn sjf_pops_cheapest_first_fifo_on_ties() {
        let q = queue(16, SchedPolicy::Sjf);
        let (tx, _rx) = channel::unbounded();
        let seqs: Vec<u64> = [3.0, 1.0, 2.0, 1.0]
            .iter()
            .map(|c| {
                q.submit(1, dummy_request(), Priority::Batch, *c, None, tx.clone())
                    .unwrap()
            })
            .collect();
        let popped: Vec<u64> = (0..4).map(|_| q.pop().unwrap().seq).collect();
        // Costs 1.0 (seq 1), 1.0 (seq 3), 2.0 (seq 2), 3.0 (seq 0).
        assert_eq!(popped, vec![seqs[1], seqs[3], seqs[2], seqs[0]]);
    }

    #[test]
    fn overload_is_refused_with_counts() {
        let q = queue(2, SchedPolicy::Fifo);
        let (tx, _rx) = channel::unbounded();
        q.submit(1, dummy_request(), Priority::Batch, 1.0, None, tx.clone())
            .unwrap();
        q.submit(1, dummy_request(), Priority::Batch, 1.0, None, tx.clone())
            .unwrap();
        match q.submit(1, dummy_request(), Priority::Batch, 1.0, None, tx.clone()) {
            Err(ServerError::Overloaded {
                queued: 2,
                limit: 2,
            }) => {}
            other => panic!("expected Overloaded, got {:?}", other.map(|_| ())),
        }
        let s = q.stats();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.rejected, 1);
        assert_eq!(s.depth, 2);
    }

    #[test]
    fn expired_jobs_are_shed_at_dequeue_never_leased() {
        let q = queue(16, SchedPolicy::Fifo);
        let (expired_tx, expired_rx) = channel::unbounded();
        let (live_tx, _live_rx) = channel::unbounded();
        // One job already past its deadline, one without a deadline.
        q.submit(
            1,
            dummy_request(),
            Priority::Batch,
            1.0,
            Some(Instant::now() - std::time::Duration::from_millis(5)),
            expired_tx,
        )
        .unwrap();
        q.submit(1, dummy_request(), Priority::Batch, 1.0, None, live_tx)
            .unwrap();
        // The pop skips the expired job and hands out the live one.
        let job = q.pop().unwrap();
        assert!(job.deadline.is_none());
        let shed_reply = expired_rx.try_recv().expect("shed job must be replied to");
        assert!(
            matches!(&shed_reply, Err(e) if e.is_deadline_exceeded()),
            "{shed_reply:?}"
        );
        let s = q.stats();
        assert_eq!(s.shed, 1);
        assert_eq!(s.depth, 0);
        assert_eq!(s.admitted, 2, "shed jobs were admitted, then expired");
    }

    #[test]
    fn interactive_overtakes_batch_under_fifo() {
        let q = queue(16, SchedPolicy::Fifo);
        let (tx, _rx) = channel::unbounded();
        // Two batch jobs first, then an interactive point query.
        let b0 = q
            .submit(1, dummy_request(), Priority::Batch, 5.0, None, tx.clone())
            .unwrap();
        let b1 = q
            .submit(1, dummy_request(), Priority::Batch, 5.0, None, tx.clone())
            .unwrap();
        let point = q
            .submit(1, dummy_request(), Priority::Interactive, 0.1, None, tx)
            .unwrap();
        let popped: Vec<u64> = (0..3).map(|_| q.pop().unwrap().seq).collect();
        assert_eq!(
            popped,
            vec![point, b0, b1],
            "the interactive job dequeues first; batch stays FIFO"
        );
    }

    #[test]
    fn interactive_overtakes_batch_under_sjf_even_when_pricier() {
        let q = queue(16, SchedPolicy::Sjf);
        let (tx, _rx) = channel::unbounded();
        // The batch job has a *cheaper* cost hint — class still wins.
        let batch = q
            .submit(1, dummy_request(), Priority::Batch, 0.001, None, tx.clone())
            .unwrap();
        let point = q
            .submit(1, dummy_request(), Priority::Interactive, 1.0, None, tx)
            .unwrap();
        let popped: Vec<u64> = (0..2).map(|_| q.pop().unwrap().seq).collect();
        assert_eq!(popped, vec![point, batch]);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = queue(16, SchedPolicy::Fifo);
        let (tx, _rx) = channel::unbounded();
        q.submit(1, dummy_request(), Priority::Batch, 1.0, None, tx.clone())
            .unwrap();
        q.close();
        assert!(matches!(
            q.submit(1, dummy_request(), Priority::Batch, 1.0, None, tx),
            Err(ServerError::ShuttingDown)
        ));
        assert!(q.pop().is_some(), "admitted work still drains");
        assert!(q.pop().is_none(), "then the queue ends");
    }
}
