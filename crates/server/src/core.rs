//! The shared system core: the thread-safe split of `dana::Dana`.
//!
//! `Dana` funnels every operation through one `&mut self` — correct for a
//! single notebook user, useless for a serving tier. [`SystemCore`] is the
//! same façade split along the concurrency seam:
//!
//! * the **catalog** sits behind an `RwLock`: queries take short read
//!   locks to snapshot (entry, `Arc<HeapFile>`, accelerator blob) and then
//!   run lock-free; DDL takes the write lock only for the map mutation;
//! * the **buffer pool** is the sharded [`SharedBufferPool`], fetched
//!   through `&self`;
//! * the **execution engine is never built per query**: DEPLOY compiles,
//!   validates, and lowers it once, caching `Arc<ExecutionEngine>` (plus
//!   budget and estimate) on the catalog entry's `RuntimeCache`; EXECUTE
//!   clones the `Arc` under the read lock and runs. Only genuinely
//!   per-query state (access engine, model store, stream source) is
//!   built per request, so any number of queries run in parallel, each
//!   borrowing a leased accelerator instance and the shared engine.
//!
//! Every numerical path is byte-for-byte the one `Dana` runs — the
//! compile pipeline, extraction, lowered executor, and
//! `dana::exec::assemble_report` are shared — which is what the
//! equivalence suite holds the serving tier to.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};

use dana::exec::{self, ArtifactBlob, CachedAccelerator, RunArtifacts, ShardArtifacts};
use dana::{
    AnalyzeReport, BackendKind, DanaError, DanaReport, DanaResult, DeployInfo, DropSummary,
    EvalReport, ExecutionMode, FeedKind, HardwareProfile, MetricKind, PointCall, PointReport,
    PredictReport, QueryOutcome, ScanSpec, ScanState, SharedPageStreamSource, Statement,
    StatementOutcome, StrategyComparison,
};
use dana_compiler::{compile, compile_with_threads, CompileInput, CompiledAccelerator};
use dana_engine::{
    run_training_guarded, CancelToken, EngineError, ExecutionBackend, FaultEvents, FaultPlan,
    ModelStore, RetryPolicy, RunGuard,
};
use dana_fpga::FpgaSpec;
use dana_hdfg::translate;
use dana_ml::CpuModel;
use dana_obs::{MetricsRegistry, SpanRecorder, StatEntry, StatsSnapshot};
use dana_parallel::{
    evaluate_gang, packed_tuple_splits, score_gang_concat, split_replay_sources,
    train_gang_guarded, GangGuard, ReplaySource, ShardPlan,
};
use dana_storage::{
    AcceleratorEntry, BufferPoolConfig, BufferPoolStats, Catalog, DiskModel, HeapFile, HeapId,
    RuntimeCache, SharedBufferPool, TableEntry,
};
use dana_strider::{disassemble, AccessEngine, AccessStats};

/// How to build a [`SystemCore`].
#[derive(Debug, Clone, Copy)]
pub struct SystemCoreConfig {
    /// Template spec for every accelerator instance in the pool.
    pub fpga: FpgaSpec,
    pub pool: BufferPoolConfig,
    /// Buffer-pool lock shards.
    pub pool_shards: usize,
    pub disk: DiskModel,
}

impl Default for SystemCoreConfig {
    fn default() -> SystemCoreConfig {
        SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig::paper_default(),
            pool_shards: dana_storage::shared_pool::DEFAULT_SHARDS,
            disk: DiskModel::ssd(),
        }
    }
}

/// Per-query execution context: the cooperative cancellation token the
/// epoch loops check at every boundary, the retry policy answering
/// transient faults, and the out-channel reporting which gang shards
/// faulted (so the worker can quarantine the pool instances behind
/// them). Built by the server worker from the statement's `WITH
/// (timeout_ms / retries)` options; [`QueryCtx::unbounded`] is the
/// embedded/default path — never cancels, default retries.
#[derive(Debug, Default)]
pub struct QueryCtx {
    /// Cooperative cancellation (deadline and/or manual flag).
    pub cancel: CancelToken,
    /// Backoff/retry policy for transient accelerator faults.
    pub retry: RetryPolicy,
    /// Gang shards that faulted during this query (filled by the gang
    /// path; drained by the worker for pool quarantine).
    faulted: Mutex<Vec<usize>>,
}

impl QueryCtx {
    /// A context that never cancels, with the default retry policy.
    pub fn unbounded() -> QueryCtx {
        QueryCtx::new(CancelToken::none(), RetryPolicy::default())
    }

    pub fn new(cancel: CancelToken, retry: RetryPolicy) -> QueryCtx {
        QueryCtx {
            cancel,
            retry,
            faulted: Mutex::new(Vec::new()),
        }
    }

    /// Gang shards that faulted while this query ran (ascending, deduped
    /// by the gang executor).
    pub fn faulted_shards(&self) -> Vec<usize> {
        match self.faulted.lock() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    fn record_faulted(&self, shards: &[usize]) {
        let mut g = match self.faulted.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        g.extend_from_slice(shards);
    }
}

/// The shared catalog + buffer pool + models, usable from any thread.
pub struct SystemCore {
    catalog: RwLock<Catalog>,
    pool: SharedBufferPool,
    disk: DiskModel,
    fpga: FpgaSpec,
    cpu: CpuModel,
    /// The backend advisor's cost profile (see [`SystemCore::explain_statement`]).
    profile: RwLock<HardwareProfile>,
    /// Execution engines constructed (deploy-time builds + cache misses) —
    /// the EXECUTE path must never grow this past the deploy count.
    engines_built: AtomicU64,
    /// EXECUTE/estimate requests served from a cached `Arc<ExecutionEngine>`.
    engine_cache_hits: AtomicU64,
    /// Push-side observability counters/histograms (`SHOW STATS` rows the
    /// core owns; the server layers queue/pool/session rows on top).
    metrics: MetricsRegistry,
    /// Deterministic fault-injection plan consulted by every guarded
    /// training path. `None` (the production state) injects nothing;
    /// tests and smoke runs install a plan to rehearse recovery.
    fault_plan: RwLock<Option<Arc<FaultPlan>>>,
}

/// Engine-construction accounting: how many engines were ever built vs.
/// how many requests rode the DEPLOY-time cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineCacheStats {
    pub built: u64,
    pub hits: u64,
}

impl SystemCore {
    pub fn new(config: SystemCoreConfig) -> SystemCore {
        SystemCore {
            catalog: RwLock::new(Catalog::new()),
            pool: SharedBufferPool::with_shards(config.pool, config.pool_shards),
            disk: config.disk,
            cpu: CpuModel::i7_6700(),
            engines_built: AtomicU64::new(0),
            engine_cache_hits: AtomicU64::new(0),
            metrics: MetricsRegistry::new(),
            fault_plan: RwLock::new(None),
            // Same default as `Dana`: always offload (the paper's
            // semantics) until an operator installs a real profile.
            profile: RwLock::new(
                HardwareProfile::default()
                    .with_clock_hz(config.fpga.clock.hz)
                    .with_offload_threshold(Some(0)),
            ),
            fpga: config.fpga,
        }
    }

    fn read(&self) -> RwLockReadGuard<'_, Catalog> {
        match self.catalog.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn write(&self) -> RwLockWriteGuard<'_, Catalog> {
        match self.catalog.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn fpga(&self) -> &FpgaSpec {
        &self.fpga
    }

    pub fn pool_stats(&self) -> BufferPoolStats {
        self.pool.stats()
    }

    /// Frames still referenced by a reader — must be zero when idle (the
    /// frame-leak detector the stress suite asserts on).
    pub fn held_frames(&self) -> usize {
        self.pool.held_frames()
    }

    pub fn resident_pages(&self) -> usize {
        self.pool.resident_pages()
    }

    /// Engine-construction counters — the serving tier's proof that
    /// repeated EXECUTEs share one DEPLOY-time engine.
    pub fn engine_cache_stats(&self) -> EngineCacheStats {
        EngineCacheStats {
            built: self.engines_built.load(Ordering::Relaxed),
            hits: self.engine_cache_hits.load(Ordering::Relaxed),
        }
    }

    /// The core's metrics registry (workers charge admission/lease waits
    /// and completion counters here; `SHOW STATS` folds it into rows).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Installs (or clears, with `None`) the deterministic
    /// fault-injection plan every guarded training path consults.
    pub fn install_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        match self.fault_plan.write() {
            Ok(mut g) => *g = plan,
            Err(poisoned) => *poisoned.into_inner() = plan,
        }
    }

    /// The currently installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        match self.fault_plan.read() {
            Ok(g) => g.clone(),
            Err(poisoned) => poisoned.into_inner().clone(),
        }
    }

    /// Folds one guarded run's fault events into the registry and the
    /// lifecycle trace. A quiet run records nothing — the `fault_retry`
    /// span exists only when a fault actually fired, so no-fault trace
    /// structure is a function of the statement alone.
    fn record_fault_events(&self, events: &FaultEvents, rec: &SpanRecorder) {
        if events.is_quiet() {
            return;
        }
        self.metrics
            .transient_faults
            .add(events.transient_faults as u64);
        self.metrics.fault_retries.add(events.retries as u64);
        self.metrics
            .gang_member_faults
            .add(events.faulted_shards.len() as u64);
        rec.add_wall(exec::stage::FAULT_RETRY, events.backoff_seconds);
        rec.set_count(exec::stage::FAULT_RETRY, events.retries as u64);
    }

    /// The core-owned `SHOW STATS` rows: registry counters/histograms
    /// plus pull-side buffer-pool and engine-cache values, read from
    /// their authoritative owners at snapshot time so they cannot drift.
    /// The server appends its queue/pool/session rows before filtering.
    pub fn stats_entries(&self, out: &mut Vec<StatEntry>) {
        self.metrics.snapshot_into(out);
        let ps = self.pool.stats();
        out.push(StatEntry::new("buffer", "hits", ps.hits as f64));
        out.push(StatEntry::new("buffer", "misses", ps.misses as f64));
        out.push(StatEntry::new("buffer", "evictions", ps.evictions as f64));
        out.push(StatEntry::new("buffer", "io_seconds", ps.io_seconds));
        out.push(StatEntry::new(
            "buffer",
            "resident_pages",
            self.pool.resident_pages() as f64,
        ));
        out.push(StatEntry::new(
            "buffer",
            "resident_bytes",
            self.pool.resident_bytes() as f64,
        ));
        let mut per_heap = self.pool.per_heap_frames();
        per_heap.sort_unstable();
        for (heap_id, frames) in per_heap {
            out.push(StatEntry::new(
                "buffer",
                format!("heap_{heap_id}_frames"),
                frames as f64,
            ));
        }
        let ec = self.engine_cache_stats();
        out.push(StatEntry::new("engine", "engines_built", ec.built as f64));
        out.push(StatEntry::new(
            "engine",
            "engine_cache_hits",
            ec.hits as f64,
        ));
    }

    /// A point-in-time snapshot of the core-owned rows only (embedded
    /// uses without a [`crate::DanaServer`] in front; the server's `SHOW
    /// STATS` adds queue/pool/session rows).
    pub fn stats_snapshot(&self, subsystem: Option<&str>) -> StatsSnapshot {
        let mut entries = Vec::new();
        self.stats_entries(&mut entries);
        let snap = StatsSnapshot::new(entries);
        match subsystem {
            Some(s) => snap.filtered(s),
            None => snap,
        }
    }

    // ---- DDL ------------------------------------------------------------

    /// Registers a training table.
    pub fn create_table(&self, name: &str, heap: HeapFile) -> DanaResult<HeapId> {
        Ok(self.write().create_table(name, heap)?)
    }

    /// Drops a table: detaches it from the catalog, force-evicts its pages
    /// (in-flight scans keep their `Arc` snapshots and finish cleanly),
    /// marks accelerators compiled against it stale, and marks prediction
    /// tables materialized from it stale (force-evicting their pages too).
    pub fn drop_table(&self, name: &str) -> DanaResult<DropSummary> {
        let mut cat = self.write();
        let entry = cat.drop_table(name)?;
        let invalidated_udfs = cat.invalidate_accelerators_for(name);
        let derived = cat.invalidate_derived_for(name);
        drop(cat);
        // Evict raw frames and the scan tier's compressed shadow frames;
        // the zone-map/codec sidecar died with the catalog entry above.
        let pages_evicted = self.pool.evict_heap_force(entry.heap_id)
            + self.pool.evict_heap_force(entry.heap_id.shadow());
        let mut stale_prediction_tables = Vec::new();
        for (table, heap_id) in derived {
            self.pool.evict_heap_force(heap_id);
            self.pool.evict_heap_force(heap_id.shadow());
            stale_prediction_tables.push(table);
        }
        self.metrics
            .staleness_invalidations
            .add((invalidated_udfs.len() + stale_prediction_tables.len()) as u64);
        Ok(DropSummary {
            table: name.to_string(),
            pages_evicted,
            invalidated_udfs,
            stale_prediction_tables,
        })
    }

    /// Warm-cache setup: loads the table into the buffer pool without
    /// charging query I/O.
    pub fn prewarm(&self, table: &str) -> DanaResult<usize> {
        let (entry, heap) = self.snapshot_table(table)?;
        let n = self.pool.prewarm(entry.heap_id, &heap)?;
        self.pool.reset_stats();
        Ok(n)
    }

    /// Cold-cache setup: drops every cached page.
    pub fn clear_cache(&self) {
        self.pool.clear();
        self.pool.reset_stats();
    }

    /// Shared snapshot of a live table's heap — what a query would scan.
    /// Useful for inspecting materialized prediction tables without
    /// reaching into the catalog lock.
    pub fn table_snapshot(&self, table: &str) -> DanaResult<Arc<HeapFile>> {
        Ok(self.snapshot_table(table)?.1)
    }

    /// Pages in a table's heap, if the table exists — what the serving
    /// tier clamps gang sizes against (a shard plan never makes more
    /// shards than pages, so a lease must not hold more instances).
    pub fn table_pages(&self, table: &str) -> Option<u32> {
        self.read().table(table).ok().map(|t| t.page_count)
    }

    pub fn table_names(&self) -> Vec<String> {
        self.read()
            .table_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    pub fn accelerator_names(&self) -> Vec<String> {
        self.read()
            .accelerator_names()
            .iter()
            .map(|s| s.to_string())
            .collect()
    }

    // ---- deploy ---------------------------------------------------------

    /// Compiles a UDF for `table` and stores the accelerator in the
    /// catalog. Compilation runs outside the catalog lock; the write lock
    /// is re-taken only to install the entry (verifying the table still
    /// exists, in case a concurrent drop won the race).
    pub fn deploy(&self, spec: &dana_dsl::AlgoSpec, table: &str) -> DanaResult<DeployInfo> {
        let (snap, heap) = self.snapshot_table(table)?;
        let acc = self.compile_for(spec, &heap, snap.tuple_count, None)?;
        // Scoring lowering: the forward-pass recipe rides the blob and
        // the runtime cache beside the training engine.
        let scoring = dana_infer::derive_recipe(spec).ok();
        let blob = ArtifactBlob::from_compiled(&acc, scoring.clone());
        let words = dana_strider::isa::encode_program(&acc.strider_program)?;
        let entry = AcceleratorEntry {
            udf_name: spec.name.clone(),
            strider_program: words,
            design_blob: blob.encode()?,
            merge_coef: spec.merge_coef(),
            num_threads: acc.design.num_threads as u32,
            description: format!(
                "{} threads × {} ACs, {} Striders",
                acc.design.num_threads, acc.design.acs_per_thread, acc.budget.num_page_buffers
            ),
            bound_table: table.to_string(),
            stale: false,
            runtime: RuntimeCache::default(),
            trained: RuntimeCache::default(),
        };
        // The compile already built (validated + lowered) the engine once;
        // prime the entry so every EXECUTE is a cache hit.
        exec::prime_runtime(&entry, &acc, scoring);
        self.engines_built.fetch_add(1, Ordering::Relaxed);
        {
            let mut cat = self.write();
            // The compile raced against DDL: only install if the table the
            // accelerator was compiled for is still the live one.
            match cat.table(table) {
                Ok(t) if t.heap_id == snap.heap_id => cat.deploy_accelerator(entry),
                Ok(_) | Err(_) => {
                    return Err(DanaError::Storage(
                        dana_storage::StorageError::UnknownTable(table.to_string()),
                    ))
                }
            }
        }
        Ok(DeployInfo {
            udf_name: spec.name.clone(),
            num_threads: acc.design.num_threads,
            acs_per_thread: acc.design.acs_per_thread,
            num_striders: acc.budget.num_page_buffers,
            estimate: acc.estimate,
            strider_listing: disassemble(&acc.strider_program),
            micro_ops: acc.design.program.micro_ops(),
        })
    }

    /// Parses DSL source text and deploys it.
    pub fn deploy_source(
        &self,
        source: &str,
        default_name: &str,
        table: &str,
    ) -> DanaResult<DeployInfo> {
        let spec = dana_dsl::parse_udf(source, default_name)?;
        self.deploy(&spec, table)
    }

    // ---- query execution ------------------------------------------------

    /// Runs a deployed accelerator by UDF name (full-Strider mode).
    ///
    /// The concurrent EXECUTE hot path: a short catalog read lock snapshots
    /// the cached `Arc<ExecutionEngine>` (built once at DEPLOY) and the
    /// heap; no blob decode, validation, lowering, or design clone happens
    /// per query. The trained model is stored back on the entry (last
    /// training wins) for PREDICT/EVALUATE to bind.
    pub fn run_udf(&self, udf: &str, table: &str) -> DanaResult<DanaReport> {
        self.run_udf_rec(
            udf,
            table,
            &SpanRecorder::disabled(),
            &QueryCtx::unbounded(),
            None,
        )
    }

    /// [`SystemCore::run_udf`] with a span recorder for the lifecycle
    /// trace (a no-op when disabled — the common case), the query's
    /// cancellation/retry context, and the SQL front door's optional
    /// pushdown scan spec.
    fn run_udf_rec(
        &self,
        udf: &str,
        table: &str,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let cached = self.accelerator_runtime(udf)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let report = self.run_on_heap(
            &cached,
            &entry,
            &heap,
            ExecutionMode::Strider,
            rec,
            ctx,
            scan,
        )?;
        // Store through a short read lock (the slot is interior-mutable).
        // A drop that raced the run cleared `trained` and marked the
        // entry stale — don't resurrect a model for a dropped table.
        let cat = self.read();
        if let Ok(entry) = cat.accelerator(udf) {
            if !entry.stale {
                exec::store_trained(entry, &report);
            }
        }
        Ok(report)
    }

    // ---- the backend advisor --------------------------------------------

    /// The advisor's current cost profile (a copy).
    pub fn hardware_profile(&self) -> HardwareProfile {
        match self.profile.read() {
            Ok(g) => *g,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Installs a new advisor profile (e.g. a calibrated one, or one with
    /// the always-offload default cleared to enable break-even routing).
    pub fn set_hardware_profile(&self, profile: HardwareProfile) {
        match self.profile.write() {
            Ok(mut g) => *g = profile,
            Err(poisoned) => *poisoned.into_inner() = profile,
        }
    }

    /// Prices a statement on every backend without running it — the
    /// serving tier's `EXPLAIN`. Runs entirely on catalog metadata and
    /// the cached lowering; no lease, no scan.
    pub fn explain_statement(&self, stmt: &Statement) -> DanaResult<StrategyComparison> {
        let (cached, rows, columns) = self.advisor_inputs(stmt)?;
        exec::explain_statement(&self.hardware_profile(), &cached, rows, columns, stmt)
    }

    /// Resolves the substrate one statement runs on (`WITH (backend=…)`
    /// override, gang rules, or the advisor for `auto`) — what the worker
    /// consults *before* leasing accelerators, so CPU-tier runs never
    /// charge the pool.
    pub fn resolve_backend(&self, stmt: &Statement) -> DanaResult<BackendKind> {
        let (requested, shards) = match stmt {
            Statement::Train(c) => (c.backend, c.shards),
            Statement::Predict(p) => (p.backend, p.shards),
            Statement::Evaluate(e) => (e.backend, e.shards),
            Statement::PredictPoint(p) => (p.backend, None),
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                return Err(DanaError::Query("EXPLAIN cannot be nested".to_string()))
            }
            Statement::ShowStats(_) => {
                return Err(DanaError::Query(
                    "SHOW STATS has no execution backend".to_string(),
                ))
            }
        };
        if shards.is_some_and(|k| k > 1) {
            return match requested {
                dana::BackendChoice::Cpu => Err(exec::gang_needs_fpga()),
                _ => Ok(BackendKind::Fpga),
            };
        }
        match requested {
            dana::BackendChoice::Fpga => Ok(BackendKind::Fpga),
            dana::BackendChoice::Cpu => Ok(BackendKind::Cpu),
            dana::BackendChoice::Auto => {
                let (cached, rows, columns) = self.advisor_inputs(stmt)?;
                exec::resolve_backend(&self.hardware_profile(), &cached, rows, columns, stmt)
            }
        }
    }

    /// The advisor's inputs for a statement: the cached accelerator
    /// runtime (stale-checked, cache-counted) and the row count it
    /// would score — the live table's tuple count, or the inline
    /// VALUES row count for point-form PREDICT (no table involved).
    fn advisor_inputs(&self, stmt: &Statement) -> DanaResult<(Arc<CachedAccelerator>, u64, usize)> {
        let (udf, table) = match stmt {
            Statement::Train(c) => (&c.udf, Some(&c.table)),
            Statement::Predict(p) => (&p.udf, Some(&p.table)),
            Statement::Evaluate(e) => (&e.udf, Some(&e.table)),
            Statement::PredictPoint(p) => (&p.udf, None),
            Statement::Explain(_) | Statement::ExplainAnalyze(_) => {
                return Err(DanaError::Query("EXPLAIN cannot be nested".to_string()))
            }
            Statement::ShowStats(_) => {
                return Err(DanaError::Query(
                    "SHOW STATS has no execution backend".to_string(),
                ))
            }
        };
        let cached = self.accelerator_runtime(udf)?;
        let (rows, columns) = match (table, stmt) {
            (Some(table), _) => {
                let cat = self.read();
                let t = cat.live_table(table)?;
                let columns = cat.heap(t.heap_id)?.schema().len();
                (t.tuple_count, columns)
            }
            (None, Statement::PredictPoint(p)) => (p.rows.len() as u64, 0),
            (None, _) => unreachable!("only point predictions are table-less"),
        };
        Ok((cached, rows, columns))
    }

    /// Runs a deployed accelerator's lowered program on the **native CPU
    /// backend**: the identical shared-pool streamed scan and epoch loop,
    /// timed with a stopwatch instead of the cycle model. Models and
    /// engine counters are bit-identical to [`SystemCore::run_udf`]; no
    /// accelerator lease is required.
    pub fn run_udf_cpu(&self, udf: &str, table: &str) -> DanaResult<DanaReport> {
        self.run_udf_cpu_rec(
            udf,
            table,
            &SpanRecorder::disabled(),
            &QueryCtx::unbounded(),
            None,
        )
    }

    fn run_udf_cpu_rec(
        &self,
        udf: &str,
        table: &str,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let cached = self.accelerator_runtime(udf)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let design = cached.engine.design();
        let access = exec::access_engine_for(&heap, cached.budget, &self.fpga);
        let state = exec::scan_state(&entry, &heap, scan)?;
        let mut store = ModelStore::new(design, exec::initial_models(design))?;
        let feed = FeedKind::for_mode(ExecutionMode::Strider);
        let base = SharedPageStreamSource::new(
            &self.pool,
            &self.disk,
            &heap,
            entry.heap_id,
            &access,
            feed,
        );
        let mut source = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let plan = self.fault_plan();
        let guard = RunGuard::new(&ctx.cancel)
            .with_fault(plan.as_deref())
            .with_retry(ctx.retry);
        let (run, events) = cached
            .cpu
            .run_training_guarded(&mut source, &mut store, &guard)?;
        self.record_fault_events(&events, rec);
        let (access_stats, _io_first) = source.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        let report = exec::assemble_cpu_report(design, run, access_stats, store, rec);
        let cat = self.read();
        if let Ok(entry) = cat.accelerator(udf) {
            if !entry.stale {
                exec::store_trained(entry, &report);
            }
        }
        Ok(report)
    }

    /// CPU-tier PREDICT: the identical scoring scan with stopwatch
    /// accounting; the materialized predictions are bit-identical to the
    /// FPGA tier's.
    pub fn predict_cpu(&self, udf: &str, source: &str, dest: &str) -> DanaResult<PredictReport> {
        self.predict_full(
            udf,
            source,
            dest,
            ExecutionMode::Strider,
            None,
            BackendKind::Cpu,
            &SpanRecorder::disabled(),
            None,
        )
    }

    /// CPU-tier EVALUATE: the identical metric fold with stopwatch
    /// accounting.
    pub fn evaluate_cpu(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_full(
            udf,
            table,
            metric,
            ExecutionMode::Strider,
            None,
            BackendKind::Cpu,
            &SpanRecorder::disabled(),
            None,
        )
    }

    /// Compiles `spec` ad hoc and runs it in the given mode (nothing is
    /// stored in the catalog) — the serving twin of
    /// `Dana::train_with_spec`.
    ///
    /// Compile and execution use the *same* heap snapshot: a concurrent
    /// drop+recreate of the table cannot slip a different layout under an
    /// accelerator compiled for the old one.
    pub fn train_with_spec(
        &self,
        spec: &dana_dsl::AlgoSpec,
        table: &str,
        mode: ExecutionMode,
    ) -> DanaResult<DanaReport> {
        let (entry, heap) = self.snapshot_table(table)?;
        let threads = match mode {
            ExecutionMode::Tabla => Some(1),
            _ => None,
        };
        let acc = self.compile_for(spec, &heap, entry.tuple_count, threads)?;
        self.engines_built.fetch_add(1, Ordering::Relaxed);
        self.run_on_heap(
            &CachedAccelerator::from_compiled(&acc, None),
            &entry,
            &heap,
            mode,
            &SpanRecorder::disabled(),
            &QueryCtx::unbounded(),
            None,
        )
    }

    // ---- intra-query data parallelism -----------------------------------

    /// Runs a deployed accelerator **gang-parallel** across `shards`
    /// page-range shards of `table` (`EXECUTE … WITH (shards = k)`): the
    /// gang's members each stream their own range through the shared
    /// pool concurrently, train the cached lowered program
    /// epoch-synchronously, and merge partial models deterministically at
    /// every epoch boundary (weighted averaging for dense analytics,
    /// factor-row ownership for LRMF). `shards = 1` is bit-identical to
    /// [`SystemCore::run_udf`] — models, stats, and timing.
    ///
    /// The caller (a server worker) is expected to hold a gang lease of
    /// matching size on the accelerator pool.
    pub fn run_udf_sharded(&self, udf: &str, table: &str, shards: u16) -> DanaResult<DanaReport> {
        self.run_udf_sharded_rec(
            udf,
            table,
            shards,
            &SpanRecorder::disabled(),
            &QueryCtx::unbounded(),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_udf_sharded_rec(
        &self,
        udf: &str,
        table: &str,
        shards: u16,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let cached = self.accelerator_runtime(udf)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let report = self.run_gang_on_heap(
            &cached,
            &entry,
            &heap,
            ExecutionMode::Strider,
            shards,
            rec,
            ctx,
            scan,
        )?;
        let cat = self.read();
        if let Ok(entry) = cat.accelerator(udf) {
            if !entry.stale {
                exec::store_trained(entry, &report);
            }
        }
        Ok(report)
    }

    #[allow(clippy::too_many_arguments)]
    fn run_gang_on_heap(
        &self,
        acc: &CachedAccelerator,
        entry: &TableEntry,
        heap: &HeapFile,
        mode: ExecutionMode,
        shards: u16,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let budget = acc.budget;
        let engine = &acc.engine;
        let design = engine.design();
        let heap_id = entry.heap_id;
        let access = exec::access_engine_for(heap, budget, &self.fpga);
        let feed = FeedKind::for_mode(mode);
        let state = exec::scan_state(entry, heap, scan)?;
        let fault = self.fault_plan();
        let guard = GangGuard::new(&ctx.cancel).with_fault(fault.as_deref());
        let (outcome, arts) = match &state {
            None => {
                let plan = ShardPlan::new(heap, shards as usize);
                let mut sources: Vec<SharedPageStreamSource<'_>> = plan
                    .ranges()
                    .iter()
                    .map(|r| {
                        SharedPageStreamSource::with_range(
                            &self.pool,
                            &self.disk,
                            heap,
                            heap_id,
                            &access,
                            feed,
                            r.start_page,
                            r.end_page,
                        )
                    })
                    .collect();
                let outcome =
                    train_gang_guarded(engine, &mut sources, exec::initial_models(design), &guard)?;
                let arts: Vec<ShardArtifacts> = sources
                    .into_iter()
                    .zip(&outcome.shard_stats)
                    .map(|(src, stats)| {
                        let (access_stats, io_first) = src.into_stats();
                        ShardArtifacts {
                            engine_stats: *stats,
                            access_stats,
                            io_first,
                        }
                    })
                    .collect();
                (outcome, arts)
            }
            Some(st) => {
                let (mut sources, scans) =
                    self.filtered_replay_shards(heap, heap_id, &access, feed, shards, st)?;
                let outcome =
                    train_gang_guarded(engine, &mut sources, exec::initial_models(design), &guard)?;
                let arts: Vec<ShardArtifacts> = scans
                    .into_iter()
                    .zip(&outcome.shard_stats)
                    .map(|((access_stats, io_first), stats)| ShardArtifacts {
                        engine_stats: *stats,
                        access_stats,
                        io_first,
                    })
                    .collect();
                (outcome, arts)
            }
        };
        if !outcome.faulted_shards.is_empty() {
            self.record_fault_events(
                &FaultEvents {
                    transient_faults: outcome.faulted_shards.len() as u32,
                    faulted_shards: outcome.faulted_shards.clone(),
                    ..FaultEvents::default()
                },
                rec,
            );
            self.metrics
                .shard_reexecutions
                .add(outcome.reexecuted_epochs as u64);
            rec.set_count(exec::stage::FAULT_RETRY, outcome.reexecuted_epochs as u64);
            ctx.record_faulted(&outcome.faulted_shards);
        }
        exec::assemble_gang_report(
            mode,
            design,
            budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.frames(),
            heap,
            arts,
            outcome.merge_cycles,
            outcome.models,
            rec,
        )
    }

    /// Gang-parallel PREDICT: shards score their page ranges
    /// concurrently; outputs concatenate in shard-index order — source
    /// page order — so the materialized prediction table is
    /// **bit-identical to serial PREDICT for every shard count**. Same
    /// guarded install as [`SystemCore::predict`].
    pub fn predict_sharded(
        &self,
        udf: &str,
        source: &str,
        dest: &str,
        shards: u16,
    ) -> DanaResult<PredictReport> {
        self.predict_sharded_rec(udf, source, dest, shards, &SpanRecorder::disabled(), None)
    }

    fn predict_sharded_rec(
        &self,
        udf: &str,
        source: &str,
        dest: &str,
        shards: u16,
        rec: &SpanRecorder,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<PredictReport> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let (entry, heap) = self.snapshot_table(source)?;
        if self.read().table(dest).is_ok() {
            return Err(DanaError::Storage(
                dana_storage::StorageError::DuplicateName(dest.to_string()),
            ));
        }
        let state = exec::scan_state(&entry, &heap, scan)?;
        let (predictions, stats, timing, k) = match &state {
            None => self.sharded_scoring_scan(
                &setup,
                &entry,
                &heap,
                shards,
                rec,
                |program, lanes, sources| Ok(score_gang_concat(program, lanes, sources)?),
            )?,
            Some(st) => self.sharded_scoring_scan_filtered(
                &setup,
                &entry,
                &heap,
                shards,
                st,
                rec,
                |program, lanes, sources| Ok(score_gang_concat(program, lanes, sources)?),
            )?,
        };
        let mat_start = std::time::Instant::now();
        let out_heap = exec::materialize_predictions(&entry, &heap, scan, &predictions)?;
        {
            let mut cat = self.write();
            match cat.table(source) {
                Ok(t) if t.heap_id == entry.heap_id && !t.stale => {
                    cat.create_derived_table(dest, out_heap, source)?;
                }
                _ => {
                    return Err(DanaError::Storage(
                        dana_storage::StorageError::UnknownTable(source.to_string()),
                    ));
                }
            }
        }
        rec.add_wall(exec::stage::MATERIALIZE, mat_start.elapsed().as_secs_f64());
        Ok(PredictReport {
            udf: udf.to_string(),
            source_table: source.to_string(),
            output_table: dest.to_string(),
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: k,
            backend: BackendKind::Fpga,
            scoring: stats,
            timing,
        })
    }

    /// Gang-parallel EVALUATE: shards fold metric partials concurrently;
    /// partials combine in shard-index order, the metric finishes once.
    /// `shards = 1` is bit-identical to [`SystemCore::evaluate`].
    pub fn evaluate_sharded(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        shards: u16,
    ) -> DanaResult<EvalReport> {
        self.evaluate_sharded_rec(udf, table, metric, shards, &SpanRecorder::disabled(), None)
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_sharded_rec(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        shards: u16,
        rec: &SpanRecorder,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<EvalReport> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let metric = metric.unwrap_or_else(|| setup.recipe.default_metric());
        setup.recipe.check_metric(metric)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let state = exec::scan_state(&entry, &heap, scan)?;
        let fold = |evals: Vec<dana_parallel::ShardEval>| {
            let mut partial = dana_infer::MetricPartial::default();
            for e in &evals {
                partial.absorb(e.partial);
            }
            let stats: Vec<_> = evals.iter().map(|e| e.stats).collect();
            Ok((partial.finish(metric)?, stats))
        };
        let (value, stats, timing, k) = match &state {
            None => self.sharded_scoring_scan(
                &setup,
                &entry,
                &heap,
                shards,
                rec,
                |program, lanes, sources| fold(evaluate_gang(program, lanes, sources, metric)?),
            )?,
            Some(st) => self.sharded_scoring_scan_filtered(
                &setup,
                &entry,
                &heap,
                shards,
                st,
                rec,
                |program, lanes, sources| fold(evaluate_gang(program, lanes, sources, metric)?),
            )?,
        };
        Ok(EvalReport {
            udf: udf.to_string(),
            table: table.to_string(),
            metric,
            value,
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: k,
            backend: BackendKind::Fpga,
            scoring: stats,
            timing,
        })
    }

    /// Gang-parallel raw scoring (the differential suite's entry point).
    pub fn score_sharded(&self, udf: &str, table: &str, shards: u16) -> DanaResult<Vec<f32>> {
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let (predictions, _, _, _) = self.sharded_scoring_scan(
            &setup,
            &entry,
            &heap,
            shards,
            &SpanRecorder::disabled(),
            |program, lanes, sources| Ok(score_gang_concat(program, lanes, sources)?),
        )?;
        Ok(predictions)
    }

    /// Streams the whole table once through a pushdown scan and re-splits
    /// the surviving tuples at the page boundaries a pre-materialized
    /// filtered table would have (see `dana`'s serial twin): shard
    /// contents — and so gang merges and concatenated scores — are
    /// bit-identical to sharding that table. Returns replaying shard
    /// sources plus each shard's share of the scan's measured cost.
    #[allow(clippy::type_complexity)]
    fn filtered_replay_shards(
        &self,
        heap: &HeapFile,
        heap_id: HeapId,
        access: &AccessEngine,
        feed: FeedKind,
        shards: u16,
        state: &ScanState,
    ) -> DanaResult<(Vec<ReplaySource>, Vec<(AccessStats, f64)>)> {
        let src = SharedPageStreamSource::new(&self.pool, &self.disk, heap, heap_id, access, feed)
            .with_scan(state.clone());
        let (batches, stats, io_first) = src
            .into_cache()
            .map_err(|e| DanaError::Engine(EngineError::from(e)))?;
        exec::record_scan_metrics(&self.metrics, &stats, &state.sidecar, heap.tuple_count());
        let capacity = exec::packed_page_capacity(heap, &state.spec)?;
        let splits = packed_tuple_splits(stats.tuples, capacity, shards as usize);
        let width = state.spec.output_width(heap.schema().len());
        let sources = split_replay_sources(width, &batches, &splits);
        let scans = exec::split_filtered_scan_stats(&stats, io_first, &splits);
        Ok((sources, scans))
    }

    /// [`SystemCore::sharded_scoring_scan`]'s pushdown twin: the gang
    /// scores replayed slices of one filtered scan instead of concurrent
    /// page-range streams (post-filter rows don't align with page
    /// boundaries, so ranges can't partition them).
    #[allow(clippy::too_many_arguments)]
    fn sharded_scoring_scan_filtered<R>(
        &self,
        setup: &exec::ScoringSetup,
        entry: &TableEntry,
        heap: &HeapFile,
        shards: u16,
        state: &ScanState,
        rec: &SpanRecorder,
        run: impl FnOnce(
            &dana_infer::ScoringProgram,
            u16,
            &mut [ReplaySource],
        ) -> DanaResult<(R, Vec<dana::ScoringStats>)>,
    ) -> DanaResult<(R, dana::ScoringStats, dana::DanaTiming, u16)> {
        let mode = ExecutionMode::Strider;
        let access = exec::access_engine_for(heap, setup.cached.budget, &self.fpga);
        let feed = FeedKind::for_mode(mode);
        let (mut sources, scans) =
            self.filtered_replay_shards(heap, entry.heap_id, &access, feed, shards, state)?;
        let k = sources.len() as u16;
        let (result, stats) = run(&setup.program, setup.lanes, &mut sources)?;
        let arts: Vec<ShardArtifacts> = scans
            .into_iter()
            .map(|(access_stats, io_first)| ShardArtifacts {
                engine_stats: Default::default(),
                access_stats,
                io_first,
            })
            .collect();
        let (timing, combined) = exec::assemble_gang_scoring_timing(
            mode,
            setup.cached.budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.frames(),
            heap,
            &arts,
            &stats,
            rec,
        );
        Ok((result, combined, timing, k))
    }

    /// The one gang-parallel scoring scan: plan page ranges, open one
    /// concurrent shared-pool range stream per shard, run `scan`
    /// (scoring or metric fold) over the gang, and compose the gang
    /// timing from the critical member. Shared by predict/evaluate/score.
    fn sharded_scoring_scan<R>(
        &self,
        setup: &exec::ScoringSetup,
        entry: &TableEntry,
        heap: &HeapFile,
        shards: u16,
        rec: &SpanRecorder,
        scan: impl FnOnce(
            &dana_infer::ScoringProgram,
            u16,
            &mut [SharedPageStreamSource<'_>],
        ) -> DanaResult<(R, Vec<dana::ScoringStats>)>,
    ) -> DanaResult<(R, dana::ScoringStats, dana::DanaTiming, u16)> {
        let mode = ExecutionMode::Strider;
        let access = exec::access_engine_for(heap, setup.cached.budget, &self.fpga);
        let plan = ShardPlan::new(heap, shards as usize);
        let feed = FeedKind::for_mode(mode);
        let mut sources: Vec<SharedPageStreamSource<'_>> = plan
            .ranges()
            .iter()
            .map(|r| {
                SharedPageStreamSource::with_range(
                    &self.pool,
                    &self.disk,
                    heap,
                    entry.heap_id,
                    &access,
                    feed,
                    r.start_page,
                    r.end_page,
                )
            })
            .collect();
        let (result, stats) = scan(&setup.program, setup.lanes, &mut sources)?;
        let arts: Vec<ShardArtifacts> = sources
            .into_iter()
            .map(|src| {
                let (access_stats, io_first) = src.into_stats();
                ShardArtifacts {
                    engine_stats: Default::default(),
                    access_stats,
                    io_first,
                }
            })
            .collect();
        let (timing, combined) = exec::assemble_gang_scoring_timing(
            mode,
            setup.cached.budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.frames(),
            heap,
            &arts,
            &stats,
            rec,
        );
        Ok((result, combined, timing, plan.shards() as u16))
    }

    /// Snapshot of the accelerator's artifact blob, with the stale check.
    /// (Introspection path — queries use [`SystemCore::accelerator_runtime`].)
    pub fn accelerator_blob(&self, udf: &str) -> DanaResult<ArtifactBlob> {
        let cat = self.read();
        let entry = cat.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        ArtifactBlob::decode(&entry.design_blob)
    }

    /// The accelerator's cached runtime artifact (engine + budget +
    /// estimate), with the stale check. Served from the entry's DEPLOY-time
    /// cache under a short read lock; a miss (cache invalidated or entry
    /// restored from a blob) rebuilds from the persisted lowering once.
    pub fn accelerator_runtime(&self, udf: &str) -> DanaResult<Arc<CachedAccelerator>> {
        let cat = self.read();
        let entry = cat.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, built) = exec::cached_accelerator(entry)?;
        if built {
            self.engines_built.fetch_add(1, Ordering::Relaxed);
        } else {
            self.engine_cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        Ok(cached)
    }

    /// SJF's ordering key for a deployed UDF: the deploy-time estimate
    /// priced in simulated seconds (read straight off the runtime cache —
    /// submit-time cost hints don't re-parse catalog blobs either).
    pub fn estimated_seconds(&self, udf: &str) -> DanaResult<f64> {
        let cached = self.accelerator_runtime(udf)?;
        Ok(exec::estimate_seconds(
            &cached.estimate,
            cached.engine.design().convergence.max_epochs(),
            &self.fpga,
        ))
    }

    /// SJF's ordering key for a *scoring* query: tuple count × per-tuple
    /// program length across the design's lockstep lanes. Scoring is a
    /// single pass, so these hints let PREDICT/EVALUATE overtake long
    /// multi-epoch training jobs under SJF.
    pub fn estimated_scoring_seconds(&self, udf: &str, table: &str) -> DanaResult<f64> {
        let cached = self.accelerator_runtime(udf)?;
        let Some(recipe) = cached.scoring.as_ref() else {
            return Ok(0.0); // unknown work: the conservative (early) hint
        };
        let tuples = self.read().table(table).map(|t| t.tuple_count).unwrap_or(0);
        Ok(exec::scoring_estimate_seconds(
            recipe,
            tuples,
            cached.engine.design().num_threads as u32,
            &self.fpga,
        ))
    }

    /// SJF's ordering key for a *point* scoring query: the inline row
    /// count × per-tuple program length across the lanes. Never the
    /// bound table's tuples × epochs — a handful of VALUES rows is
    /// microseconds of work and must sort ahead of any scan.
    pub fn estimated_point_seconds(&self, udf: &str, rows: u64) -> DanaResult<f64> {
        let cached = self.accelerator_runtime(udf)?;
        let Some(recipe) = cached.scoring.as_ref() else {
            return Ok(0.0); // unknown work: the conservative (early) hint
        };
        Ok(exec::scoring_estimate_seconds(
            recipe,
            rows,
            cached.engine.design().num_threads as u32,
            &self.fpga,
        ))
    }

    /// The UDF's current trained-model generation: the `Arc` in its
    /// trained-model slot, as an identity witness. `None` when
    /// untrained, stale, or unknown. The serving tier's prediction
    /// cache stamps entries with this `Arc` and refuses hits whose
    /// stamp is no longer pointer-equal to the live one — a retrain
    /// swaps the `Arc` (last write wins) and a drop clears the slot,
    /// so either way the stamp mismatch invalidates without any flag
    /// on the hot path. Holding the `Arc` (not a raw pointer) makes
    /// the comparison ABA-safe: the old generation's allocation cannot
    /// be reused while a cache entry still references it.
    pub fn trained_generation(&self, udf: &str) -> Option<Arc<dana::TrainedModels>> {
        let cat = self.read();
        let entry = cat.accelerator(udf).ok()?;
        if entry.stale {
            return None;
        }
        exec::trained_models(entry)
    }

    // ---- the inference tier --------------------------------------------

    /// Scores `source` with `udf`'s latest trained model and materializes
    /// the predictions as a new catalog table — the concurrent twin of
    /// `Dana::predict`. The scan runs lock-free on a heap snapshot; the
    /// result installs under the write lock only if the source is still
    /// the same live heap (a drop or drop+recreate that raced the scan
    /// refuses the install instead of registering an orphan).
    pub fn predict(&self, udf: &str, source: &str, dest: &str) -> DanaResult<PredictReport> {
        self.predict_with(udf, source, dest, ExecutionMode::Strider, None)
    }

    /// [`SystemCore::predict`] with explicit mode and lane count.
    pub fn predict_with(
        &self,
        udf: &str,
        source: &str,
        dest: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<PredictReport> {
        self.predict_full(
            udf,
            source,
            dest,
            mode,
            lanes,
            BackendKind::Fpga,
            &SpanRecorder::disabled(),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn predict_full(
        &self,
        udf: &str,
        source: &str,
        dest: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
        backend: BackendKind,
        rec: &SpanRecorder,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<PredictReport> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        let (entry, heap) = self.snapshot_table(source)?;
        // Cheap early refusal; the authoritative check is the guarded
        // install below.
        if self.read().table(dest).is_ok() {
            return Err(DanaError::Storage(
                dana_storage::StorageError::DuplicateName(dest.to_string()),
            ));
        }
        let (predictions, stats, timing) = self.scoring_scan(
            &setup,
            &entry,
            &heap,
            mode,
            backend,
            rec,
            scan,
            |p, l, stream| {
                let mut out = Vec::with_capacity(heap.tuple_count() as usize);
                let stats = dana_infer::score_source(p, l, stream, &mut out)?;
                Ok((out, stats))
            },
        )?;
        let mat_start = std::time::Instant::now();
        let out_heap = exec::materialize_predictions(&entry, &heap, scan, &predictions)?;
        {
            let mut cat = self.write();
            match cat.table(source) {
                Ok(t) if t.heap_id == entry.heap_id && !t.stale => {
                    cat.create_derived_table(dest, out_heap, source)?;
                }
                _ => {
                    // The source was dropped (or swapped) mid-scan: the
                    // predictions describe rows that no longer exist.
                    return Err(DanaError::Storage(
                        dana_storage::StorageError::UnknownTable(source.to_string()),
                    ));
                }
            }
        }
        rec.add_wall(exec::stage::MATERIALIZE, mat_start.elapsed().as_secs_f64());
        Ok(PredictReport {
            udf: udf.to_string(),
            source_table: source.to_string(),
            output_table: dest.to_string(),
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: 1,
            backend,
            scoring: stats,
            timing,
        })
    }

    /// The **point fast path**: scores inline VALUES rows against
    /// `udf`'s latest trained model — no heap scan, no buffer-pool
    /// traffic, no materialization, and (on the CPU tier) no
    /// accelerator lease. The rows bind straight into the cached
    /// scoring program's SoA batch scorer, which is the same lockstep
    /// kernel the materializing path streams pages through — so the
    /// predictions are bit-identical to `PREDICT … INTO` on the same
    /// rows.
    pub fn predict_point(
        &self,
        udf: &str,
        rows: &[Vec<f32>],
        backend: BackendKind,
    ) -> DanaResult<PointReport> {
        self.predict_point_rec(
            udf,
            rows,
            backend,
            &SpanRecorder::disabled(),
            &QueryCtx::unbounded(),
        )
    }

    /// [`SystemCore::predict_point`] with the backend resolved through
    /// the advisor (the typed `QueryRequest::PredictPoint` entry point).
    pub fn predict_point_ctx(
        &self,
        udf: &str,
        rows: &[Vec<f32>],
        ctx: &QueryCtx,
    ) -> DanaResult<PointReport> {
        let backend = self.point_backend(udf, rows)?;
        self.predict_point_rec(udf, rows, backend, &SpanRecorder::disabled(), ctx)
    }

    /// The substrate a typed (non-SQL) point prediction runs on: the
    /// advisor's verdict for its inline row count (point batches are
    /// tiny, so a break-even profile routes them to the CPU tier and
    /// they never lease an accelerator).
    pub fn point_backend(&self, udf: &str, rows: &[Vec<f32>]) -> DanaResult<BackendKind> {
        let stmt = Statement::PredictPoint(PointCall {
            udf: udf.to_string(),
            rows: rows.to_vec(),
            backend: dana::BackendChoice::Auto,
            trace: false,
            timeout_ms: None,
            retries: None,
        });
        self.resolve_backend(&stmt)
    }

    fn predict_point_rec(
        &self,
        udf: &str,
        rows: &[Vec<f32>],
        backend: BackendKind,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
    ) -> DanaResult<PointReport> {
        self.check_deadline(ctx)?;
        let setup = self.scoring_setup(udf, ExecutionMode::Strider, None)?;
        let batch = exec::point_batch(udf, &setup.program, rows)?;
        let start = std::time::Instant::now();
        let (predictions, stats) = dana_infer::score_batch(&setup.program, setup.lanes, &batch)?;
        let wall = start.elapsed().as_secs_f64();
        let timing = exec::point_timing(backend, &stats, wall, &self.fpga);
        match backend {
            BackendKind::Cpu => exec::record_cpu_spans(rec, wall),
            BackendKind::Fpga => rec.add_sim(exec::stage::ENGINE, timing.engine_seconds),
        }
        Ok(PointReport {
            udf: udf.to_string(),
            predictions,
            lanes: setup.lanes,
            backend,
            cached: false,
            scoring: stats,
            timing,
        })
    }

    /// Scores `table` and folds an in-database metric over the stream —
    /// the concurrent twin of `Dana::evaluate`.
    pub fn evaluate(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_with(udf, table, metric, ExecutionMode::Strider, None)
    }

    /// [`SystemCore::evaluate`] with explicit mode and lane count.
    pub fn evaluate_with(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<EvalReport> {
        self.evaluate_full(
            udf,
            table,
            metric,
            mode,
            lanes,
            BackendKind::Fpga,
            &SpanRecorder::disabled(),
            None,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn evaluate_full(
        &self,
        udf: &str,
        table: &str,
        metric: Option<MetricKind>,
        mode: ExecutionMode,
        lanes: Option<u16>,
        backend: BackendKind,
        rec: &SpanRecorder,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<EvalReport> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        let metric = metric.unwrap_or_else(|| setup.recipe.default_metric());
        setup.recipe.check_metric(metric)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let (value, stats, timing) = self.scoring_scan(
            &setup,
            &entry,
            &heap,
            mode,
            backend,
            rec,
            scan,
            |p, l, stream| dana_infer::evaluate_source(p, l, stream, metric),
        )?;
        Ok(EvalReport {
            udf: udf.to_string(),
            table: table.to_string(),
            metric,
            value,
            rows_scored: stats.tuples,
            lanes: setup.lanes,
            shards: 1,
            backend,
            scoring: stats,
            timing,
        })
    }

    /// Scores `table` and returns the raw prediction stream (the
    /// equivalence suite's entry point; nothing is materialized).
    pub fn score_with(
        &self,
        udf: &str,
        table: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<Vec<f32>> {
        let setup = self.scoring_setup(udf, mode, lanes)?;
        let (entry, heap) = self.snapshot_table(table)?;
        let (predictions, _, _) = self.scoring_scan(
            &setup,
            &entry,
            &heap,
            mode,
            BackendKind::Fpga,
            &SpanRecorder::disabled(),
            None,
            |p, l, stream| {
                let mut out = Vec::with_capacity(heap.tuple_count() as usize);
                let stats = dana_infer::score_source(p, l, stream, &mut out)?;
                Ok((out, stats))
            },
        )?;
        Ok(predictions)
    }

    /// Everything a scoring query resolves under the catalog read lock
    /// (stale check, cached accelerator — with the engine-cache counters —
    /// recipe bound to the latest trained models, lane count).
    fn scoring_setup(
        &self,
        udf: &str,
        mode: ExecutionMode,
        lanes: Option<u16>,
    ) -> DanaResult<exec::ScoringSetup> {
        let cat = self.read();
        let entry = cat.accelerator(udf)?;
        if entry.stale {
            return Err(DanaError::StaleAccelerator {
                udf: udf.to_string(),
                dropped_table: entry.bound_table.clone(),
            });
        }
        let (cached, built) = exec::cached_accelerator(entry)?;
        if built {
            self.engines_built.fetch_add(1, Ordering::Relaxed);
        } else {
            self.engine_cache_hits.fetch_add(1, Ordering::Relaxed);
        }
        exec::scoring_setup(udf, entry, cached, mode, lanes)
    }

    /// The one lock-free scoring scan over a heap snapshot: stream pages
    /// through the shared pool into `run` (which drives the SoA scorer —
    /// collecting predictions or folding a metric) and compose the
    /// timing. Shared by predict/evaluate/score so the scan plumbing
    /// exists exactly once.
    #[allow(clippy::too_many_arguments)]
    fn scoring_scan<R>(
        &self,
        setup: &exec::ScoringSetup,
        entry: &TableEntry,
        heap: &HeapFile,
        mode: ExecutionMode,
        backend: BackendKind,
        rec: &SpanRecorder,
        scan: Option<&ScanSpec>,
        run: impl FnOnce(
            &dana_infer::ScoringProgram,
            u16,
            &mut SharedPageStreamSource<'_>,
        ) -> dana_infer::InferResult<(R, dana::ScoringStats)>,
    ) -> DanaResult<(R, dana::ScoringStats, dana::DanaTiming)> {
        let access = exec::access_engine_for(heap, setup.cached.budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let feed = FeedKind::for_mode(mode);
        let base =
            SharedPageStreamSource::new(&self.pool, &self.disk, heap, entry.heap_id, &access, feed);
        let mut stream = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let start = std::time::Instant::now();
        let (result, stats) = run(&setup.program, setup.lanes, &mut stream)?;
        let wall = start.elapsed().as_secs_f64();
        let (access_stats, io_first) = stream.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        let timing = match backend {
            BackendKind::Cpu => {
                exec::record_cpu_spans(rec, wall);
                dana::DanaTiming::wall_only(wall)
            }
            BackendKind::Fpga => exec::assemble_scoring_timing(
                mode,
                setup.cached.budget,
                &self.fpga,
                &self.cpu,
                &self.disk,
                self.pool.frames(),
                heap,
                &access_stats,
                io_first,
                &stats,
                rec,
            ),
        };
        Ok((result, stats, timing))
    }

    // ---- statement dispatch ---------------------------------------------

    /// Dispatches one parsed statement on the substrate its `WITH` clause
    /// (or the advisor) picked — the concurrent twin of the serial
    /// façade's dispatcher, shared by every server worker. `shards` is
    /// the **effective** gang size the caller leased (the worker clamps
    /// the statement's request to the pool size and the table's page
    /// count; the run must agree with the lease). `rec` carries the
    /// lifecycle trace and is a no-op when disabled (the common case).
    pub fn execute_parsed(
        &self,
        stmt: &Statement,
        shards: u16,
        rec: &SpanRecorder,
    ) -> DanaResult<StatementOutcome> {
        self.execute_parsed_ctx(stmt, shards, rec, &QueryCtx::unbounded())
    }

    /// [`SystemCore::execute_parsed`] with the query's
    /// cancellation/retry context (the server worker's entry point —
    /// deadlines from `WITH (timeout_ms = …)` or the server default are
    /// checked cooperatively at epoch boundaries and before every
    /// scoring scan).
    pub fn execute_parsed_ctx(
        &self,
        stmt: &Statement,
        shards: u16,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
    ) -> DanaResult<StatementOutcome> {
        match stmt {
            Statement::Train(call) => {
                let scan = call.scan.as_ref();
                let report = if shards > 1 {
                    self.run_udf_sharded_rec(&call.udf, &call.table, shards, rec, ctx, scan)?
                } else {
                    match self.resolve_backend(stmt)? {
                        BackendKind::Cpu => {
                            self.run_udf_cpu_rec(&call.udf, &call.table, rec, ctx, scan)?
                        }
                        BackendKind::Fpga => {
                            self.run_udf_rec(&call.udf, &call.table, rec, ctx, scan)?
                        }
                    }
                };
                Ok(StatementOutcome::Train(QueryOutcome {
                    udf: call.udf.clone(),
                    table: call.table.clone(),
                    report,
                }))
            }
            Statement::Predict(p) => Ok(StatementOutcome::Predict(if shards > 1 {
                self.check_deadline(ctx)?;
                self.predict_sharded_rec(&p.udf, &p.table, &p.into, shards, rec, p.scan.as_ref())?
            } else {
                self.check_deadline(ctx)?;
                let backend = self.resolve_backend(stmt)?;
                self.predict_full(
                    &p.udf,
                    &p.table,
                    &p.into,
                    ExecutionMode::Strider,
                    None,
                    backend,
                    rec,
                    p.scan.as_ref(),
                )?
            })),
            Statement::Evaluate(e) => Ok(StatementOutcome::Evaluate(if shards > 1 {
                self.check_deadline(ctx)?;
                self.evaluate_sharded_rec(&e.udf, &e.table, e.metric, shards, rec, e.scan.as_ref())?
            } else {
                self.check_deadline(ctx)?;
                let backend = self.resolve_backend(stmt)?;
                self.evaluate_full(
                    &e.udf,
                    &e.table,
                    e.metric,
                    ExecutionMode::Strider,
                    None,
                    backend,
                    rec,
                    e.scan.as_ref(),
                )?
            })),
            Statement::PredictPoint(p) => {
                let backend = self.resolve_backend(stmt)?;
                Ok(StatementOutcome::Point(
                    self.predict_point_rec(&p.udf, &p.rows, backend, rec, ctx)?,
                ))
            }
            Statement::Explain(inner) => {
                Ok(StatementOutcome::Explain(self.explain_statement(inner)?))
            }
            Statement::ExplainAnalyze(inner) => {
                self.analyze_parsed_ctx(inner, shards, 0.0, 0.0, 0.0, ctx)
            }
            Statement::ShowStats(filter) => Ok(StatementOutcome::Stats(
                self.stats_snapshot(filter.as_deref()),
            )),
        }
    }

    /// Pre-scan cooperative deadline check for scoring queries (their
    /// single pass has no epoch boundaries to observe the token at, so
    /// an already-expired deadline is refused before the scan starts).
    fn check_deadline(&self, ctx: &QueryCtx) -> DanaResult<()> {
        Ok(ctx.cancel.check()?)
    }

    /// `EXPLAIN ANALYZE <stmt>`: executes the inner statement with an
    /// enabled span recorder and packages the lifecycle trace beside the
    /// outcome. The worker forwards its measured parse / admission-wait /
    /// lease-wait walls so the trace charges the server-side stages a
    /// serial run never sees.
    pub fn analyze_parsed(
        &self,
        inner: &Statement,
        shards: u16,
        parse_wall: f64,
        admission_wall: f64,
        lease_wall: f64,
    ) -> DanaResult<StatementOutcome> {
        self.analyze_parsed_ctx(
            inner,
            shards,
            parse_wall,
            admission_wall,
            lease_wall,
            &QueryCtx::unbounded(),
        )
    }

    /// [`SystemCore::analyze_parsed`] with the query's
    /// cancellation/retry context.
    #[allow(clippy::too_many_arguments)]
    pub fn analyze_parsed_ctx(
        &self,
        inner: &Statement,
        shards: u16,
        parse_wall: f64,
        admission_wall: f64,
        lease_wall: f64,
        ctx: &QueryCtx,
    ) -> DanaResult<StatementOutcome> {
        let rec = SpanRecorder::enabled();
        exec::begin_trace(&rec, parse_wall, admission_wall);
        rec.add_wall(exec::stage::LEASE, lease_wall);
        let start = std::time::Instant::now();
        let outcome = self.execute_parsed_ctx(inner, shards, &rec, ctx)?;
        let comparison = self.explain_statement(inner).ok();
        let total_sim = outcome.timing().map(|t| t.total_seconds).unwrap_or(0.0);
        let trace = exec::finish_trace(&rec, total_sim, start.elapsed().as_secs_f64())
            .expect("enabled recorder yields a trace");
        Ok(StatementOutcome::Analyze(Box::new(AnalyzeReport {
            outcome,
            trace,
            comparison,
        })))
    }

    /// Consistent (catalog entry, heap snapshot) for a table, under a read
    /// lock released before returning. All downstream work (compile,
    /// execution) must use this one snapshot so concurrent DDL cannot swap
    /// the heap mid-query. Stale derived tables are refused with a typed
    /// error.
    fn snapshot_table(&self, table: &str) -> DanaResult<(TableEntry, Arc<HeapFile>)> {
        let cat = self.read();
        let entry = cat.live_table(table)?.clone();
        let heap = cat.heap_arc(entry.heap_id)?;
        Ok((entry, heap))
    }

    fn compile_for(
        &self,
        spec: &dana_dsl::AlgoSpec,
        heap: &HeapFile,
        expected_tuples: u64,
        threads: Option<u32>,
    ) -> DanaResult<CompiledAccelerator> {
        let hdfg = translate(spec);
        let input = CompileInput {
            hdfg: &hdfg,
            fpga: self.fpga,
            layout: *heap.layout(),
            schema_columns: heap.schema().len(),
            expected_tuples,
        };
        Ok(match threads {
            Some(t) => compile_with_threads(&input, t)?,
            None => compile(&input)?,
        })
    }

    /// The concurrent query hot path: stream the snapshotted heap through
    /// the shared pool into the shared DEPLOY-time engine — no locks held
    /// while training runs, no per-query engine construction.
    #[allow(clippy::too_many_arguments)]
    fn run_on_heap(
        &self,
        acc: &CachedAccelerator,
        entry: &TableEntry,
        heap: &HeapFile,
        mode: ExecutionMode,
        rec: &SpanRecorder,
        ctx: &QueryCtx,
        scan: Option<&ScanSpec>,
    ) -> DanaResult<DanaReport> {
        let budget = acc.budget;
        let engine = &acc.engine;
        let design = engine.design();
        let heap_id = entry.heap_id;
        let access = exec::access_engine_for(heap, budget, &self.fpga);
        let state = exec::scan_state(entry, heap, scan)?;
        let mut store = ModelStore::new(design, exec::initial_models(design))?;
        let feed = FeedKind::for_mode(mode);
        let base =
            SharedPageStreamSource::new(&self.pool, &self.disk, heap, heap_id, &access, feed);
        let mut source = match &state {
            Some(s) => base.with_scan(s.clone()),
            None => base,
        };
        let plan = self.fault_plan();
        let guard = RunGuard::new(&ctx.cancel)
            .with_fault(plan.as_deref())
            .with_retry(ctx.retry);
        let run = run_training_guarded(engine, &mut source, &mut store, &guard)?;
        self.record_fault_events(&run.events, rec);
        let (stats, epoch_cycles) = (run.stats, run.epoch_cycles);
        let (access_stats, io_first) = source.into_stats();
        if let Some(s) = &state {
            exec::record_scan_metrics(&self.metrics, &access_stats, &s.sidecar, heap.tuple_count());
        }
        Ok(exec::assemble_report(
            mode,
            design,
            budget,
            &self.fpga,
            &self.cpu,
            &self.disk,
            self.pool.frames(),
            heap,
            RunArtifacts {
                engine_stats: stats,
                access_stats,
                io_first,
                epoch_cycles,
            },
            store,
            rec,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_dsl::zoo::{linear_regression, DenseParams};
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Schema, Tuple};

    fn small_core() -> SystemCore {
        SystemCore::new(SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: 8 * 1024,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        })
    }

    fn linreg_heap(n: usize, d: usize) -> HeapFile {
        let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.5).collect();
        let mut b =
            HeapFileBuilder::new(Schema::training(d), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 7 + i * 3) % 11) as f32 - 5.0) / 5.0)
                .collect();
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            b.insert(&Tuple::training(&x, y)).unwrap();
        }
        b.finish()
    }

    fn linreg_spec(d: usize) -> dana_dsl::AlgoSpec {
        linear_regression(DenseParams {
            n_features: d,
            learning_rate: 0.2,
            merge_coef: 8,
            epochs: 25,
        })
        .unwrap()
    }

    #[test]
    fn deploy_and_run_through_shared_core() {
        let core = small_core();
        core.create_table("t", linreg_heap(500, 8)).unwrap();
        let info = core.deploy(&linreg_spec(8), "t").unwrap();
        assert!(info.num_threads >= 1);
        assert_eq!(core.accelerator_names(), vec!["linearR".to_string()]);
        let report = core.run_udf("linearR", "t").unwrap();
        let w = report.dense_model();
        for (i, v) in w.iter().enumerate() {
            let truth = 0.3 * i as f32 - 0.5;
            assert!((v - truth).abs() < 0.05, "w[{i}] = {v}, truth {truth}");
        }
        assert_eq!(core.held_frames(), 0, "query must release every frame");
    }

    #[test]
    fn matches_single_threaded_dana_bit_for_bit() {
        let core = small_core();
        core.create_table("t", linreg_heap(800, 12)).unwrap();
        core.prewarm("t").unwrap();
        let spec = linreg_spec(12);
        core.deploy(&spec, "t").unwrap();
        let concurrent = core.run_udf("linearR", "t").unwrap();

        let mut db = dana::Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: 8 * 1024,
            },
            DiskModel::ssd(),
        );
        db.create_table("t", linreg_heap(800, 12)).unwrap();
        db.prewarm("t").unwrap();
        db.deploy(&spec, "t").unwrap();
        let serial = db.run_udf("linearR", "t").unwrap();

        assert_eq!(
            concurrent.models, serial.models,
            "paths must be bit-identical"
        );
        assert_eq!(concurrent.epochs_run, serial.epochs_run);
        assert_eq!(concurrent.engine.cycles, serial.engine.cycles);
    }

    #[test]
    fn drop_table_invalidates_and_run_is_typed_error() {
        let core = small_core();
        core.create_table("t", linreg_heap(300, 8)).unwrap();
        core.prewarm("t").unwrap();
        core.deploy(&linreg_spec(8), "t").unwrap();
        let summary = core.drop_table("t").unwrap();
        assert!(summary.pages_evicted > 0);
        assert_eq!(summary.invalidated_udfs, vec!["linearR".to_string()]);
        assert!(matches!(
            core.run_udf("linearR", "t"),
            Err(DanaError::StaleAccelerator { .. })
        ));
        assert_eq!(core.resident_pages(), 0);
    }

    #[test]
    fn concurrent_predict_matches_serial_bit_for_bit() {
        let core = small_core();
        core.create_table("t", linreg_heap(600, 10)).unwrap();
        let spec = linreg_spec(10);
        core.deploy(&spec, "t").unwrap();
        core.run_udf("linearR", "t").unwrap();
        let report = core.predict("linearR", "t", "p").unwrap();
        assert_eq!(report.rows_scored, 600);
        assert_eq!(core.held_frames(), 0, "scoring must release every frame");

        let mut db = dana::Dana::new(
            FpgaSpec::vu9p(),
            BufferPoolConfig {
                pool_bytes: 64 << 20,
                page_size: 8 * 1024,
            },
            DiskModel::ssd(),
        );
        db.create_table("t", linreg_heap(600, 10)).unwrap();
        db.deploy(&spec, "t").unwrap();
        db.run_udf("linearR", "t").unwrap();
        db.predict("linearR", "t", "p").unwrap();

        // Scan both materialized tables: bit-identical predictions.
        let concurrent: Vec<f32> = {
            let cat = core.read();
            let heap = cat.heap_arc(cat.table("p").unwrap().heap_id).unwrap();
            drop(cat);
            heap.scan_batch().unwrap().rows().map(|r| r[11]).collect()
        };
        let serial: Vec<f32> = db
            .catalog()
            .table_heap("p")
            .unwrap()
            .1
            .scan_batch()
            .unwrap()
            .rows()
            .map(|r| r[11])
            .collect();
        assert_eq!(concurrent, serial, "paths must be bit-identical");

        // Evaluate agrees too.
        let c = core.evaluate("linearR", "t", None).unwrap();
        let s = db.evaluate("linearR", "t", None).unwrap();
        assert_eq!(c.value, s.value);
        assert_eq!(c.metric, s.metric);
    }

    #[test]
    fn predict_without_training_is_typed_error() {
        let core = small_core();
        core.create_table("t", linreg_heap(100, 8)).unwrap();
        core.deploy(&linreg_spec(8), "t").unwrap();
        assert!(matches!(
            core.predict("linearR", "t", "p"),
            Err(DanaError::ModelNotTrained { .. })
        ));
        assert!(matches!(
            core.evaluate("linearR", "t", None),
            Err(DanaError::ModelNotTrained { .. })
        ));
    }

    #[test]
    fn drop_source_stales_prediction_table_in_concurrent_core() {
        let core = small_core();
        core.create_table("t", linreg_heap(300, 8)).unwrap();
        core.deploy(&linreg_spec(8), "t").unwrap();
        core.run_udf("linearR", "t").unwrap();
        core.predict("linearR", "t", "p").unwrap();
        core.prewarm("p").unwrap();

        let summary = core.drop_table("t").unwrap();
        assert_eq!(summary.stale_prediction_tables, vec!["p".to_string()]);
        assert_eq!(core.resident_pages(), 0, "stale pages must be evicted");
        // The stale table refuses snapshots with a typed error; cleanup
        // still works.
        assert!(matches!(
            core.prewarm("p"),
            Err(DanaError::Storage(
                dana_storage::StorageError::StaleDerivedTable { .. }
            ))
        ));
        assert!(core.drop_table("p").is_ok());
    }

    #[test]
    fn scoring_hint_prices_tuples_over_program_length() {
        let core = small_core();
        core.create_table("small", linreg_heap(200, 8)).unwrap();
        core.create_table("large", linreg_heap(4000, 8)).unwrap();
        core.deploy(&linreg_spec(8), "small").unwrap();
        let s = core.estimated_scoring_seconds("linearR", "small").unwrap();
        let l = core.estimated_scoring_seconds("linearR", "large").unwrap();
        assert!(s > 0.0);
        assert!(l > s, "more tuples must cost more: {l} vs {s}");
        // Scoring is one pass; training the same table runs 25 epochs.
        let train = core.estimated_seconds("linearR").unwrap();
        assert!(
            s < train,
            "a scoring pass must undercut training under SJF: {s} vs {train}"
        );
    }

    #[test]
    fn cpu_backend_matches_fpga_in_shared_core() {
        let core = small_core();
        core.create_table("t", linreg_heap(500, 8)).unwrap();
        core.deploy(&linreg_spec(8), "t").unwrap();

        let fpga = core.run_udf("linearR", "t").unwrap();
        let cpu = core.run_udf_cpu("linearR", "t").unwrap();
        assert_eq!(cpu.backend, BackendKind::Cpu);
        assert_eq!(cpu.models, fpga.models, "tiers must agree bit-for-bit");
        assert_eq!(cpu.engine.cycles, fpga.engine.cycles);
        assert_eq!(cpu.timing.total_seconds, 0.0, "nothing was simulated");
        assert!(cpu.timing.wall_seconds.is_some());
        assert_eq!(core.held_frames(), 0, "CPU tier must release every frame");

        // Scoring tiers agree too, and the CPU report keeps the units
        // separation.
        let p_fpga = core.predict("linearR", "t", "pf").unwrap();
        let p_cpu = core.predict_cpu("linearR", "t", "pc").unwrap();
        assert_eq!(p_cpu.backend, BackendKind::Cpu);
        assert_eq!(p_fpga.backend, BackendKind::Fpga);
        assert!(p_cpu.timing.wall_seconds.is_some());
        let scan = |t: &str| -> Vec<f32> {
            core.table_snapshot(t)
                .unwrap()
                .scan_batch()
                .unwrap()
                .rows()
                .map(|r| r[9])
                .collect()
        };
        assert_eq!(scan("pf"), scan("pc"), "predictions must be bit-identical");
        let e_fpga = core.evaluate("linearR", "t", None).unwrap();
        let e_cpu = core.evaluate_cpu("linearR", "t", None).unwrap();
        assert_eq!(e_cpu.value, e_fpga.value);
        assert_eq!(e_cpu.backend, BackendKind::Cpu);
    }

    #[test]
    fn advisor_routes_statements_in_shared_core() {
        let core = small_core();
        core.create_table("t", linreg_heap(300, 8)).unwrap();
        core.deploy(&linreg_spec(8), "t").unwrap();
        let stmt = dana::parse_statement("SELECT * FROM dana.linearR('t');").unwrap();

        // Default: always offload, and EXPLAIN prices both tiers.
        assert_eq!(core.resolve_backend(&stmt).unwrap(), BackendKind::Fpga);
        let cmp = core.explain_statement(&stmt).unwrap();
        assert_eq!(cmp.rows, 300);
        assert_eq!(cmp.options.len(), 2);
        assert_eq!(cmp.chosen, BackendKind::Fpga);

        // Break-even model on: 300 rows routes to the CPU tier.
        core.set_hardware_profile(core.hardware_profile().with_offload_threshold(None));
        assert_eq!(core.resolve_backend(&stmt).unwrap(), BackendKind::Cpu);
        // Forced backend still wins.
        let forced =
            dana::parse_statement("SELECT * FROM dana.linearR('t') WITH (backend = fpga);")
                .unwrap();
        assert_eq!(core.resolve_backend(&forced).unwrap(), BackendKind::Fpga);
        // Gang + cpu is the typed conflict.
        let conflict = dana::parse_statement(
            "SELECT * FROM dana.linearR('t') WITH (shards = 2, backend = cpu);",
        )
        .unwrap();
        assert!(matches!(
            core.resolve_backend(&conflict),
            Err(DanaError::Query(_))
        ));
    }

    #[test]
    fn estimated_seconds_orders_small_before_large() {
        let core = small_core();
        core.create_table("small", linreg_heap(200, 8)).unwrap();
        core.create_table("large", linreg_heap(3000, 8)).unwrap();
        let mut small_spec = linreg_spec(8);
        small_spec.name = "smallR".into();
        let mut large_spec = linreg_spec(8);
        large_spec.name = "largeR".into();
        core.deploy(&small_spec, "small").unwrap();
        core.deploy(&large_spec, "large").unwrap();
        let s = core.estimated_seconds("smallR").unwrap();
        let l = core.estimated_seconds("largeR").unwrap();
        assert!(s > 0.0 && l > 0.0);
        assert!(l > s, "more tuples must cost more: {l} vs {s}");
    }
}
