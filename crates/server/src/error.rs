//! Serving-tier errors: everything a client can get back from a request.

use std::fmt;

use dana::DanaError;
use dana_storage::StorageError;

use crate::session::SessionId;

/// Errors surfaced by [`crate::DanaServer`].
#[derive(Debug)]
pub enum ServerError {
    /// The query itself failed inside the DAnA core (compile, storage,
    /// execution, stale accelerator, ...).
    Dana(DanaError),
    /// Admission control refused the query: the queue is at capacity.
    Overloaded { queued: usize, limit: usize },
    /// The session id was never opened (or already closed).
    UnknownSession(SessionId),
    /// The server is shutting down; no new work is admitted.
    ShuttingDown,
    /// The worker executing the query disappeared before replying (it
    /// panicked); the query's outcome is unknown.
    WorkerLost,
    /// The query's dispatch panicked; the worker caught the panic
    /// (`catch_unwind`) and kept serving. The payload is the panic
    /// message, if it was a string.
    QueryPanicked(String),
    /// A typed-accessor mismatch: the reply holds a different response
    /// kind than the accessor asked for.
    UnexpectedReply { expected: &'static str, got: String },
}

impl ServerError {
    /// Whether this error is the typed deadline signal — from admission
    /// shedding or from cooperative cancellation during execution.
    pub fn is_deadline_exceeded(&self) -> bool {
        matches!(self, ServerError::Dana(e) if e.is_deadline_exceeded())
    }
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Dana(e) => write!(f, "query failed: {e}"),
            ServerError::Overloaded { queued, limit } => {
                write!(f, "admission refused: {queued} queued (limit {limit})")
            }
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::ShuttingDown => write!(f, "server is shutting down"),
            ServerError::WorkerLost => write!(f, "worker lost before replying"),
            ServerError::QueryPanicked(msg) => {
                write!(f, "query dispatch panicked (worker recovered): {msg}")
            }
            ServerError::UnexpectedReply { expected, got } => {
                write!(f, "expected a {expected} reply, got {got}")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<DanaError> for ServerError {
    fn from(e: DanaError) -> ServerError {
        ServerError::Dana(e)
    }
}

impl From<StorageError> for ServerError {
    fn from(e: StorageError) -> ServerError {
        ServerError::Dana(DanaError::Storage(e))
    }
}

pub type ServerResult<T> = Result<T, ServerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: ServerError = DanaError::Query("bad".into()).into();
        assert!(e.to_string().contains("query failed"));
        let e: ServerError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e = ServerError::Overloaded {
            queued: 10,
            limit: 10,
        };
        assert!(e.to_string().contains("admission refused"));
    }
}
