//! Reference trainers for the paper's four algorithms (§2.1, Table 3).
//!
//! Semantics match the DSL zoo exactly (same update rules, same batched
//! merge): the integration tests hold the FPGA engine's trained models to
//! these references.

use dana_dsl::zoo::Algorithm;
use dana_storage::TupleBatch;

use crate::linalg::{axpy, dot, sigmoid};

/// Training hyper-parameters.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    pub algorithm: Algorithm,
    pub learning_rate: f32,
    /// Batch size: gradients of a batch are summed with `lr/batch` scaling
    /// (identical to the DSL's merge-coefficient semantics).
    pub batch: usize,
    pub epochs: u32,
    /// LRMF factorization rank (ignored by the dense algorithms).
    pub rank: usize,
    /// LRMF matrix shape when known from the catalog; otherwise inferred
    /// from the data's maximum indices.
    pub lrmf_dims: Option<(usize, usize)>,
}

impl Default for TrainConfig {
    fn default() -> TrainConfig {
        TrainConfig {
            algorithm: Algorithm::Linear,
            learning_rate: 0.1,
            batch: 8,
            epochs: 1,
            rank: 10,
            lrmf_dims: None,
        }
    }
}

/// A dense weight vector.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseModel(pub Vec<f32>);

/// LRMF factors: `L` is rows×rank, `R` is cols×rank (row-major).
#[derive(Debug, Clone, PartialEq)]
pub struct LrmfModel {
    pub l: Vec<f32>,
    pub r: Vec<f32>,
    pub rows: usize,
    pub cols: usize,
    pub rank: usize,
}

/// Deterministic small non-zero factor initialization: SGD on an all-zero
/// factorization cannot escape the saddle point. Shared by every LRMF
/// runner (software references and the FPGA engine's model store) so their
/// trained factors are comparable.
pub fn default_lrmf_init(n: usize) -> Vec<f32> {
    (0..n)
        .map(|i| 0.1 + 0.01 * ((i * 2654435761usize) % 97) as f32 / 97.0)
        .collect()
}

impl LrmfModel {
    pub fn zeroed(rows: usize, cols: usize, rank: usize) -> LrmfModel {
        LrmfModel {
            l: default_lrmf_init(rows * rank),
            r: default_lrmf_init(cols * rank),
            rows,
            cols,
            rank,
        }
    }

    pub fn predict(&self, i: usize, j: usize) -> f32 {
        dot(
            &self.l[i * self.rank..(i + 1) * self.rank],
            &self.r[j * self.rank..(j + 1) * self.rank],
        )
    }
}

/// Result of a reference training run.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainedModel {
    Dense(DenseModel),
    Lrmf(LrmfModel),
}

impl TrainedModel {
    pub fn as_dense(&self) -> &DenseModel {
        match self {
            TrainedModel::Dense(m) => m,
            TrainedModel::Lrmf(_) => panic!("expected dense model"),
        }
    }

    pub fn as_lrmf(&self) -> &LrmfModel {
        match self {
            TrainedModel::Lrmf(m) => m,
            TrainedModel::Dense(_) => panic!("expected LRMF model"),
        }
    }
}

/// Trains the reference model over a flat batch. Rows hold
/// features-then-label for the dense algorithms, or `(i, j, rating)` for
/// LRMF.
pub fn train_reference(tuples: &TupleBatch, cfg: &TrainConfig) -> TrainedModel {
    match cfg.algorithm {
        Algorithm::Linear => TrainedModel::Dense(train_dense(tuples, cfg, grad_linear)),
        Algorithm::Logistic => TrainedModel::Dense(train_dense(tuples, cfg, grad_logistic)),
        Algorithm::Svm => TrainedModel::Dense(train_dense(tuples, cfg, grad_svm)),
        Algorithm::Lrmf => TrainedModel::Lrmf(train_lrmf(tuples, cfg)),
    }
}

/// Per-tuple gradient contribution: adds the gradient of one example into
/// `g` and returns nothing. `sign = +1` means the model step is `w -= lr·g`.
type GradFn = fn(w: &[f32], x: &[f32], y: f32, g: &mut [f32]);

fn grad_linear(w: &[f32], x: &[f32], y: f32, g: &mut [f32]) {
    let er = dot(w, x) - y;
    axpy(er, x, g);
}

fn grad_logistic(w: &[f32], x: &[f32], y: f32, g: &mut [f32]) {
    let er = sigmoid(dot(w, x)) - y;
    axpy(er, x, g);
}

fn grad_svm(w: &[f32], x: &[f32], y: f32, g: &mut [f32]) {
    // Hinge sub-gradient: −y·x inside the margin (labels ±1).
    if y * dot(w, x) < 1.0 {
        axpy(-y, x, g);
    }
}

fn train_dense(tuples: &TupleBatch, cfg: &TrainConfig, grad: GradFn) -> DenseModel {
    assert!(!tuples.is_empty(), "empty training set");
    let width = tuples.width();
    let d = width - 1;
    let mut w = vec![0.0f32; d];
    let step = cfg.learning_rate / cfg.batch as f32;
    let mut g = vec![0.0f32; d];
    let batch_values = width * cfg.batch.max(1);
    for _ in 0..cfg.epochs {
        for batch in tuples.as_slice().chunks(batch_values) {
            g.iter_mut().for_each(|v| *v = 0.0);
            for t in batch.chunks_exact(width) {
                grad(&w, &t[..d], t[d], &mut g);
            }
            axpy(-step, &g, &mut w);
        }
    }
    DenseModel(w)
}

fn train_lrmf(tuples: &TupleBatch, cfg: &TrainConfig) -> LrmfModel {
    assert!(!tuples.is_empty(), "empty training set");
    let (rows, cols) = cfg.lrmf_dims.unwrap_or_else(|| {
        (
            tuples.rows().map(|t| t[0] as usize).max().unwrap_or(0) + 1,
            tuples.rows().map(|t| t[1] as usize).max().unwrap_or(0) + 1,
        )
    });
    let mut m = LrmfModel::zeroed(rows, cols, cfg.rank);
    let lr = cfg.learning_rate;
    for _ in 0..cfg.epochs {
        for t in tuples.rows() {
            let (i, j, y) = (t[0] as usize, t[1] as usize, t[2]);
            let e = m.predict(i, j) - y;
            let lbase = i * cfg.rank;
            let rbase = j * cfg.rank;
            for k in 0..cfg.rank {
                let lv = m.l[lbase + k];
                let rv = m.r[rbase + k];
                m.l[lbase + k] = lv - lr * e * rv;
                m.r[rbase + k] = rv - lr * e * lv;
            }
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn linear_tuples(n: usize, d: usize) -> TupleBatch {
        let truth: Vec<f32> = (0..d).map(|i| (i as f32) * 0.3 - 0.5).collect();
        let mut batch = TupleBatch::with_capacity(d + 1, n);
        for k in 0..n {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 13 + i * 7) % 17) as f32 - 8.0) / 8.0)
                .collect();
            let mut row = batch.start_row();
            for v in &x {
                row.push(*v);
            }
            row.push(dot(&x, &truth));
            row.finish();
        }
        batch
    }

    #[test]
    fn linear_regression_recovers_truth() {
        let tuples = linear_tuples(200, 5);
        let cfg = TrainConfig {
            epochs: 60,
            learning_rate: 0.3,
            ..Default::default()
        };
        let m = train_reference(&tuples, &cfg);
        let w = &m.as_dense().0;
        let truth: Vec<f32> = (0..5).map(|i| (i as f32) * 0.3 - 0.5).collect();
        for (a, b) in w.iter().zip(&truth) {
            assert!((a - b).abs() < 0.05, "{w:?} vs {truth:?}");
        }
    }

    #[test]
    fn logistic_separates_classes() {
        // Class = x0 > 0.
        let tuples = TupleBatch::from_rows(
            3,
            (0..300).map(|k| {
                let x0 = ((k % 21) as f32 - 10.0) / 10.0;
                let x1 = ((k % 13) as f32 - 6.0) / 6.0;
                [x0, x1, if x0 > 0.0 { 1.0 } else { 0.0 }]
            }),
        );
        let cfg = TrainConfig {
            algorithm: Algorithm::Logistic,
            epochs: 100,
            learning_rate: 0.8,
            ..Default::default()
        };
        let m = train_reference(&tuples, &cfg);
        let acc = metrics::classification_accuracy(m.as_dense(), &tuples, false).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn svm_separates_classes() {
        // Labels ±1, margin on x0.
        let tuples = TupleBatch::from_rows(
            3,
            (0..300).map(|k| {
                let x0 = ((k % 21) as f32 - 10.0) / 5.0;
                let x1 = ((k % 7) as f32 - 3.0) / 3.0;
                [x0, x1, if x0 > 0.0 { 1.0 } else { -1.0 }]
            }),
        );
        let cfg = TrainConfig {
            algorithm: Algorithm::Svm,
            epochs: 60,
            learning_rate: 0.2,
            ..Default::default()
        };
        let m = train_reference(&tuples, &cfg);
        let acc = metrics::classification_accuracy(m.as_dense(), &tuples, true).unwrap();
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn lrmf_reduces_rmse() {
        // Ratings from a planted rank-2 structure.
        let (rows, cols) = (20usize, 15usize);
        let tuples = TupleBatch::from_rows(
            3,
            (0..rows).flat_map(|i| {
                (0..cols).map(move |j| {
                    let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
                    [i as f32, j as f32, r]
                })
            }),
        );
        let cfg = TrainConfig {
            algorithm: Algorithm::Lrmf,
            epochs: 40,
            learning_rate: 0.03,
            rank: 6,
            ..Default::default()
        };
        let before = metrics::lrmf_rmse(&LrmfModel::zeroed(rows, cols, 6), &tuples).unwrap();
        let m = train_reference(&tuples, &cfg);
        let after = metrics::lrmf_rmse(m.as_lrmf(), &tuples).unwrap();
        assert!(after < before * 0.5, "rmse {before} → {after}");
    }

    #[test]
    fn batch_size_one_is_pure_sgd() {
        let tuples = linear_tuples(64, 3);
        let b1 = train_reference(
            &tuples,
            &TrainConfig {
                batch: 1,
                epochs: 3,
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        let b8 = train_reference(
            &tuples,
            &TrainConfig {
                batch: 8,
                epochs: 3,
                learning_rate: 0.1,
                ..Default::default()
            },
        );
        // Different optimizers: both converge but produce different weights.
        assert_ne!(b1.as_dense().0, b8.as_dense().0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_panics() {
        let _ = train_reference(&TupleBatch::new(3), &TrainConfig::default());
    }
}
