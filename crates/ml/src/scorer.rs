//! The CPU reference scorer: per-tuple forward passes for trained models.
//!
//! This is the inference tier's ground truth. The accelerator's scoring
//! path (the `dana-infer` SoA lockstep executor) must produce predictions
//! **bit-identical** to these functions for every tuple — the differential
//! suite holds it there across execution modes and thread counts. To make
//! that equality structural rather than accidental, both sides compute
//! each prediction with the same f32 operations in the same order:
//! a sequential [`dot`] over the feature axis, then the link function.

use dana_storage::TupleBatch;

use crate::algorithms::{DenseModel, LrmfModel};
use crate::linalg::{dot, sigmoid};

/// The link function applied to a dense model's raw score `w·x`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Link {
    /// Linear regression / SVM: the prediction is the raw score (for SVM,
    /// the signed margin — its sign is the predicted class).
    Identity,
    /// Logistic regression: `σ(w·x)`, the class-1 probability.
    Sigmoid,
}

impl Link {
    pub fn apply(&self, score: f32) -> f32 {
        match self {
            Link::Identity => score,
            Link::Sigmoid => sigmoid(score),
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Link::Identity => "identity",
            Link::Sigmoid => "sigmoid",
        }
    }
}

/// Scores one row under a dense model: `link(w·x)` over the first
/// `w.len()` columns (trailing columns — label, an earlier prediction —
/// are ignored).
pub fn score_dense_row(weights: &[f32], row: &[f32], link: Link) -> f32 {
    link.apply(dot(weights, &row[..weights.len()]))
}

/// Scores one `(i, j, …)` rating row under an LRMF factorization:
/// `L[i]·R[j]`. Index columns convert exactly as [`crate::metrics`] does.
pub fn score_lrmf_row(model: &LrmfModel, row: &[f32]) -> f32 {
    model.predict(row[0] as usize, row[1] as usize)
}

/// Per-tuple reference scoring of a whole batch (dense models).
pub fn score_dense(model: &DenseModel, tuples: &TupleBatch, link: Link) -> Vec<f32> {
    tuples
        .rows()
        .map(|t| score_dense_row(&model.0, t, link))
        .collect()
}

/// Per-tuple reference scoring of a whole batch (LRMF).
pub fn score_lrmf(model: &LrmfModel, tuples: &TupleBatch) -> Vec<f32> {
    tuples.rows().map(|t| score_lrmf_row(model, t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_scoring_matches_manual_dot() {
        let m = DenseModel(vec![2.0, -1.0]);
        let tuples = TupleBatch::from_rows(3, [[1.0, 1.0, 9.0], [0.5, 0.0, 9.0]]);
        let p = score_dense(&m, &tuples, Link::Identity);
        assert_eq!(p, vec![1.0, 1.0]);
        let p = score_dense(&m, &tuples, Link::Sigmoid);
        assert_eq!(p, vec![sigmoid(1.0), sigmoid(1.0)]);
    }

    #[test]
    fn trailing_columns_are_ignored() {
        // Width d+2 (a materialized prediction table): same scores.
        let m = DenseModel(vec![1.0, 1.0]);
        let with_label = TupleBatch::from_rows(3, [[1.0, 2.0, 7.0]]);
        let with_pred = TupleBatch::from_rows(4, [[1.0, 2.0, 7.0, 3.0]]);
        assert_eq!(
            score_dense(&m, &with_label, Link::Identity),
            score_dense(&m, &with_pred, Link::Identity)
        );
    }

    #[test]
    fn lrmf_scoring_matches_predict() {
        let m = LrmfModel::zeroed(4, 3, 2);
        let tuples = TupleBatch::from_rows(3, [[2.0, 1.0, 0.0], [0.0, 2.0, 0.0]]);
        let p = score_lrmf(&m, &tuples);
        assert_eq!(p, vec![m.predict(2, 1), m.predict(0, 2)]);
    }

    #[test]
    fn link_names() {
        assert_eq!(Link::Identity.name(), "identity");
        assert_eq!(Link::Sigmoid.name(), "sigmoid");
        assert_eq!(Link::Identity.apply(-2.5), -2.5);
    }
}
