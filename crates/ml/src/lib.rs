//! Reference ML algorithms and the software baselines of the paper's
//! evaluation (§7).
//!
//! DAnA is compared against:
//!
//! * **MADlib + PostgreSQL** — single-threaded in-RDBMS training over the
//!   buffer pool ([`madlib`]);
//! * **MADlib + Greenplum** — the same, partitioned across N segments with
//!   per-epoch model averaging ([`greenplum`], Fig. 13);
//! * **Liblinear / DimmWitted** — optimized external libraries that must
//!   first export and reformat the data ([`external`], Fig. 15).
//!
//! All baselines *functionally train real models* (the math in
//! [`algorithms`]) over the same storage substrate, while their simulated
//! runtimes come from the calibrated cost model in [`cpu`] (constants
//! documented against the paper's testbed: 4-core i7-6700 @ 3.40 GHz,
//! 32 GB RAM, SATA SSD).

pub mod algorithms;
pub mod cpu;
pub mod external;
pub mod greenplum;
pub mod linalg;
pub mod madlib;
pub mod metrics;
pub mod scorer;

pub use algorithms::{
    default_lrmf_init, train_reference, DenseModel, LrmfModel, TrainConfig, TrainedModel,
};
pub use cpu::CpuModel;
pub use dana_dsl::zoo::Algorithm;
pub use external::{ExternalExecutor, ExternalLibrary, ExternalReport};
pub use greenplum::{GreenplumExecutor, GreenplumReport};
pub use madlib::{MadlibExecutor, MadlibReport};
pub use metrics::{MetricsError, MetricsResult};
pub use scorer::{score_dense, score_lrmf, Link};
