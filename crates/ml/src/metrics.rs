//! Loss and accuracy metrics for verifying trained models.

use dana_storage::TupleBatch;

use crate::algorithms::{DenseModel, LrmfModel};
use crate::linalg::{dot, sigmoid};

/// Mean squared error of a linear model over `features…, label` tuples.
pub fn mse(model: &DenseModel, tuples: &TupleBatch) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| {
            let e = (dot(&model.0, &t[..d]) - t[d]) as f64;
            e * e
        })
        .sum();
    sum / tuples.len() as f64
}

/// Logistic (cross-entropy) loss, labels in {0, 1}.
pub fn log_loss(model: &DenseModel, tuples: &TupleBatch) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| {
            let p = (sigmoid(dot(&model.0, &t[..d])) as f64).clamp(1e-9, 1.0 - 1e-9);
            let y = t[d] as f64;
            -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
        })
        .sum();
    sum / tuples.len() as f64
}

/// Average hinge loss, labels in {−1, +1}.
pub fn hinge_loss(model: &DenseModel, tuples: &TupleBatch) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| (1.0 - (t[d] * dot(&model.0, &t[..d]))).max(0.0) as f64)
        .sum();
    sum / tuples.len() as f64
}

/// Classification accuracy. `signed`: labels ±1 (SVM) vs {0,1} (logistic).
pub fn classification_accuracy(model: &DenseModel, tuples: &TupleBatch, signed: bool) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let d = model.0.len();
    let correct = tuples
        .rows()
        .filter(|t: &&[f32]| {
            let s = dot(&model.0, &t[..d]);
            if signed {
                (s > 0.0) == (t[d] > 0.0)
            } else {
                (s > 0.0) == (t[d] > 0.5)
            }
        })
        .count();
    correct as f64 / tuples.len() as f64
}

/// Root-mean-square rating error for LRMF over `(i, j, rating)` tuples.
pub fn lrmf_rmse(model: &LrmfModel, tuples: &TupleBatch) -> f64 {
    if tuples.is_empty() {
        return 0.0;
    }
    let sum: f64 = tuples
        .rows()
        .map(|t| {
            let e = (model.predict(t[0] as usize, t[1] as usize) - t[2]) as f64;
            e * e
        })
        .sum();
    (sum / tuples.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_exact_model_is_zero() {
        let m = DenseModel(vec![2.0, -1.0]);
        let tuples = TupleBatch::from_rows(3, [[1.0, 1.0, 1.0], [0.5, 0.0, 1.0]]);
        assert!(mse(&m, &tuples) < 1e-12);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let m = DenseModel(vec![1.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 1.0], [-1.0, -1.0], [2.0, -1.0]]);
        let acc = classification_accuracy(&m, &tuples, true);
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hinge_zero_outside_margin() {
        let m = DenseModel(vec![10.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 1.0]]); // y·wx = 10 ≥ 1
        assert_eq!(hinge_loss(&m, &tuples), 0.0);
    }

    #[test]
    fn log_loss_is_finite_for_confident_wrong_predictions() {
        let m = DenseModel(vec![100.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 0.0]]); // confidently wrong
        let l = log_loss(&m, &tuples);
        assert!(l.is_finite() && l > 5.0);
    }

    #[test]
    fn empty_inputs_are_zero() {
        let m = DenseModel(vec![1.0]);
        let empty = TupleBatch::new(2);
        assert_eq!(mse(&m, &empty), 0.0);
        assert_eq!(log_loss(&m, &empty), 0.0);
        assert_eq!(hinge_loss(&m, &empty), 0.0);
        assert_eq!(classification_accuracy(&m, &empty, true), 0.0);
    }
}
