//! Loss and accuracy metrics for verifying trained models.
//!
//! Each metric exists in two forms that share one numeric path:
//!
//! * a **per-row term** function (`squared_error_term`, `log_loss_term`,
//!   …) — the single source of truth for the row's f64 contribution;
//! * a **whole-batch** metric folding those terms left-to-right over the
//!   rows and normalizing once at the end.
//!
//! The in-database EVALUATE pipeline accumulates the same terms in the
//! same row order as it streams pages, so its streamed metric is
//! bit-identical to calling the batch form on the materialized table.
//!
//! Numeric hardening: probabilities inside [`log_loss`] are clamped away
//! from 0/1 (an adversarially confident model saturates the f32 sigmoid to
//! exactly 0.0 or 1.0, and `ln(0) = -inf` would poison the mean), and
//! empty batches are a typed [`MetricsError::EmptyBatch`] instead of a
//! silent sentinel value.

use std::fmt;

use dana_storage::TupleBatch;

use crate::algorithms::{DenseModel, LrmfModel};
use crate::linalg::{dot, sigmoid};

/// Probability floor/ceiling inside [`log_loss`]: `p` is clamped to
/// `[LOG_LOSS_EPS, 1 − LOG_LOSS_EPS]` before the logarithms.
pub const LOG_LOSS_EPS: f64 = 1e-9;

/// Errors raised by the metric functions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// A mean over zero tuples is undefined; returning NaN (or a fake 0)
    /// would silently corrupt downstream comparisons.
    EmptyBatch { metric: &'static str },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::EmptyBatch { metric } => {
                write!(f, "{metric} is undefined over an empty batch")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

pub type MetricsResult<T> = Result<T, MetricsError>;

fn non_empty(tuples: &TupleBatch, metric: &'static str) -> MetricsResult<()> {
    if tuples.is_empty() {
        return Err(MetricsError::EmptyBatch { metric });
    }
    Ok(())
}

// ---- per-row terms (shared with the streaming EVALUATE accumulator) ----

/// Squared error of one prediction (MSE / RMSE term).
pub fn squared_error_term(prediction: f32, label: f32) -> f64 {
    let e = (prediction - label) as f64;
    e * e
}

/// Cross-entropy of one predicted probability against a {0, 1} label,
/// with the probability clamped away from 0/1.
pub fn log_loss_term(probability: f32, label: f32) -> f64 {
    let p = (probability as f64).clamp(LOG_LOSS_EPS, 1.0 - LOG_LOSS_EPS);
    let y = label as f64;
    -(y * p.ln() + (1.0 - y) * (1.0 - p).ln())
}

/// Hinge loss of one raw margin score against a ±1 label.
pub fn hinge_loss_term(score: f32, label: f32) -> f64 {
    (1.0 - label * score).max(0.0) as f64
}

/// Whether one raw (pre-link) score classifies its label correctly.
/// `signed`: labels ±1 (SVM) vs {0, 1} (logistic).
pub fn classified_correctly(score: f32, label: f32, signed: bool) -> bool {
    if signed {
        (score > 0.0) == (label > 0.0)
    } else {
        (score > 0.0) == (label > 0.5)
    }
}

// ---- whole-batch metrics ------------------------------------------------

/// Mean squared error of a linear model over `features…, label` tuples.
pub fn mse(model: &DenseModel, tuples: &TupleBatch) -> MetricsResult<f64> {
    non_empty(tuples, "mse")?;
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| squared_error_term(dot(&model.0, &t[..d]), t[d]))
        .sum();
    Ok(sum / tuples.len() as f64)
}

/// Logistic (cross-entropy) loss, labels in {0, 1}.
pub fn log_loss(model: &DenseModel, tuples: &TupleBatch) -> MetricsResult<f64> {
    non_empty(tuples, "log_loss")?;
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| log_loss_term(sigmoid(dot(&model.0, &t[..d])), t[d]))
        .sum();
    Ok(sum / tuples.len() as f64)
}

/// Average hinge loss, labels in {−1, +1}.
pub fn hinge_loss(model: &DenseModel, tuples: &TupleBatch) -> MetricsResult<f64> {
    non_empty(tuples, "hinge_loss")?;
    let d = model.0.len();
    let sum: f64 = tuples
        .rows()
        .map(|t| hinge_loss_term(dot(&model.0, &t[..d]), t[d]))
        .sum();
    Ok(sum / tuples.len() as f64)
}

/// Classification accuracy. `signed`: labels ±1 (SVM) vs {0,1} (logistic).
pub fn classification_accuracy(
    model: &DenseModel,
    tuples: &TupleBatch,
    signed: bool,
) -> MetricsResult<f64> {
    non_empty(tuples, "classification_accuracy")?;
    let d = model.0.len();
    let correct = tuples
        .rows()
        .filter(|t: &&[f32]| classified_correctly(dot(&model.0, &t[..d]), t[d], signed))
        .count();
    Ok(correct as f64 / tuples.len() as f64)
}

/// Root-mean-square rating error for LRMF over `(i, j, rating)` tuples.
pub fn lrmf_rmse(model: &LrmfModel, tuples: &TupleBatch) -> MetricsResult<f64> {
    non_empty(tuples, "lrmf_rmse")?;
    let sum: f64 = tuples
        .rows()
        .map(|t| squared_error_term(model.predict(t[0] as usize, t[1] as usize), t[2]))
        .sum();
    Ok((sum / tuples.len() as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_exact_model_is_zero() {
        let m = DenseModel(vec![2.0, -1.0]);
        let tuples = TupleBatch::from_rows(3, [[1.0, 1.0, 1.0], [0.5, 0.0, 1.0]]);
        assert!(mse(&m, &tuples).unwrap() < 1e-12);
    }

    #[test]
    fn accuracy_counts_correct_predictions() {
        let m = DenseModel(vec![1.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 1.0], [-1.0, -1.0], [2.0, -1.0]]);
        let acc = classification_accuracy(&m, &tuples, true).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn hinge_zero_outside_margin() {
        let m = DenseModel(vec![10.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 1.0]]); // y·wx = 10 ≥ 1
        assert_eq!(hinge_loss(&m, &tuples).unwrap(), 0.0);
    }

    #[test]
    fn log_loss_is_finite_for_confident_wrong_predictions() {
        let m = DenseModel(vec![100.0]);
        let tuples = TupleBatch::from_rows(2, [[1.0, 0.0]]); // confidently wrong
        let l = log_loss(&m, &tuples).unwrap();
        assert!(l.is_finite() && l > 5.0);
    }

    #[test]
    fn log_loss_clamps_saturated_probabilities() {
        // An adversarially confident model saturates the f32 sigmoid to
        // exactly 1.0 (and 0.0): without the clamp the wrong-label terms
        // would be ln(0) = -inf.
        assert_eq!(sigmoid(1e6), 1.0, "test premise: sigmoid saturates");
        assert_eq!(sigmoid(-1e6), 0.0);
        let m = DenseModel(vec![1e6]);
        let tuples = TupleBatch::from_rows(
            2,
            [[1.0, 0.0], [-1.0, 1.0]], // both confidently wrong
        );
        let l = log_loss(&m, &tuples).unwrap();
        assert!(l.is_finite(), "clamp must keep the loss finite, got {l}");
        // The clamped worst case is exactly −ln(eps).
        assert!((l - -LOG_LOSS_EPS.ln()).abs() < 1e-6, "loss {l}");
        // And the term helpers clamp the raw 0/1 edges directly.
        assert!(log_loss_term(0.0, 1.0).is_finite());
        assert!(log_loss_term(1.0, 0.0).is_finite());
    }

    #[test]
    fn empty_batches_are_typed_errors() {
        let m = DenseModel(vec![1.0]);
        let empty = TupleBatch::new(2);
        for (name, result) in [
            ("mse", mse(&m, &empty)),
            ("log_loss", log_loss(&m, &empty)),
            ("hinge_loss", hinge_loss(&m, &empty)),
            (
                "classification_accuracy",
                classification_accuracy(&m, &empty, true),
            ),
            (
                "lrmf_rmse",
                lrmf_rmse(&LrmfModel::zeroed(2, 2, 2), &TupleBatch::new(3)),
            ),
        ] {
            match result {
                Err(MetricsError::EmptyBatch { metric }) => assert_eq!(metric, name),
                other => panic!("{name}: expected EmptyBatch, got {other:?}"),
            }
        }
        let e = MetricsError::EmptyBatch { metric: "mse" };
        assert!(e.to_string().contains("empty batch"));
    }
}
