//! External-library baselines: Liblinear- and DimmWitted-class tools
//! (§7.3, Fig. 15).
//!
//! "For these alternatives, if training data is stored in the database,
//! there is an overhead to extract, transform, and supply the data in
//! accordance to each of their requirements." The end-to-end pipeline is
//! therefore **export** (COPY the table out of PostgreSQL as text),
//! **transform** (parse into the library's in-memory format), and
//! **compute** (the library's multicore solver). Fig. 15a measures export
//! at 45–86 % of end-to-end time — the phase DAnA's Striders eliminate.
//!
//! Solver-efficiency notes (constants below, fit to Fig. 15b): the
//! libraries skip MADlib's per-tuple UDF machinery, so their *compute* wins
//! wherever MADlib is overhead-bound; but their SVM solvers (dual
//! coordinate descent with many passes) are 18–22× *slower* than MADlib's
//! IGD at equal hyper-parameters.

use dana_dsl::zoo::Algorithm;
use dana_storage::TupleBatch;

use crate::algorithms::{train_reference, TrainConfig, TrainedModel};
use crate::cpu::{CpuModel, Seconds};

/// Which external tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExternalLibrary {
    /// Liblinear-Multicore: logistic regression and SVM only [40].
    Liblinear,
    /// DimmWitted: SVM, logistic, linear regression (and more) [41].
    DimmWitted,
}

impl ExternalLibrary {
    pub fn name(&self) -> &'static str {
        match self {
            ExternalLibrary::Liblinear => "Liblinear",
            ExternalLibrary::DimmWitted => "DimmWitted",
        }
    }

    /// Algorithm support matrix (§7.3: "Liblinear supports Logistic
    /// Regression and SVM, and DimmWitted supports SVM, Logistic
    /// Regression, Linear Regression, …"; neither covers LRMF).
    pub fn supports(&self, algo: Algorithm) -> bool {
        match self {
            ExternalLibrary::Liblinear => {
                matches!(algo, Algorithm::Logistic | Algorithm::Svm)
            }
            ExternalLibrary::DimmWitted => {
                matches!(
                    algo,
                    Algorithm::Logistic | Algorithm::Svm | Algorithm::Linear
                )
            }
        }
    }

    /// Effective parallel cores the library sustains (the paper ran 2–16
    /// threads on 4 physical cores and kept the best).
    fn effective_cores(&self) -> f64 {
        match self {
            ExternalLibrary::Liblinear => 3.4,
            ExternalLibrary::DimmWitted => 3.0,
        }
    }

    /// Solver work multiplier relative to one IGD epoch at equal
    /// hyper-parameters (the paper fixes tolerance/optimizer and compares
    /// one-epoch runtimes, §7.3).
    fn solver_multiplier(&self, algo: Algorithm) -> f64 {
        match (self, algo) {
            // Dual coordinate descent SVM: the libraries run orders of
            // magnitude more solver work than one IGD epoch at the paper's
            // fixed hyper-parameters (Fig. 15b/15c measure them at ~0.1×
            // MADlib end-to-end); fitted multipliers reproduce that band.
            (ExternalLibrary::Liblinear, Algorithm::Svm) => 5_000.0,
            (ExternalLibrary::DimmWitted, Algorithm::Svm) => 6_000.0,
            // Logistic/linear: tight native loops, no interpreter.
            (ExternalLibrary::Liblinear, Algorithm::Logistic) => 1.0,
            (ExternalLibrary::DimmWitted, Algorithm::Logistic) => 2.0,
            (ExternalLibrary::DimmWitted, Algorithm::Linear) => 1.0,
            _ => f64::INFINITY,
        }
    }
}

/// Phase timing + result (Fig. 15a's three bars).
#[derive(Debug, Clone)]
pub struct ExternalReport {
    pub library: ExternalLibrary,
    /// `COPY table TO STDOUT` + writing the text file.
    pub export_seconds: Seconds,
    /// Parsing text into the library's format.
    pub transform_seconds: Seconds,
    /// The solver itself (multicore).
    pub compute_seconds: Seconds,
    pub model: TrainedModel,
}

impl ExternalReport {
    pub fn total_seconds(&self) -> Seconds {
        self.export_seconds + self.transform_seconds + self.compute_seconds
    }

    /// Phase fractions (export, transform, compute) — Fig. 15a's stacked
    /// percentages.
    pub fn phase_fractions(&self) -> (f64, f64, f64) {
        let t = self.total_seconds();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.export_seconds / t,
            self.transform_seconds / t,
            self.compute_seconds / t,
        )
    }
}

/// Text formatting cost per value during COPY-out (float → decimal string
/// through PostgreSQL's output functions).
const EXPORT_S_PER_VALUE: f64 = 120.0e-9;
/// Per-tuple COPY overhead (row assembly, protocol framing).
const EXPORT_S_PER_TUPLE: f64 = 0.8e-6;
/// Text → float parse cost per value (strtod-class).
const TRANSFORM_S_PER_VALUE: f64 = 9.0e-9;

/// The external-tool pipeline model + functional trainer.
pub struct ExternalExecutor {
    cpu: CpuModel,
    library: ExternalLibrary,
}

impl ExternalExecutor {
    pub fn new(cpu: CpuModel, library: ExternalLibrary) -> ExternalExecutor {
        ExternalExecutor { cpu, library }
    }

    /// Trains functionally on `tuples` (already-extracted values) and
    /// prices the three phases for a table of `n_tuples × (width+1)` values.
    pub fn train(&self, tuples: &TupleBatch, cfg: &TrainConfig) -> Option<ExternalReport> {
        if !self.library.supports(cfg.algorithm) {
            return None;
        }
        let model = train_reference(tuples, cfg);
        let (export, transform, compute) =
            self.analytic_seconds(cfg, tuples.len() as u64, tuples.width().saturating_sub(1));
        Some(ExternalReport {
            library: self.library,
            export_seconds: export,
            transform_seconds: transform,
            compute_seconds: compute,
            model,
        })
    }

    /// Phase costs without functional execution (paper-scale workloads).
    pub fn analytic_seconds(
        &self,
        cfg: &TrainConfig,
        n_tuples: u64,
        width: usize,
    ) -> (Seconds, Seconds, Seconds) {
        let values = n_tuples as f64 * (width + 1) as f64;
        let export = values * EXPORT_S_PER_VALUE + n_tuples as f64 * EXPORT_S_PER_TUPLE;
        let transform = values * TRANSFORM_S_PER_VALUE;
        let per_tuple = self
            .cpu
            .compute_tuple_seconds(cfg.algorithm, width, cfg.rank);
        let compute = cfg.epochs.max(1) as f64
            * n_tuples as f64
            * per_tuple
            * self.library.solver_multiplier(cfg.algorithm)
            / self.library.effective_cores();
        (export, transform, compute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tuples(n: usize, d: usize) -> TupleBatch {
        TupleBatch::from_rows(
            d + 1,
            (0..n).map(|k| {
                let mut t: Vec<f32> = (0..d).map(|i| (((k + i) % 7) as f32 - 3.0) / 3.0).collect();
                t.push(if t[0] > 0.0 { 1.0 } else { 0.0 });
                t
            }),
        )
    }

    #[test]
    fn support_matrix_matches_paper() {
        assert!(ExternalLibrary::Liblinear.supports(Algorithm::Logistic));
        assert!(ExternalLibrary::Liblinear.supports(Algorithm::Svm));
        assert!(!ExternalLibrary::Liblinear.supports(Algorithm::Linear));
        assert!(!ExternalLibrary::Liblinear.supports(Algorithm::Lrmf));
        assert!(ExternalLibrary::DimmWitted.supports(Algorithm::Linear));
        assert!(!ExternalLibrary::DimmWitted.supports(Algorithm::Lrmf));
    }

    #[test]
    fn unsupported_algorithms_return_none() {
        let exec = ExternalExecutor::new(CpuModel::i7_6700(), ExternalLibrary::Liblinear);
        let cfg = TrainConfig {
            algorithm: Algorithm::Linear,
            ..Default::default()
        };
        assert!(exec.train(&tuples(10, 4), &cfg).is_none());
    }

    #[test]
    fn export_dominates_end_to_end() {
        // Fig. 15a: export is 57–86 % of Liblinear/DimmWitted runtime for
        // the logistic workloads.
        let exec = ExternalExecutor::new(CpuModel::i7_6700(), ExternalLibrary::Liblinear);
        let cfg = TrainConfig {
            algorithm: Algorithm::Logistic,
            epochs: 1,
            ..Default::default()
        };
        let (export, transform, compute) = exec.analytic_seconds(&cfg, 387_944, 2_000);
        let total = export + transform + compute;
        let frac = export / total;
        assert!(frac > 0.5 && frac < 0.95, "export fraction {frac}");
        assert!(transform < export, "transform is the small slice");
    }

    #[test]
    fn svm_compute_slower_than_logistic_compute() {
        // The library SVM solvers lose to IGD (Fig. 15b shows 0.1× bars).
        let exec = ExternalExecutor::new(CpuModel::i7_6700(), ExternalLibrary::Liblinear);
        let log = exec
            .analytic_seconds(
                &TrainConfig {
                    algorithm: Algorithm::Logistic,
                    epochs: 1,
                    ..Default::default()
                },
                100_000,
                500,
            )
            .2;
        let svm = exec
            .analytic_seconds(
                &TrainConfig {
                    algorithm: Algorithm::Svm,
                    epochs: 1,
                    ..Default::default()
                },
                100_000,
                500,
            )
            .2;
        assert!(svm > 10.0 * log, "svm {svm} vs logistic {log}");
    }

    #[test]
    fn functional_training_still_works() {
        let exec = ExternalExecutor::new(CpuModel::i7_6700(), ExternalLibrary::DimmWitted);
        let cfg = TrainConfig {
            algorithm: Algorithm::Logistic,
            epochs: 60,
            learning_rate: 0.5,
            ..Default::default()
        };
        let data = tuples(200, 4);
        let report = exec.train(&data, &cfg).unwrap();
        let acc =
            crate::metrics::classification_accuracy(report.model.as_dense(), &data, false).unwrap();
        assert!(acc > 0.9, "accuracy {acc}");
        let (e, t, c) = report.phase_fractions();
        assert!((e + t + c - 1.0).abs() < 1e-9);
    }
}
