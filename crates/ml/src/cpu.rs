//! The calibrated CPU cost model.
//!
//! The paper's software baselines ran on "four Intel i7-6700 cores at
//! 3.40GHz ... 32GB memory, a 256GB Solid State Drive" (§7). Functional
//! re-execution of the baselines at paper scale (up to 38 GB / 1.3 M × 7 K
//! tuples) is deliberately priced through this model instead of wall-clock
//! timing: the simulator host is not the paper's testbed, and the paper's
//! own estimator methodology (§6.1) shows static models suffice when the
//! execution is cache-free and statically scheduled — MADlib's per-tuple
//! transition functions are exactly that.
//!
//! Cost structure per training tuple (MADlib transition function):
//!
//! ```text
//! deform (per byte) + datum→float conversion (per value)
//!   + FLOPs / (clock × flops-per-cycle × vectorization(algo))
//!   + fixed UDF/aggregate overhead
//! ```
//!
//! Calibration notes (EXPERIMENTS.md records the resulting paper-vs-model
//! deltas): the vectorization factor encodes the paper's observation that
//! "Blog Feedback sees the smallest speedup [1.9×] due to the high CPU
//! vectorization potential of the linear regression algorithm" while
//! logistic regression's transcendental inner loop vectorizes poorly
//! (Remote Sensing LR achieves the largest speedup, 28.2×).

use dana_dsl::zoo::Algorithm;
use dana_fpga::Clock;

/// Seconds.
pub type Seconds = f64;

/// The machine model for every software baseline.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuModel {
    pub clock: Clock,
    /// Physical cores (i7-6700: 4).
    pub cores: u32,
    /// Heap-tuple deforming cost per byte (header checks + copy).
    pub deform_s_per_byte: Seconds,
    /// Datum → float conversion per value (MADlib array-handle traffic).
    pub conv_s_per_value: Seconds,
    /// Fixed per-tuple overhead: UDF call, aggregate transition, context
    /// switches into the executor.
    pub udf_overhead_s: Seconds,
    /// Per-page overhead of the scan executor (buffer lookup, lock, pin).
    pub page_overhead_s: Seconds,
    /// Peak scalar FLOPs per cycle per core (fused mul-add pipe).
    pub flops_per_cycle: f64,
}

impl CpuModel {
    /// The paper's testbed (§7): i7-6700 @ 3.4 GHz, 4 cores.
    pub fn i7_6700() -> CpuModel {
        CpuModel {
            clock: Clock::CPU_3_4GHZ,
            cores: 4,
            deform_s_per_byte: 0.15e-9,
            conv_s_per_value: 22.0e-9,
            udf_overhead_s: 1.6e-6,
            page_overhead_s: 2.0e-6,
            flops_per_cycle: 2.0,
        }
    }

    /// Algorithm-specific SIMD vectorization factor of the tuple-gradient
    /// inner loop ("high CPU vectorization potential of the linear
    /// regression algorithm", §7.1; sigmoid/exp defeats vectorization for
    /// logistic regression).
    pub fn vector_factor(algo: Algorithm) -> f64 {
        match algo {
            Algorithm::Linear => 8.0,
            Algorithm::Logistic => 1.5,
            Algorithm::Svm => 4.0,
            Algorithm::Lrmf => 6.0,
        }
    }

    /// FLOPs of one tuple's update-rule evaluation under a first-order
    /// (IGD/SGD) solver. `width` is the feature count for dense
    /// algorithms; LRMF uses the factorization `rank`.
    pub fn flops_per_tuple(algo: Algorithm, width: usize, rank: usize) -> f64 {
        match algo {
            // dot (2d) + gradient accumulate (2d)
            Algorithm::Linear => 4.0 * width as f64,
            // + sigmoid ≈ 30 flops-equivalent of exp/divide
            Algorithm::Logistic => 4.0 * width as f64 + 30.0,
            // dot (2d) + gated gradient (≈ half the tuples violate: 1d avg)
            Algorithm::Svm => 3.0 * width as f64,
            // dot (2k) + two row updates (4k)
            Algorithm::Lrmf => 6.0 * rank as f64,
        }
    }

    /// FLOPs of one tuple under *MADlib's* solver. MADlib's default
    /// logistic regression is IRLS (Newton): each tuple accumulates the
    /// d×d Hessian term `x·xᵀ·w`, a **quadratic** per-tuple cost. This is
    /// the mechanism behind the paper's largest speedups (S/E Logistic:
    /// 66 h 45 m on MADlib vs 11 m 24 s on DAnA, 278×): DAnA executes the
    /// user's first-order update rule while MADlib pays O(d²) per tuple.
    pub fn madlib_flops_per_tuple(algo: Algorithm, width: usize, rank: usize) -> f64 {
        match algo {
            Algorithm::Logistic => {
                2.0 * (width as f64) * (width as f64) + 4.0 * width as f64 + 30.0
            }
            other => CpuModel::flops_per_tuple(other, width, rank),
        }
    }

    /// Pure arithmetic seconds for one tuple on one core (first-order
    /// solver — what DAnA's update rule and the external libraries run).
    pub fn compute_tuple_seconds(&self, algo: Algorithm, width: usize, rank: usize) -> Seconds {
        CpuModel::flops_per_tuple(algo, width, rank)
            / (self.clock.hz * self.flops_per_cycle * CpuModel::vector_factor(algo))
    }

    /// Full MADlib per-tuple cost: deform + convert + compute (MADlib's own
    /// solver, see [`CpuModel::madlib_flops_per_tuple`]) + overhead.
    pub fn madlib_tuple_seconds(
        &self,
        algo: Algorithm,
        width: usize,
        rank: usize,
        tuple_bytes: usize,
    ) -> Seconds {
        self.udf_overhead_s
            + tuple_bytes as f64 * self.deform_s_per_byte
            + (width + 1) as f64 * self.conv_s_per_value
            + CpuModel::madlib_flops_per_tuple(algo, width, rank)
                / (self.clock.hz * self.flops_per_cycle * CpuModel::vector_factor(algo))
    }

    /// CPU seconds for one MADlib epoch (single-threaded PostgreSQL).
    ///
    /// For LRMF pass the paper's *row* representation through
    /// [`CpuModel::madlib_lrmf_epoch_seconds`] instead: MADlib stores one
    /// dense ratings row per tuple, amortizing the per-tuple overheads that
    /// a triple store would pay per rating.
    pub fn madlib_epoch_seconds(
        &self,
        algo: Algorithm,
        tuples: u64,
        width: usize,
        rank: usize,
        tuple_bytes: usize,
        pages: u64,
    ) -> Seconds {
        tuples as f64 * self.madlib_tuple_seconds(algo, width, rank, tuple_bytes)
            + pages as f64 * self.page_overhead_s
    }

    /// MADlib LRMF epoch over the paper's dense-row representation:
    /// `rows` tuples, each holding `cols` ratings updated against a
    /// rank-`rank` factorization (Table 3's Netflix row: 6 040 tuples of
    /// 3 952 ratings).
    pub fn madlib_lrmf_epoch_seconds(
        &self,
        rows: u64,
        cols: u64,
        rank: usize,
        pages: u64,
    ) -> Seconds {
        let per_rating = self.conv_s_per_value
            + 4.0 * self.deform_s_per_byte
            + CpuModel::flops_per_tuple(Algorithm::Lrmf, 0, rank)
                / (self.clock.hz * self.flops_per_cycle * CpuModel::vector_factor(Algorithm::Lrmf));
        rows as f64 * (self.udf_overhead_s + cols as f64 * per_rating)
            + pages as f64 * self.page_overhead_s
    }

    /// Fraction of an epoch that parallelizes across Greenplum segments.
    /// LRMF's row-indexed updates serialize badly under model averaging
    /// (the paper's Netflix runs are *slower* on Greenplum, Table 5).
    pub fn greenplum_parallel_fraction(algo: Algorithm) -> f64 {
        match algo {
            Algorithm::Linear | Algorithm::Logistic | Algorithm::Svm => 0.95,
            Algorithm::Lrmf => 0.45,
        }
    }

    /// Per-epoch Greenplum coordination cost: segment barrier + model
    /// gather/average/redistribute through the interconnect. The barrier
    /// grows superlinearly with segment count (coordinator fan-in plus
    /// per-segment process scheduling on 4 physical cores) — the reason
    /// "performance does not scale as the segments increase" past 8
    /// (§7.2, Fig. 13).
    pub fn greenplum_sync_seconds(&self, segments: u32, model_bytes: u64) -> Seconds {
        let barrier = 3.0e-3 * (segments as f64).powf(1.5);
        let transfer = (model_bytes as f64 * segments as f64) / 2.0e9;
        barrier + transfer
    }

    /// CPU seconds for one Greenplum epoch over `segments` segments
    /// (Amdahl split plus the per-epoch synchronization).
    #[allow(clippy::too_many_arguments)] // mirrors the cost model's factor list
    pub fn greenplum_epoch_seconds(
        &self,
        algo: Algorithm,
        tuples: u64,
        width: usize,
        rank: usize,
        tuple_bytes: usize,
        pages: u64,
        segments: u32,
        model_bytes: u64,
    ) -> Seconds {
        let single = self.madlib_epoch_seconds(algo, tuples, width, rank, tuple_bytes, pages);
        let p = CpuModel::greenplum_parallel_fraction(algo);
        single * ((1.0 - p) + p / segments as f64)
            + self.greenplum_sync_seconds(segments, model_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_tuples_cost_more() {
        let m = CpuModel::i7_6700();
        let narrow = m.madlib_tuple_seconds(Algorithm::Logistic, 54, 10, 236);
        let wide = m.madlib_tuple_seconds(Algorithm::Logistic, 2000, 10, 8020);
        assert!(wide > 10.0 * narrow, "{narrow} vs {wide}");
    }

    #[test]
    fn logistic_computes_slower_than_linear() {
        let m = CpuModel::i7_6700();
        let lin = m.compute_tuple_seconds(Algorithm::Linear, 500, 10);
        let log = m.compute_tuple_seconds(Algorithm::Logistic, 500, 10);
        assert!(
            log > lin * 3.0,
            "vectorization gap must show: {lin} vs {log}"
        );
    }

    #[test]
    fn calibration_magnitude_sn_logistic() {
        // S/N Logistic: 2 000 features, 387 944 tuples, 54m52s total in
        // Table 5. The per-epoch cost must sit in the tens-of-seconds range
        // so a plausible iteration count (10–200) lands near that total.
        let m = CpuModel::i7_6700();
        let epoch = m.madlib_epoch_seconds(Algorithm::Logistic, 387_944, 2_000, 10, 8_020, 96_986);
        // IRLS is quadratic in width: ~300 s/epoch, so Table 5's 54 m 52 s
        // corresponds to ~10 iterations.
        assert!(epoch > 150.0 && epoch < 600.0, "epoch = {epoch}s");
    }

    #[test]
    fn greenplum_scales_then_saturates() {
        let m = CpuModel::i7_6700();
        let args = (
            Algorithm::Logistic,
            500_000u64,
            500usize,
            10usize,
            2020usize,
            31_000u64,
        );
        let e = |s: u32| {
            m.greenplum_epoch_seconds(args.0, args.1, args.2, args.3, args.4, args.5, s, 2000)
        };
        let (e1, e4, e8, e16) = (e(1), e(4), e(8), e(16));
        assert!(e4 < e1 && e8 < e4, "{e1} {e4} {e8}");
        // Diminishing returns beyond 8 segments (the paper's best setting).
        assert!((e8 - e16).abs() < (e4 - e8), "{e4} {e8} {e16}");
    }

    #[test]
    fn greenplum_lrmf_parallelizes_poorly() {
        let m = CpuModel::i7_6700();
        let dense =
            m.greenplum_epoch_seconds(Algorithm::Linear, 100_000, 100, 10, 420, 3000, 8, 400)
                / m.madlib_epoch_seconds(Algorithm::Linear, 100_000, 100, 10, 420, 3000);
        let lrmf = m.greenplum_epoch_seconds(Algorithm::Lrmf, 100_000, 2, 10, 28, 3000, 8, 400)
            / m.madlib_epoch_seconds(Algorithm::Lrmf, 100_000, 2, 10, 28, 3000);
        assert!(
            dense < lrmf,
            "dense ratio {dense} must beat LRMF ratio {lrmf}"
        );
    }
}
