//! The MADlib + Greenplum baseline: segment-parallel training.
//!
//! Greenplum hash-distributes the table across N segment processes; each
//! MADlib iteration trains per-segment models in parallel and averages them
//! (model averaging is MADlib's distributed IGD strategy). The paper sweeps
//! 4/8/16 segments and settles on 8 (§7, Fig. 13).
//!
//! Functional execution really is parallel here (crossbeam scoped threads,
//! one per segment); simulated time still comes from the cost model —
//! wall-clock of the simulation host would be meaningless.

use crossbeam::thread;

use dana_storage::{BufferPool, DiskModel, HeapFile, HeapId, PageId, PageView, Tuple, TupleBatch};

use crate::algorithms::{train_reference, DenseModel, LrmfModel, TrainConfig, TrainedModel};
use crate::cpu::{CpuModel, Seconds};
use crate::linalg;

/// Timing + result of a Greenplum run.
#[derive(Debug, Clone)]
pub struct GreenplumReport {
    pub segments: u32,
    pub epochs: u32,
    pub cpu_seconds: Seconds,
    pub io_seconds: Seconds,
    pub total_seconds: Seconds,
    pub model: TrainedModel,
}

/// The executor.
pub struct GreenplumExecutor {
    cpu: CpuModel,
    disk: DiskModel,
    segments: u32,
}

impl GreenplumExecutor {
    pub fn new(cpu: CpuModel, disk: DiskModel, segments: u32) -> GreenplumExecutor {
        assert!(segments >= 1);
        GreenplumExecutor {
            cpu,
            disk,
            segments,
        }
    }

    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// Trains over `heap`, reading through `pool` (I/O accounting), with
    /// per-epoch model averaging across segments.
    pub fn train(
        &self,
        pool: &mut BufferPool,
        heap_id: HeapId,
        heap: &HeapFile,
        cfg: &TrainConfig,
    ) -> dana_storage::StorageResult<GreenplumReport> {
        let start_stats = pool.stats();
        // Load + round-robin distribute (Greenplum's hash distribution is
        // uniform for these keys; round-robin is the same workload shape).
        // Each segment's partition is one flat batch.
        let width = heap.schema().len();
        let mut partitions: Vec<TupleBatch> =
            (0..self.segments).map(|_| TupleBatch::new(width)).collect();
        let mut k = 0usize;
        for page_no in 0..heap.page_count() {
            let (frame, _) = pool.fetch(PageId::new(heap_id, page_no), heap, &self.disk)?;
            let distributed = (|| -> dana_storage::StorageResult<()> {
                let view = PageView::new(pool.frame_bytes(frame), *heap.layout())?;
                for slot in 0..view.tuple_count() {
                    Tuple::deform_into(
                        heap.schema(),
                        view.tuple_bytes(slot)?,
                        &mut partitions[k % self.segments as usize],
                    )?;
                    k += 1;
                }
                Ok(())
            })();
            // Unpin before propagating: a corrupt page must not pin its
            // frame forever.
            pool.unpin(frame);
            distributed?;
        }
        // Epochs re-scan per segment; charge the pool for the re-reads the
        // way MADlib's iterations do (epochs beyond the first hit cache if
        // the table fits).
        for _ in 1..cfg.epochs.max(1) {
            for page_no in 0..heap.page_count() {
                let (frame, _) = pool.fetch(PageId::new(heap_id, page_no), heap, &self.disk)?;
                pool.unpin(frame);
            }
        }

        let model = self.model_averaged_train(&partitions, cfg);

        let io_seconds = pool.stats().io_seconds - start_stats.io_seconds;
        let width = heap.schema().len() - 1;
        let model_bytes = model_bytes(&model);
        let cpu_seconds = cfg.epochs.max(1) as f64
            * self.cpu.greenplum_epoch_seconds(
                cfg.algorithm,
                heap.tuple_count(),
                width,
                cfg.rank,
                heap.layout().tuple_bytes,
                heap.page_count() as u64,
                self.segments,
                model_bytes,
            );
        Ok(GreenplumReport {
            segments: self.segments,
            epochs: cfg.epochs.max(1),
            cpu_seconds,
            io_seconds,
            total_seconds: cpu_seconds + io_seconds,
            model,
        })
    }

    /// One epoch of segment-local training then averaging, repeated.
    fn model_averaged_train(&self, partitions: &[TupleBatch], cfg: &TrainConfig) -> TrainedModel {
        let live: Vec<&TupleBatch> = partitions.iter().filter(|p| !p.is_empty()).collect();
        assert!(!live.is_empty(), "no training data");
        // Segment-local single-epoch configs.
        let seg_cfg = TrainConfig { epochs: 1, ..*cfg };
        let mut global: Option<TrainedModel> = None;
        for _ in 0..cfg.epochs.max(1) {
            // Real parallelism across segments (each trains a fresh epoch
            // from the current global model — model averaging restarts from
            // the average, so per-epoch retraining from the average is the
            // faithful schedule; here segments re-train from scratch on
            // epoch 1 then from the averaged model's warm start thereafter,
            // which for the reference trainers means re-running an epoch of
            // updates beginning at the averaged weights).
            let results: Vec<TrainedModel> = thread::scope(|s| {
                let global_ref = &global;
                let handles: Vec<_> = live
                    .iter()
                    .map(|part| {
                        s.spawn(move |_| train_segment(part, &seg_cfg, global_ref.as_ref()))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("segment thread"))
                    .collect()
            })
            .expect("crossbeam scope");
            global = Some(average_models(&results));
        }
        global.expect("at least one epoch")
    }
}

/// One segment's epoch: warm-start from the global model when present.
fn train_segment(
    tuples: &TupleBatch,
    cfg: &TrainConfig,
    warm: Option<&TrainedModel>,
) -> TrainedModel {
    match warm {
        None => train_reference(tuples, cfg),
        Some(TrainedModel::Dense(m)) => {
            // Continue from the averaged weights: replay one epoch of
            // updates starting at `m`.
            let mut w = m.0.clone();
            let d = w.len();
            let width = tuples.width();
            let step = cfg.learning_rate / cfg.batch.max(1) as f32;
            let mut g = vec![0.0f32; d];
            for batch in tuples.as_slice().chunks(width * cfg.batch.max(1)) {
                g.iter_mut().for_each(|v| *v = 0.0);
                for t in batch.chunks_exact(width) {
                    grad_for(cfg, &w, &t[..d], t[d], &mut g);
                }
                linalg::axpy(-step, &g, &mut w);
            }
            TrainedModel::Dense(DenseModel(w))
        }
        Some(TrainedModel::Lrmf(m)) => {
            let mut model = m.clone();
            let lr = cfg.learning_rate;
            for t in tuples.rows() {
                let (i, j, y) = (t[0] as usize, t[1] as usize, t[2]);
                if i >= model.rows || j >= model.cols {
                    continue;
                }
                let e = model.predict(i, j) - y;
                for k in 0..model.rank {
                    let lv = model.l[i * model.rank + k];
                    let rv = model.r[j * model.rank + k];
                    model.l[i * model.rank + k] = lv - lr * e * rv;
                    model.r[j * model.rank + k] = rv - lr * e * lv;
                }
            }
            TrainedModel::Lrmf(model)
        }
    }
}

fn grad_for(cfg: &TrainConfig, w: &[f32], x: &[f32], y: f32, g: &mut [f32]) {
    use crate::linalg::{dot, sigmoid};
    match cfg.algorithm {
        crate::Algorithm::Linear => linalg::axpy(dot(w, x) - y, x, g),
        crate::Algorithm::Logistic => linalg::axpy(sigmoid(dot(w, x)) - y, x, g),
        crate::Algorithm::Svm => {
            if y * dot(w, x) < 1.0 {
                linalg::axpy(-y, x, g);
            }
        }
        crate::Algorithm::Lrmf => unreachable!("LRMF uses the row-update path"),
    }
}

fn average_models(models: &[TrainedModel]) -> TrainedModel {
    match &models[0] {
        TrainedModel::Dense(_) => {
            let ws: Vec<Vec<f32>> = models.iter().map(|m| m.as_dense().0.clone()).collect();
            TrainedModel::Dense(DenseModel(linalg::mean(&ws)))
        }
        TrainedModel::Lrmf(first) => {
            let mut rows = 0;
            let mut cols = 0;
            for m in models {
                rows = rows.max(m.as_lrmf().rows);
                cols = cols.max(m.as_lrmf().cols);
            }
            let rank = first.rank;
            let mut l = vec![0.0f32; rows * rank];
            let mut r = vec![0.0f32; cols * rank];
            let mut lcount = vec![0u32; rows];
            let mut rcount = vec![0u32; cols];
            for m in models {
                let m = m.as_lrmf();
                for i in 0..m.rows {
                    for k in 0..rank {
                        l[i * rank + k] += m.l[i * rank + k];
                    }
                    lcount[i] += 1;
                }
                for j in 0..m.cols {
                    for k in 0..rank {
                        r[j * rank + k] += m.r[j * rank + k];
                    }
                    rcount[j] += 1;
                }
            }
            for i in 0..rows {
                let c = lcount[i].max(1) as f32;
                for k in 0..rank {
                    l[i * rank + k] /= c;
                }
            }
            for j in 0..cols {
                let c = rcount[j].max(1) as f32;
                for k in 0..rank {
                    r[j * rank + k] /= c;
                }
            }
            TrainedModel::Lrmf(LrmfModel {
                l,
                r,
                rows,
                cols,
                rank,
            })
        }
    }
}

fn model_bytes(model: &TrainedModel) -> u64 {
    match model {
        TrainedModel::Dense(m) => m.0.len() as u64 * 4,
        TrainedModel::Lrmf(m) => (m.l.len() + m.r.len()) as u64 * 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use dana_storage::page::TupleDirection;
    use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

    fn heap(n: usize, d: usize) -> HeapFile {
        let truth: Vec<f32> = (0..d).map(|i| 0.5 - 0.1 * i as f32).collect();
        let mut b =
            HeapFileBuilder::new(Schema::training(d), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 11 + i * 3) % 9) as f32 - 4.0) / 4.0)
                .collect();
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            b.insert(&Tuple::training(&x, y)).unwrap();
        }
        b.finish()
    }

    fn pool_for(heap: &HeapFile) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            pool_bytes: (heap.page_count() as u64 + 4) * 8 * 1024,
            page_size: 8 * 1024,
        })
    }

    #[test]
    fn segment_parallel_training_converges() {
        let heap = heap(600, 5);
        let exec = GreenplumExecutor::new(CpuModel::i7_6700(), DiskModel::instant(), 8);
        let cfg = TrainConfig {
            epochs: 50,
            learning_rate: 0.2,
            batch: 1,
            ..Default::default()
        };
        let report = exec
            .train(&mut pool_for(&heap), HeapId(1), &heap, &cfg)
            .unwrap();
        let tuples = heap.scan_batch().unwrap();
        let loss = metrics::mse(report.model.as_dense(), &tuples).unwrap();
        assert!(loss < 0.02, "mse {loss}");
        assert_eq!(report.segments, 8);
    }

    #[test]
    fn eight_segments_beat_one_on_large_data() {
        // Large enough that the parallel win exceeds the per-epoch barrier
        // cost (tiny tables go the other way — see the next test).
        let heap = heap(20_000, 100);
        let cfg = TrainConfig {
            epochs: 4,
            ..Default::default()
        };
        let one = GreenplumExecutor::new(CpuModel::i7_6700(), DiskModel::instant(), 1)
            .train(&mut pool_for(&heap), HeapId(1), &heap, &cfg)
            .unwrap();
        let eight = GreenplumExecutor::new(CpuModel::i7_6700(), DiskModel::instant(), 8)
            .train(&mut pool_for(&heap), HeapId(1), &heap, &cfg)
            .unwrap();
        assert!(eight.cpu_seconds < one.cpu_seconds);
    }

    #[test]
    fn sync_overhead_dominates_tiny_workloads() {
        // Greenplum ≈ PostgreSQL for WLAN-class workloads (Fig. 8: 1.0×).
        let heap = heap(100, 4);
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };
        let gp = GreenplumExecutor::new(CpuModel::i7_6700(), DiskModel::instant(), 8)
            .train(&mut pool_for(&heap), HeapId(1), &heap, &cfg)
            .unwrap();
        let madlib = crate::MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::instant())
            .train(&mut pool_for(&heap), HeapId(1), &heap, &cfg)
            .unwrap();
        assert!(
            gp.cpu_seconds > madlib.cpu_seconds,
            "sync cost must exceed the parallel win on tiny data"
        );
    }

    #[test]
    fn model_averaging_of_dense_models() {
        let models = vec![
            TrainedModel::Dense(DenseModel(vec![1.0, 2.0])),
            TrainedModel::Dense(DenseModel(vec![3.0, 4.0])),
        ];
        let avg = average_models(&models);
        assert_eq!(avg.as_dense().0, vec![2.0, 3.0]);
    }
}
