//! The MADlib + PostgreSQL baseline: single-threaded in-RDBMS training.
//!
//! MADlib's incremental gradient descent runs as a user-defined aggregate:
//! the executor scans the heap through the buffer pool, deforms each tuple,
//! converts the datums into the math layer's arrays, and applies the update
//! rule — once per tuple, single-threaded (§7 evaluates this as the main
//! baseline). This executor does the same, functionally, over the same
//! pages DAnA's Striders walk; its simulated runtime combines buffer-pool
//! I/O accounting with the calibrated per-tuple CPU cost model.

use dana_storage::{BufferPool, DiskModel, HeapFile, HeapId, PageId, PageView, TupleBatch};

use crate::algorithms::{train_reference, TrainConfig, TrainedModel};
use crate::cpu::{CpuModel, Seconds};

/// Timing + result of a MADlib run.
#[derive(Debug, Clone)]
pub struct MadlibReport {
    pub epochs: u32,
    /// Simulated single-core CPU seconds.
    pub cpu_seconds: Seconds,
    /// Simulated disk seconds (buffer-pool misses).
    pub io_seconds: Seconds,
    /// End-to-end: PostgreSQL overlaps no I/O with the aggregate.
    pub total_seconds: Seconds,
    pub tuples_per_epoch: u64,
    pub model: TrainedModel,
}

/// The executor. One instance per (machine, disk) configuration.
pub struct MadlibExecutor {
    cpu: CpuModel,
    disk: DiskModel,
}

impl MadlibExecutor {
    pub fn new(cpu: CpuModel, disk: DiskModel) -> MadlibExecutor {
        MadlibExecutor { cpu, disk }
    }

    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    /// Trains over `heap` through `pool`. Warm/cold cache is the caller's
    /// choice (prewarm or clear the pool first, §7's two settings).
    pub fn train(
        &self,
        pool: &mut BufferPool,
        heap_id: HeapId,
        heap: &HeapFile,
        cfg: &TrainConfig,
    ) -> dana_storage::StorageResult<MadlibReport> {
        let start_stats = pool.stats();
        // Functional pass: stream tuples epoch by epoch through the pool.
        // (The reference trainer consumes a materialized slice; epochs are
        // re-scans, so each epoch re-touches every page — exactly MADlib's
        // access pattern, and what makes the cold-cache setting matter.)
        let mut tuples =
            TupleBatch::with_capacity(heap.schema().len(), heap.tuple_count() as usize);
        for epoch in 0..cfg.epochs.max(1) {
            for page_no in 0..heap.page_count() {
                let (frame, _io) = pool.fetch(PageId::new(heap_id, page_no), heap, &self.disk)?;
                let deformed = if epoch == 0 {
                    PageView::new(pool.frame_bytes(frame), *heap.layout())
                        .and_then(|view| view.deform_all_into(heap.schema(), &mut tuples))
                } else {
                    Ok(())
                };
                // Unpin before propagating: a corrupt page must not pin
                // its frame forever.
                pool.unpin(frame);
                deformed?;
            }
        }
        let model = train_reference(&tuples, cfg);

        // Simulated timing.
        let io_seconds = pool.stats().io_seconds - start_stats.io_seconds;
        let width = heap.schema().len() - 1;
        let tuple_bytes = heap.layout().tuple_bytes;
        let cpu_seconds = cfg.epochs.max(1) as f64
            * self.cpu.madlib_epoch_seconds(
                cfg.algorithm,
                heap.tuple_count(),
                width,
                cfg.rank,
                tuple_bytes,
                heap.page_count() as u64,
            );
        Ok(MadlibReport {
            epochs: cfg.epochs.max(1),
            cpu_seconds,
            io_seconds,
            total_seconds: cpu_seconds + io_seconds,
            tuples_per_epoch: heap.tuple_count(),
            model,
        })
    }

    /// Analytic-only runtime (no functional pass) for paper-scale
    /// workloads: same formulas, driven by catalog statistics.
    #[allow(clippy::too_many_arguments)] // mirrors the cost model's factor list
    pub fn analytic_seconds(
        &self,
        cfg: &TrainConfig,
        tuples: u64,
        width: usize,
        tuple_bytes: usize,
        pages: u64,
        resident_pages: u64,
        page_size: usize,
    ) -> (Seconds, Seconds) {
        let cpu = cfg.epochs.max(1) as f64
            * self.cpu.madlib_epoch_seconds(
                cfg.algorithm,
                tuples,
                width,
                cfg.rank,
                tuple_bytes,
                pages,
            );
        // Misses: the first epoch reads everything not resident; later
        // epochs re-read only what the pool cannot hold.
        let pool_short = pages.saturating_sub(resident_pages);
        let first = pool_short;
        let later = (cfg.epochs.max(1) as u64 - 1) * pool_short;
        let io = (first + later) as f64 * self.disk.read_time(page_size as u64);
        (cpu, io)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use dana_dsl::zoo::Algorithm;
    use dana_storage::page::TupleDirection;
    use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema, Tuple};

    fn heap(n: usize, d: usize) -> HeapFile {
        let truth: Vec<f32> = (0..d).map(|i| 1.0 - 0.2 * i as f32).collect();
        let mut b =
            HeapFileBuilder::new(Schema::training(d), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d)
                .map(|i| (((k * 5 + i * 3) % 13) as f32 - 6.0) / 6.0)
                .collect();
            let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
            b.insert(&Tuple::training(&x, y)).unwrap();
        }
        b.finish()
    }

    fn pool_for(heap: &HeapFile) -> BufferPool {
        BufferPool::new(BufferPoolConfig {
            pool_bytes: (heap.page_count() as u64 + 4) * 8 * 1024,
            page_size: 8 * 1024,
        })
    }

    #[test]
    fn trains_a_usable_model() {
        let heap = heap(400, 6);
        let mut pool = pool_for(&heap);
        let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::ssd());
        let cfg = TrainConfig {
            epochs: 40,
            learning_rate: 0.2,
            batch: 1,
            ..Default::default()
        };
        let report = exec.train(&mut pool, HeapId(1), &heap, &cfg).unwrap();
        let tuples = heap.scan_batch().unwrap();
        let loss = metrics::mse(report.model.as_dense(), &tuples).unwrap();
        assert!(loss < 0.01, "mse {loss}");
        assert!(report.cpu_seconds > 0.0);
        assert_eq!(report.tuples_per_epoch, 400);
    }

    #[test]
    fn cold_cache_pays_io_warm_does_not() {
        let heap = heap(2000, 8);
        let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::ssd());
        let cfg = TrainConfig {
            epochs: 2,
            ..Default::default()
        };

        let mut cold_pool = pool_for(&heap);
        let cold = exec.train(&mut cold_pool, HeapId(1), &heap, &cfg).unwrap();
        assert!(cold.io_seconds > 0.0);

        let mut warm_pool = pool_for(&heap);
        warm_pool.prewarm(HeapId(1), &heap).unwrap();
        warm_pool.reset_stats();
        let warm = exec.train(&mut warm_pool, HeapId(1), &heap, &cfg).unwrap();
        assert_eq!(warm.io_seconds, 0.0);
        assert!(warm.total_seconds < cold.total_seconds);
        // Same data, same math → identical models.
        assert_eq!(warm.model.as_dense().0, cold.model.as_dense().0);
    }

    #[test]
    fn epochs_scale_cpu_linearly() {
        let heap = heap(500, 4);
        let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::instant());
        let one = exec
            .train(
                &mut pool_for(&heap),
                HeapId(1),
                &heap,
                &TrainConfig {
                    epochs: 1,
                    ..Default::default()
                },
            )
            .unwrap();
        let four = exec
            .train(
                &mut pool_for(&heap),
                HeapId(1),
                &heap,
                &TrainConfig {
                    epochs: 4,
                    ..Default::default()
                },
            )
            .unwrap();
        assert!((four.cpu_seconds / one.cpu_seconds - 4.0).abs() < 1e-9);
    }

    #[test]
    fn analytic_matches_functional_io_cold() {
        let heap = heap(3000, 8);
        let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::ssd());
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let mut pool = pool_for(&heap); // big enough: misses only on epoch 1
        let functional = exec.train(&mut pool, HeapId(1), &heap, &cfg).unwrap();
        let (cpu, io) = exec.analytic_seconds(
            &cfg,
            heap.tuple_count(),
            8,
            heap.layout().tuple_bytes,
            heap.page_count() as u64,
            0,
            8 * 1024,
        );
        assert!((cpu - functional.cpu_seconds).abs() / cpu < 1e-9);
        // Functional: epoch 1 misses everything, epochs 2–3 hit. Analytic
        // with resident=0 charges misses every epoch — it must be ≥.
        assert!(io >= functional.io_seconds);
        let (_, io_resident) = exec.analytic_seconds(
            &cfg,
            heap.tuple_count(),
            8,
            heap.layout().tuple_bytes,
            heap.page_count() as u64,
            heap.page_count() as u64,
            8 * 1024,
        );
        assert_eq!(io_resident, 0.0);
    }

    #[test]
    fn lrmf_trains_through_madlib_path() {
        let schema = Schema::rating();
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending).unwrap();
        for i in 0..20i32 {
            for j in 0..10i32 {
                b.insert(&Tuple::rating(i, j, ((i + j) % 5) as f32))
                    .unwrap();
            }
        }
        let heap = b.finish();
        let mut pool = pool_for(&heap);
        let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::instant());
        let cfg = TrainConfig {
            algorithm: Algorithm::Lrmf,
            epochs: 30,
            learning_rate: 0.05,
            rank: 4,
            ..Default::default()
        };
        let report = exec.train(&mut pool, HeapId(1), &heap, &cfg).unwrap();
        let tuples = heap.scan_batch().unwrap();
        let rmse = metrics::lrmf_rmse(report.model.as_lrmf(), &tuples).unwrap();
        assert!(rmse < 1.0, "rmse {rmse}");
    }
}
