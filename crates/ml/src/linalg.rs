//! Minimal dense linear algebra (f32, matching the engine's native width).
//!
//! Only what the four algorithms need — deliberately no external BLAS: the
//! baselines' *timing* comes from the cost model, so the functional math
//! only has to be correct, not fast.

/// Dot product.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y *= alpha`.
pub fn scale(alpha: f32, y: &mut [f32]) {
    for yi in y.iter_mut() {
        *yi *= alpha;
    }
}

/// Euclidean norm.
pub fn norm2(a: &[f32]) -> f32 {
    dot(a, a).max(0.0).sqrt()
}

/// Elementwise mean of several equally-sized vectors.
pub fn mean(vs: &[Vec<f32>]) -> Vec<f32> {
    assert!(!vs.is_empty());
    let n = vs[0].len();
    let mut out = vec![0.0f32; n];
    for v in vs {
        debug_assert_eq!(v.len(), n);
        axpy(1.0, v, &mut out);
    }
    scale(1.0 / vs.len() as f32, &mut out);
    out
}

/// Numerically-stable sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn axpy_scale() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, -0.5]);
    }

    #[test]
    fn mean_of_vectors() {
        let m = mean(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(m, vec![2.0, 4.0]);
    }

    #[test]
    fn sigmoid_stability() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 1e-4);
        assert!(sigmoid(-100.0) >= 0.0); // no NaN/underflow blowup
    }
}
