//! The translator: UDF → hierarchical DataFlow Graph (hDFG).
//!
//! "DAnA's translator is the front-end of the compiler, which converts the
//! user-provided UDF to a hierarchical DataFlow Graph. ... Each node of the
//! hDFG represents a multi-dimensional operation, which can be decomposed
//! into smaller atomic sub-nodes. An atomic sub-node is a single operation
//! performed by the accelerator." (§4.4)
//!
//! The graph built here is exactly Fig. 3's: leaf nodes for declared data,
//! one operation node per DSL statement, an explicit [`HOp::Merge`] node at
//! the thread-combination boundary, and regions marking which nodes run
//! per-tuple (replicated across threads) versus post-merge (once per
//! batch). Every node knows its output [`Dims`] (inference already ran in
//! the DSL layer and is re-used verbatim) and can report its **atomic
//! sub-node count** and **depth** — the two quantities the hardware
//! generator's design-space exploration consumes (§6.1).

pub mod graph;
pub mod translate;

pub use graph::{HNode, HOp, Hdfg, NodeId, Region};
pub use translate::translate;
