//! The hDFG data structure and its analysis queries.

use dana_dsl::{BinOp, Convergence, DataKind, Dims, GroupOp, MergeOp, UnaryFn, VarId};

/// Index of a node within its [`Hdfg`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u32);

/// Which execution region a node belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Region {
    /// Runs once per training tuple, replicated across threads (the
    /// parallelizable portion of the update rule, Fig. 3b "Thread 1 …
    /// Thread n").
    PerTuple,
    /// Runs once per batch, after the thread merge (the optimizer step and
    /// the convergence check).
    PostMerge,
}

/// Node operation. Mirrors the DSL's [`dana_dsl::OpKind`] plus leaves and
/// the explicit cross-thread merge.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum HOp {
    /// A declared variable entering the graph (input/output/model/meta).
    Leaf {
        var: VarId,
        kind: DataKind,
    },
    Binary(BinOp),
    Unary(UnaryFn),
    Group(GroupOp, usize),
    /// Row gather from a rank-2 model.
    Gather,
    Identity,
    Const(f64),
    /// Cross-thread combination on the tree bus (the colored node of
    /// Fig. 3b). Carries the merge operator.
    Merge(MergeOp),
}

/// One hDFG node.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HNode {
    pub id: NodeId,
    pub op: HOp,
    /// Producer nodes, in operand order.
    pub inputs: Vec<NodeId>,
    /// Output shape.
    pub dims: Dims,
    pub region: Region,
    /// Source-level name (variable name or a derived label) for diagnostics.
    pub name: String,
}

impl HNode {
    /// Number of atomic sub-nodes (single scalar engine operations) this
    /// multi-dimensional node decomposes into (§4.4).
    ///
    /// * elementwise binary/unary: one op per output element;
    /// * `sigma`/`pi` over an axis of extent `k`: a `(k−1)`-op reduction
    ///   tree per output element;
    /// * `norm`: squares (`k`), reduction (`k−1`), and a square root;
    /// * `gather`: one move per gathered element;
    /// * leaves, constants, identities: zero compute.
    pub fn atomic_ops(&self, input_dims: &[&Dims]) -> u64 {
        let out = self.dims.elements() as u64;
        match &self.op {
            HOp::Binary(_) => out,
            HOp::Unary(_) => out,
            HOp::Group(g, axis) => {
                let in_dims = input_dims.first().expect("group has one input");
                let k = group_extent(in_dims, *axis) as u64;
                match g {
                    GroupOp::Sigma | GroupOp::Pi => out * k.saturating_sub(1),
                    GroupOp::Norm => out * (2 * k).saturating_sub(1).max(1),
                }
            }
            HOp::Gather => out,
            HOp::Merge(_) => out,
            HOp::Leaf { .. } | HOp::Identity | HOp::Const(_) => 0,
        }
    }

    /// Pipeline depth in "levels" when fully parallelized: elementwise ops
    /// take one level; reductions take ⌈log₂ k⌉ levels.
    pub fn depth(&self, input_dims: &[&Dims]) -> u64 {
        match &self.op {
            HOp::Binary(_) | HOp::Unary(_) | HOp::Gather | HOp::Merge(_) => 1,
            HOp::Group(g, axis) => {
                let in_dims = input_dims.first().expect("group has one input");
                let k = group_extent(in_dims, *axis).max(1) as u64;
                let tree = (64 - (k - 1).leading_zeros().min(63)) as u64; // ⌈log₂ k⌉
                match g {
                    GroupOp::Sigma | GroupOp::Pi => tree.max(1),
                    GroupOp::Norm => tree + 2, // squares, tree, sqrt
                }
            }
            HOp::Leaf { .. } | HOp::Identity | HOp::Const(_) => 0,
        }
    }
}

/// Extent of the reduced axis (1-based from the right).
fn group_extent(dims: &Dims, axis: usize) -> usize {
    if dims.is_scalar() {
        1
    } else {
        dims.0[dims.rank() - axis]
    }
}

/// How the trained model leaves the graph.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelBinding {
    /// The whole model variable is replaced by this node's value.
    Whole { model: VarId, source: NodeId },
    /// Row `index` (a node producing a scalar) is replaced (LRMF scatter).
    Row {
        model: VarId,
        index: NodeId,
        source: NodeId,
    },
}

/// Cross-thread merge description.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MergeInfo {
    pub node: NodeId,
    pub op: MergeOp,
    pub coef: u32,
}

/// The hierarchical dataflow graph for one UDF.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Hdfg {
    pub name: String,
    /// Nodes in topological order (construction preserves statement order).
    pub nodes: Vec<HNode>,
    /// The merge node, if the UDF declared one.
    pub merge: Option<MergeInfo>,
    /// Model write-backs.
    pub model_bindings: Vec<ModelBinding>,
    /// Convergence: either a fixed epoch count or (condition node, cap).
    pub convergence: ConvergenceBinding,
    /// Meta-variable contents (compile-time constants shipped to the FPGA
    /// before execution, §4.2), keyed by the DSL variable.
    pub meta_values: Vec<(VarId, Vec<f64>)>,
    /// Total feature / label widths (copied from the spec for convenience).
    pub input_width: usize,
    pub output_width: usize,
    pub model_elements: usize,
}

/// Convergence in graph terms.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ConvergenceBinding {
    Epochs(u32),
    Condition { node: NodeId, max_epochs: u32 },
}

impl ConvergenceBinding {
    pub fn from_spec(c: &Convergence, node_of: impl Fn(VarId) -> NodeId) -> ConvergenceBinding {
        match c {
            Convergence::Epochs(n) => ConvergenceBinding::Epochs(*n),
            Convergence::Condition { var, max_epochs } => ConvergenceBinding::Condition {
                node: node_of(*var),
                max_epochs: *max_epochs,
            },
        }
    }

    /// Upper bound on epochs regardless of early exit.
    pub fn max_epochs(&self) -> u32 {
        match self {
            ConvergenceBinding::Epochs(n) => *n,
            ConvergenceBinding::Condition { max_epochs, .. } => *max_epochs,
        }
    }
}

impl Hdfg {
    pub fn node(&self, id: NodeId) -> &HNode {
        &self.nodes[id.0 as usize]
    }

    /// Contents of a meta variable as engine-native f32, if `var` is a meta
    /// leaf.
    pub fn meta_contents(&self, var: VarId) -> Option<Vec<f32>> {
        self.meta_values
            .iter()
            .find(|(v, _)| *v == var)
            .map(|(_, vals)| vals.iter().map(|x| *x as f32).collect())
    }

    fn input_dims(&self, node: &HNode) -> Vec<&Dims> {
        node.inputs.iter().map(|i| &self.node(*i).dims).collect()
    }

    /// Nodes in a region, in topological order.
    pub fn region_nodes(&self, region: Region) -> impl Iterator<Item = &HNode> {
        self.nodes.iter().filter(move |n| n.region == region)
    }

    /// Total atomic sub-node count in a region — the work one thread
    /// performs per tuple (PerTuple) or per batch (PostMerge).
    pub fn atomic_op_count(&self, region: Region) -> u64 {
        self.region_nodes(region)
            .map(|n| n.atomic_ops(&self.input_dims(n)))
            .sum()
    }

    /// Critical-path depth of a region in levels (infinite-resource bound):
    /// the longest chain of node depths through the dataflow edges.
    pub fn critical_path(&self, region: Region) -> u64 {
        let mut best: Vec<u64> = vec![0; self.nodes.len()];
        let mut max = 0;
        for n in &self.nodes {
            if n.region != region {
                continue;
            }
            let in_best = n
                .inputs
                .iter()
                .map(|i| best[i.0 as usize])
                .max()
                .unwrap_or(0);
            let d = in_best + n.depth(&self.input_dims(n));
            best[n.id.0 as usize] = d;
            max = max.max(d);
        }
        max
    }

    /// Maximum width (atomic ops that could run concurrently) of a region —
    /// a cheap upper bound: the largest single node's element-parallelism.
    pub fn max_width(&self, region: Region) -> u64 {
        self.region_nodes(region)
            .map(|n| match &n.op {
                HOp::Group(_, axis) => {
                    let dims = self.input_dims(n);
                    dims.first()
                        .map(|d| {
                            let k = group_extent(d, *axis) as u64;
                            (k / 2).max(1) * n.dims.elements() as u64
                        })
                        .unwrap_or(1)
                }
                HOp::Leaf { .. } | HOp::Const(_) | HOp::Identity => 0,
                _ => n.dims.elements() as u64,
            })
            .max()
            .unwrap_or(0)
    }

    /// Structural invariant check: inputs precede their consumers, regions
    /// never flow backwards (PostMerge never feeds PerTuple), and every
    /// binding references an existing node.
    pub fn check(&self) -> Result<(), String> {
        for n in &self.nodes {
            for i in &n.inputs {
                if i.0 >= n.id.0 {
                    return Err(format!("node {} reads later node {}", n.id.0, i.0));
                }
                let producer = self.node(*i);
                if producer.region == Region::PostMerge && n.region == Region::PerTuple {
                    return Err(format!(
                        "per-tuple node {} consumes post-merge node {}",
                        n.id.0, i.0
                    ));
                }
            }
        }
        for b in &self.model_bindings {
            let src = match b {
                ModelBinding::Whole { source, .. } => *source,
                ModelBinding::Row { source, .. } => *source,
            };
            if src.0 as usize >= self.nodes.len() {
                return Err(format!("model binding references missing node {}", src.0));
            }
        }
        if let Some(m) = &self.merge {
            if !matches!(self.node(m.node).op, HOp::Merge(_)) {
                return Err("merge info does not point at a Merge node".into());
            }
        }
        Ok(())
    }

    /// GraphViz dot output (handy for docs and debugging).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(s, "digraph \"{}\" {{", self.name);
        for n in &self.nodes {
            let shape = match n.op {
                HOp::Leaf { .. } => "ellipse",
                HOp::Merge(_) => "doubleoctagon",
                _ => "box",
            };
            let _ = writeln!(
                s,
                "  n{} [label=\"{} {}\" shape={}];",
                n.id.0, n.name, n.dims, shape
            );
            for i in &n.inputs {
                let _ = writeln!(s, "  n{} -> n{};", i.0, n.id.0);
            }
        }
        let _ = writeln!(s, "}}");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::translate::translate;
    use dana_dsl::zoo::{linear_regression, lrmf, DenseParams, LrmfParams};

    fn linreg_graph(n: usize) -> Hdfg {
        let spec = linear_regression(DenseParams {
            n_features: n,
            ..Default::default()
        })
        .unwrap();
        translate(&spec)
    }

    #[test]
    fn atomic_ops_scale_with_features() {
        let g8 = linreg_graph(8);
        let g64 = linreg_graph(64);
        let w8 = g8.atomic_op_count(Region::PerTuple);
        let w64 = g64.atomic_op_count(Region::PerTuple);
        // linear regression per-tuple work: mul n + reduce (n−1) + sub 1 + mul n
        assert_eq!(w8, 8 + 7 + 1 + 8);
        assert_eq!(w64, 64 + 63 + 1 + 64);
        assert!(w64 > w8);
    }

    #[test]
    fn critical_path_is_logarithmic_in_features() {
        let g8 = linreg_graph(8);
        let g64 = linreg_graph(64);
        let d8 = g8.critical_path(Region::PerTuple);
        let d64 = g64.critical_path(Region::PerTuple);
        // mul (1) + log2 reduction + sub (1) + mul (1)
        assert_eq!(d8, 1 + 3 + 1 + 1);
        assert_eq!(d64, 1 + 6 + 1 + 1);
    }

    #[test]
    fn merge_node_has_correct_shape() {
        let g = linreg_graph(16);
        let m = g.merge.expect("linreg has a merge");
        assert_eq!(m.coef, 8);
        let node = g.node(m.node);
        assert!(matches!(node.op, HOp::Merge(_)));
        assert_eq!(node.dims, Dims::vector(16));
        assert_eq!(node.region, Region::PostMerge);
    }

    #[test]
    fn invariants_hold_for_zoo_graphs() {
        linreg_graph(10).check().unwrap();
        let spec = lrmf(LrmfParams::default()).unwrap();
        translate(&spec).check().unwrap();
    }

    #[test]
    fn dot_output_mentions_every_node() {
        let g = linreg_graph(4);
        let dot = g.to_dot();
        for n in &g.nodes {
            assert!(dot.contains(&format!("n{}", n.id.0)));
        }
        assert!(dot.contains("doubleoctagon")); // merge node rendered distinctly
    }
}
