//! Spec → graph translation.
//!
//! "The aim of the translator is to expose as much parallelism available in
//! the algorithm to the remainder of the DAnA workflow. ... the translator
//! (1) maintains the function boundaries, especially between the merge
//! function and parallelizable portions of the update rule, and (2)
//! automatically infers dimensionality of nodes and edges in the graph."
//! (§4.4) — (2) already ran in the DSL layer; this pass materializes the
//! graph, the explicit merge node, and the region split.

use std::collections::HashMap;

use dana_dsl::{AlgoSpec, DataKind, OpKind, VarId};

use crate::graph::{ConvergenceBinding, HNode, HOp, Hdfg, MergeInfo, ModelBinding, NodeId, Region};

/// Translates a validated [`AlgoSpec`] into its [`Hdfg`].
pub fn translate(spec: &AlgoSpec) -> Hdfg {
    let mut nodes: Vec<HNode> = Vec::new();
    let mut of_var: HashMap<VarId, NodeId> = HashMap::new();

    let push = |nodes: &mut Vec<HNode>, op, inputs, dims, region, name: String| {
        let id = NodeId(nodes.len() as u32);
        nodes.push(HNode {
            id,
            op,
            inputs,
            dims,
            region,
            name,
        });
        id
    };

    // Leaves for every declared (non-inter) variable, in declaration order.
    for v in &spec.vars {
        if v.kind == DataKind::Inter {
            continue;
        }
        let id = push(
            &mut nodes,
            HOp::Leaf {
                var: v.id,
                kind: v.kind,
            },
            Vec::new(),
            v.dims.clone(),
            Region::PerTuple,
            v.name.clone(),
        );
        of_var.insert(v.id, id);
    }

    let boundary = spec
        .merge
        .as_ref()
        .map(|m| m.boundary)
        .unwrap_or(usize::MAX);
    let mut merge_info: Option<MergeInfo> = None;

    for (idx, stmt) in spec.stmts.iter().enumerate() {
        // Insert the explicit merge node exactly at the boundary.
        if idx == boundary {
            merge_info = Some(insert_merge(spec, &mut nodes, &mut of_var));
        }
        let region = if idx < boundary {
            Region::PerTuple
        } else {
            Region::PostMerge
        };
        let name = spec.var(stmt.target).name.clone();
        let dims = spec.var(stmt.target).dims.clone();
        let (op, inputs) = match &stmt.op {
            OpKind::Binary(b, x, y) => (HOp::Binary(*b), vec![of_var[x], of_var[y]]),
            OpKind::Unary(u, x) => (HOp::Unary(*u), vec![of_var[x]]),
            OpKind::Group(g, x, axis) => (HOp::Group(*g, *axis), vec![of_var[x]]),
            OpKind::Gather { matrix, index } => (HOp::Gather, vec![of_var[matrix], of_var[index]]),
            OpKind::Identity(x) => (HOp::Identity, vec![of_var[x]]),
            OpKind::Const(c) => (HOp::Const(*c), vec![]),
        };
        let id = push(&mut nodes, op, inputs, dims, region, name);
        of_var.insert(stmt.target, id);
    }
    // Merge boundary at the very end of the statement list.
    if boundary == spec.stmts.len() {
        merge_info = Some(insert_merge(spec, &mut nodes, &mut of_var));
    }

    let model_bindings = spec
        .model_updates
        .iter()
        .map(|mu| match mu {
            dana_dsl::ModelUpdate::Whole { model, source } => ModelBinding::Whole {
                model: *model,
                source: of_var[source],
            },
            dana_dsl::ModelUpdate::Row {
                model,
                index,
                source,
            } => ModelBinding::Row {
                model: *model,
                index: of_var[index],
                source: of_var[source],
            },
        })
        .collect();

    let convergence = ConvergenceBinding::from_spec(&spec.convergence, |v| of_var[&v]);

    let meta_values = spec
        .vars
        .iter()
        .filter(|v| v.kind == DataKind::Meta)
        .filter_map(|v| v.meta_value.as_ref().map(|m| (v.id, m.clone())))
        .collect();

    let g = Hdfg {
        name: spec.name.clone(),
        nodes,
        merge: merge_info,
        model_bindings,
        convergence,
        meta_values,
        input_width: spec.input_width(),
        output_width: spec.output_width(),
        model_elements: spec.model_elements(),
    };
    debug_assert_eq!(g.check(), Ok(()));
    g
}

fn insert_merge(
    spec: &AlgoSpec,
    nodes: &mut Vec<HNode>,
    of_var: &mut HashMap<VarId, NodeId>,
) -> MergeInfo {
    let m = spec
        .merge
        .as_ref()
        .expect("insert_merge called with a merge spec");
    let pre = of_var[&m.var];
    let dims = nodes[pre.0 as usize].dims.clone();
    let id = NodeId(nodes.len() as u32);
    nodes.push(HNode {
        id,
        op: HOp::Merge(m.op),
        inputs: vec![pre],
        dims,
        region: Region::PostMerge,
        name: format!("merge({})", nodes[pre.0 as usize].name),
    });
    // Downstream statements read the merged value.
    of_var.insert(m.var, id);
    MergeInfo {
        node: id,
        op: m.op,
        coef: m.coef,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Region;
    use dana_dsl::zoo::{
        linear_regression, logistic_regression, lrmf, svm, DenseParams, LrmfParams,
    };
    use dana_dsl::UnaryFn;

    #[test]
    fn regions_split_at_merge_boundary() {
        let spec = linear_regression(DenseParams {
            n_features: 10,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        // Per-tuple: leaves + mul, sigma, sub, mul.
        // Post-merge: merge, mul (lr*grad), sub (mo-up).
        let per_tuple_ops = g
            .region_nodes(Region::PerTuple)
            .filter(|n| !matches!(n.op, HOp::Leaf { .. }))
            .count();
        let post = g.region_nodes(Region::PostMerge).count();
        assert_eq!(per_tuple_ops, 4);
        assert_eq!(post, 3);
    }

    #[test]
    fn post_merge_reads_merged_value() {
        let spec = linear_regression(DenseParams::default()).unwrap();
        let g = translate(&spec);
        let merge_id = g.merge.unwrap().node;
        // Some post-merge node must consume the merge node directly.
        let consumed = g
            .region_nodes(Region::PostMerge)
            .any(|n| n.inputs.contains(&merge_id));
        assert!(consumed);
    }

    #[test]
    fn logistic_adds_one_sigmoid_node() {
        let spec = logistic_regression(DenseParams::default()).unwrap();
        let g = translate(&spec);
        let sigmoids = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HOp::Unary(UnaryFn::Sigmoid)))
            .count();
        assert_eq!(sigmoids, 1);
        // logistic is strictly more work per tuple than linear
        let lin = translate(&linear_regression(DenseParams::default()).unwrap());
        assert!(g.atomic_op_count(Region::PerTuple) > lin.atomic_op_count(Region::PerTuple));
    }

    #[test]
    fn svm_translates_comparison() {
        let spec = svm(DenseParams::default()).unwrap();
        let g = translate(&spec);
        assert!(g
            .nodes
            .iter()
            .any(|n| matches!(n.op, HOp::Binary(dana_dsl::BinOp::Lt))));
        g.check().unwrap();
    }

    #[test]
    fn lrmf_has_gathers_and_row_bindings() {
        let spec = lrmf(LrmfParams::default()).unwrap();
        let g = translate(&spec);
        let gathers = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HOp::Gather))
            .count();
        assert_eq!(gathers, 2);
        assert_eq!(g.model_bindings.len(), 2);
        assert!(g
            .model_bindings
            .iter()
            .all(|b| matches!(b, crate::graph::ModelBinding::Row { .. })));
    }

    #[test]
    fn merge_at_end_of_statements() {
        let spec = lrmf(LrmfParams::default()).unwrap();
        assert_eq!(spec.merge.as_ref().unwrap().boundary, spec.stmts.len());
        let g = translate(&spec);
        assert!(g.merge.is_some());
        // The merge node is the last node.
        assert_eq!(g.merge.unwrap().node.0 as usize, g.nodes.len() - 1);
    }

    #[test]
    fn convergence_condition_binds_to_node() {
        let src = r#"
            mo = model([4])
            in = input([4])
            out = output()
            cf = meta(0.5)
            s = sigma(mo * in, 1)
            er = s - out
            grad = er * in
            mo_up = mo - grad
            setModel(mo_up)
            n = norm(grad, 1)
            conv = n < cf
            setConvergence(conv, 77)
        "#;
        let spec = dana_dsl::parse_udf(src, "t").unwrap();
        let g = translate(&spec);
        match g.convergence {
            ConvergenceBinding::Condition { node, max_epochs } => {
                assert_eq!(max_epochs, 77);
                assert!(matches!(g.node(node).op, HOp::Binary(dana_dsl::BinOp::Lt)));
            }
            other => panic!("expected condition, got {other:?}"),
        }
        assert_eq!(g.convergence.max_epochs(), 77);
    }

    #[test]
    fn widths_copied_from_spec() {
        let spec = linear_regression(DenseParams {
            n_features: 33,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        assert_eq!(g.input_width, 33);
        assert_eq!(g.output_width, 1);
        assert_eq!(g.model_elements, 33);
    }
}
