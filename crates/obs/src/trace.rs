//! The query-lifecycle trace: named stage spans accumulated through a
//! [`SpanRecorder`].
//!
//! A trace is a fixed vocabulary of stages under one implicit root —
//! `parse → admission_wait → lease → scan → engine → merge →
//! (materialize) → reply` — rather than a free-form span tree: the
//! *structure* (stage names, nesting, child counts) is a function of the
//! statement alone, so the serial and concurrent facades (and every gang
//! width) emit byte-identical shapes and only the recorded times differ.
//! Per-shard work aggregates into the `scan` stage's count; per-epoch
//! engine compute hangs off the `engine` stage as one child per epoch.
//!
//! Each stage carries two clocks, kept strictly apart (the same
//! discipline as `DanaTiming`): `sim_seconds` from the cycle model and
//! `wall_seconds` measured on the host. Stage sim seconds partition the
//! composed end-to-end total exactly — `EXPLAIN ANALYZE` asserts the
//! stage sum against the query report.

use std::sync::{Arc, Mutex};

/// One named stage (or per-epoch child) of a query's lifecycle.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    pub name: String,
    /// How many units of work the stage aggregated (shards for `scan`,
    /// epochs for `engine`, 1 otherwise).
    pub count: u64,
    /// Simulated seconds attributed to this stage (cycle model).
    pub sim_seconds: f64,
    /// Measured wall seconds attributed to this stage.
    pub wall_seconds: f64,
    pub children: Vec<TraceSpan>,
}

impl TraceSpan {
    fn new(name: &str) -> TraceSpan {
        TraceSpan {
            name: name.to_string(),
            count: 1,
            sim_seconds: 0.0,
            wall_seconds: 0.0,
            children: Vec::new(),
        }
    }
}

impl serde::Serialize for TraceSpan {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![
            ("name".to_string(), self.name.to_value()),
            ("count".to_string(), self.count.to_value()),
            ("sim_seconds".to_string(), self.sim_seconds.to_value()),
            ("wall_seconds".to_string(), self.wall_seconds.to_value()),
            (
                "children".to_string(),
                serde::json::Value::Arr(self.children.iter().map(|c| c.to_value()).collect()),
            ),
        ])
    }
}

impl serde::Deserialize for TraceSpan {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let obj = serde::json::as_obj(v, "TraceSpan")?;
        let children = serde::json::field(obj, "children", "TraceSpan")?
            .as_arr()
            .ok_or("expected array for TraceSpan.children")?
            .iter()
            .map(serde::Deserialize::from_value)
            .collect::<Result<_, _>>()?;
        Ok(TraceSpan {
            name: serde::Deserialize::from_value(serde::json::field(obj, "name", "TraceSpan")?)?,
            count: serde::Deserialize::from_value(serde::json::field(obj, "count", "TraceSpan")?)?,
            sim_seconds: serde::Deserialize::from_value(serde::json::field(
                obj,
                "sim_seconds",
                "TraceSpan",
            )?)?,
            wall_seconds: serde::Deserialize::from_value(serde::json::field(
                obj,
                "wall_seconds",
                "TraceSpan",
            )?)?,
            children,
        })
    }
}

/// A finished query trace: the ordered stage spans plus the end-to-end
/// totals they partition.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    pub stages: Vec<TraceSpan>,
    /// The query report's composed simulated total.
    pub total_sim_seconds: f64,
    /// End-to-end measured wall seconds.
    pub total_wall_seconds: f64,
}

impl QueryTrace {
    /// The sum of per-stage simulated seconds — held to the composed
    /// total by the `EXPLAIN ANALYZE` acceptance suite.
    pub fn stage_sim_sum(&self) -> f64 {
        self.stages.iter().map(|s| s.sim_seconds).sum()
    }

    pub fn stage(&self, name: &str) -> Option<&TraceSpan> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// The trace's *shape* — stage names, nesting, and counts, with no
    /// times. Two runs of the same statement must agree on this string
    /// whatever facade or gang width ran them.
    pub fn structure(&self) -> String {
        fn walk(span: &TraceSpan, depth: usize, out: &mut String) {
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!("{} x{}\n", span.name, span.count));
            for c in &span.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = String::from("query\n");
        for s in &self.stages {
            walk(s, 1, &mut out);
        }
        out
    }

    /// Renders the span tree with per-stage simulated and wall time —
    /// the `EXPLAIN ANALYZE` surface.
    pub fn render(&self) -> String {
        fn fmt_s(v: f64) -> String {
            if v == 0.0 {
                "-".to_string()
            } else if v < 1e-3 {
                format!("{:.1}us", v * 1e6)
            } else if v < 1.0 {
                format!("{:.3}ms", v * 1e3)
            } else {
                format!("{v:.4}s")
            }
        }
        fn walk(span: &TraceSpan, depth: usize, out: &mut String) {
            let label = format!("{}{} (x{})", "  ".repeat(depth), span.name, span.count);
            out.push_str(&format!(
                "{label:<34} sim {:>10}  wall {:>10}\n",
                fmt_s(span.sim_seconds),
                fmt_s(span.wall_seconds)
            ));
            for c in &span.children {
                walk(c, depth + 1, out);
            }
        }
        let mut out = format!(
            "query                              sim {:>10}  wall {:>10}\n",
            fmt_s(self.total_sim_seconds),
            fmt_s(self.total_wall_seconds)
        );
        for s in &self.stages {
            walk(s, 1, &mut out);
        }
        out
    }
}

impl serde::Serialize for QueryTrace {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![
            (
                "stages".to_string(),
                serde::json::Value::Arr(self.stages.iter().map(|s| s.to_value()).collect()),
            ),
            (
                "total_sim_seconds".to_string(),
                self.total_sim_seconds.to_value(),
            ),
            (
                "total_wall_seconds".to_string(),
                self.total_wall_seconds.to_value(),
            ),
        ])
    }
}

impl serde::Deserialize for QueryTrace {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let obj = serde::json::as_obj(v, "QueryTrace")?;
        let stages = serde::json::field(obj, "stages", "QueryTrace")?
            .as_arr()
            .ok_or("expected array for QueryTrace.stages")?
            .iter()
            .map(serde::Deserialize::from_value)
            .collect::<Result<_, _>>()?;
        Ok(QueryTrace {
            stages,
            total_sim_seconds: serde::Deserialize::from_value(serde::json::field(
                obj,
                "total_sim_seconds",
                "QueryTrace",
            )?)?,
            total_wall_seconds: serde::Deserialize::from_value(serde::json::field(
                obj,
                "total_wall_seconds",
                "QueryTrace",
            )?)?,
        })
    }
}

/// The span accumulator threaded through both facades' execution paths.
///
/// Stages are upserted by name: the first touch fixes a stage's position
/// in the trace, later touches add time/counts onto it — so a facade can
/// pre-register the lifecycle skeleton (`parse`, `admission_wait`,
/// `lease`) in order and let the shared `exec` assembly helpers fill the
/// execution stages in.
///
/// A disabled recorder is a `None`; every method is a branch-and-return
/// no-op with no lock and no allocation (pay-for-what-you-use).
#[derive(Debug, Clone, Default)]
pub struct SpanRecorder(Option<Arc<Mutex<Vec<TraceSpan>>>>);

impl SpanRecorder {
    /// The no-op recorder untraced queries run with.
    pub fn disabled() -> SpanRecorder {
        SpanRecorder(None)
    }

    /// A live recorder for one traced query.
    pub fn enabled() -> SpanRecorder {
        SpanRecorder(Some(Arc::new(Mutex::new(Vec::new()))))
    }

    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    fn with_stage(&self, name: &str, f: impl FnOnce(&mut TraceSpan)) {
        let Some(buf) = &self.0 else { return };
        let mut stages = match buf.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if let Some(span) = stages.iter_mut().find(|s| s.name == name) {
            f(span);
        } else {
            let mut span = TraceSpan::new(name);
            f(&mut span);
            stages.push(span);
        }
    }

    /// Ensures a stage exists (ordering anchor), adding nothing to it.
    pub fn stage(&self, name: &str) {
        self.with_stage(name, |_| {});
    }

    /// Adds simulated seconds onto a stage.
    pub fn add_sim(&self, name: &str, seconds: f64) {
        self.with_stage(name, |s| s.sim_seconds += seconds);
    }

    /// Adds measured wall seconds onto a stage.
    pub fn add_wall(&self, name: &str, seconds: f64) {
        self.with_stage(name, |s| s.wall_seconds += seconds);
    }

    /// Sets a stage's aggregated work count (shards, epochs).
    pub fn set_count(&self, name: &str, count: u64) {
        self.with_stage(name, |s| s.count = count);
    }

    /// Appends a child span (e.g. one engine epoch) under a stage.
    pub fn child(&self, parent: &str, name: &str, sim_seconds: f64) {
        self.with_stage(parent, |s| {
            let mut c = TraceSpan::new(name);
            c.sim_seconds = sim_seconds;
            s.children.push(c);
        });
    }

    /// Closes the trace: drains the recorded stages into a
    /// [`QueryTrace`] carrying the end-to-end totals. Returns `None` on
    /// a disabled recorder. The recorder is left empty and reusable.
    pub fn finish(&self, total_sim_seconds: f64, total_wall_seconds: f64) -> Option<QueryTrace> {
        let buf = self.0.as_ref()?;
        let stages = {
            let mut g = match buf.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            std::mem::take(&mut *g)
        };
        Some(QueryTrace {
            stages,
            total_sim_seconds,
            total_wall_seconds,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_a_noop() {
        let rec = SpanRecorder::disabled();
        assert!(!rec.is_enabled());
        rec.stage("parse");
        rec.add_sim("engine", 1.0);
        rec.child("engine", "epoch", 0.5);
        assert!(rec.finish(1.0, 0.1).is_none());
    }

    #[test]
    fn stages_keep_first_touch_order_and_accumulate() {
        let rec = SpanRecorder::enabled();
        rec.stage("parse");
        rec.stage("admission_wait");
        rec.stage("lease");
        rec.add_sim("lease", 0.03);
        rec.add_sim("scan", 0.2);
        rec.set_count("scan", 4);
        rec.add_sim("engine", 0.5);
        rec.add_sim("engine", 0.5);
        rec.set_count("engine", 2);
        rec.child("engine", "epoch", 0.5);
        rec.child("engine", "epoch", 0.5);
        rec.add_wall("parse", 0.001);
        let trace = rec.finish(1.23, 0.01).unwrap();
        let names: Vec<&str> = trace.stages.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            vec!["parse", "admission_wait", "lease", "scan", "engine"]
        );
        assert_eq!(trace.stage("engine").unwrap().sim_seconds, 1.0);
        assert_eq!(trace.stage("engine").unwrap().children.len(), 2);
        assert_eq!(trace.stage("scan").unwrap().count, 4);
        assert_eq!(trace.total_sim_seconds, 1.23);
        // The recorder drained: a second finish is an empty trace.
        assert!(rec.finish(0.0, 0.0).unwrap().stages.is_empty());
    }

    #[test]
    fn structure_ignores_times_but_keeps_counts_and_nesting() {
        let a = SpanRecorder::enabled();
        let b = SpanRecorder::enabled();
        for (i, rec) in [&a, &b].into_iter().enumerate() {
            rec.stage("parse");
            rec.add_sim("scan", 1.0 + 8.0 * i as f64);
            rec.set_count("scan", 2);
            rec.child("engine", "epoch", 0.1);
        }
        let ta = a.finish(1.0, 0.0).unwrap();
        let tb = b.finish(99.0, 5.0).unwrap();
        assert_eq!(ta.structure(), tb.structure());
        assert!(ta.structure().contains("scan x2"));
        assert!(ta.structure().contains("  epoch x1"));
    }

    #[test]
    fn render_shows_stage_times() {
        let rec = SpanRecorder::enabled();
        rec.add_sim("engine", 0.25);
        rec.add_wall("parse", 0.0005);
        let trace = rec.finish(0.3, 0.001).unwrap();
        let text = trace.render();
        assert!(text.contains("engine"), "render:\n{text}");
        assert!(text.contains("250.000ms"), "render:\n{text}");
        let sum = trace.stage_sim_sum();
        assert!((sum - 0.25).abs() < 1e-12);
    }

    #[test]
    fn trace_serde_roundtrip() {
        let rec = SpanRecorder::enabled();
        rec.add_sim("scan", 0.5);
        rec.child("engine", "epoch", 0.1);
        let trace = rec.finish(0.6, 0.01).unwrap();
        let json = serde_json::to_string(&trace).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
