//! Lock-cheap metric primitives and the serializable stats snapshot.
//!
//! Recording is always a handful of relaxed atomic operations — no lock,
//! no allocation — so subsystems can charge metrics from their hot paths
//! (admission pop, lease grant, worker completion) without perturbing
//! the latencies they measure. Reading happens only at `SHOW STATS`
//! time, where each primitive folds into [`StatEntry`] rows.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins float value (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0f64.to_bits()))
    }

    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Linear sub-buckets per power of two: 2^4 = 16 keeps the worst-case
/// relative quantile error at 1/16 ≈ 6.3%.
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
/// Values are recorded in whole microseconds; 64 powers of two cover
/// every representable duration.
const BUCKETS: usize = 64 * SUBS;

/// A log-bucketed latency histogram (HdrHistogram-style: log2 major
/// buckets, 16 linear sub-buckets each). Recording is one relaxed
/// `fetch_add`; quantile readout walks the bucket array.
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .finish()
    }
}

/// One histogram's folded readout.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub mean_seconds: f64,
    pub max_seconds: f64,
    pub p50_seconds: f64,
    pub p95_seconds: f64,
    pub p99_seconds: f64,
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Records one latency in seconds.
    pub fn record(&self, seconds: f64) {
        let micros = if seconds <= 0.0 {
            0
        } else {
            (seconds * 1e6).round() as u64
        };
        self.counts[Self::index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The bucket a microsecond value lands in: values below 2^SUB_BITS
    /// are exact; above, the top SUB_BITS bits after the leading one pick
    /// the linear sub-bucket within the value's power of two.
    fn index(micros: u64) -> usize {
        if micros < SUBS as u64 {
            return micros as usize;
        }
        let top = 63 - micros.leading_zeros();
        let sub = ((micros >> (top - SUB_BITS)) & (SUBS as u64 - 1)) as usize;
        ((top - SUB_BITS + 1) as usize) * SUBS + sub
    }

    /// The representative (midpoint) microsecond value for a bucket.
    fn bucket_value(idx: usize) -> f64 {
        if idx < SUBS {
            return idx as f64;
        }
        let major = (idx / SUBS) as u32 + SUB_BITS - 1;
        let sub = (idx % SUBS) as u64;
        let base = (SUBS as u64 + sub) << (major - SUB_BITS);
        let width = 1u64 << (major - SUB_BITS);
        base as f64 + width as f64 / 2.0
    }

    /// The value at quantile `q` (0.0–1.0), in seconds. Accurate to the
    /// bucket resolution (≈6%); exact below 16 µs.
    pub fn quantile(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Self::bucket_value(i) / 1e6;
            }
        }
        self.max_micros.load(Ordering::Relaxed) as f64 / 1e6
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        let mean = if count == 0 {
            0.0
        } else {
            self.sum_micros.load(Ordering::Relaxed) as f64 / count as f64 / 1e6
        };
        HistogramSnapshot {
            count,
            mean_seconds: mean,
            max_seconds: self.max_micros.load(Ordering::Relaxed) as f64 / 1e6,
            p50_seconds: self.quantile(0.50),
            p95_seconds: self.quantile(0.95),
            p99_seconds: self.quantile(0.99),
        }
    }
}

/// The push-side metrics both facades charge as queries complete. The
/// pull-side values (queue depth, pool utilization, buffer-pool and
/// session stats) are read from their authoritative owners at snapshot
/// time instead of being mirrored here — `SHOW STATS` can never drift
/// from what `pool_utilization()`/`queue_stats()` report.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Wall seconds a query waited in the admission queue.
    pub admission_wait: Histogram,
    /// Wall seconds a worker waited to acquire its (gang) lease.
    pub lease_wait: Histogram,
    /// Wall seconds a query spent executing on a worker.
    pub exec_wall: Histogram,
    pub queries_completed: Counter,
    pub queries_failed: Counter,
    /// Backend split: queries the FPGA tier ran vs. the native CPU tier.
    pub fpga_queries: Counter,
    pub cpu_queries: Counter,
    /// Training epochs executed across all queries.
    pub epochs_run: Counter,
    /// Accelerators + prediction tables invalidated by DDL (drops).
    pub staleness_invalidations: Counter,
    /// Transient accelerator faults observed (injected or reported).
    pub transient_faults: Counter,
    /// Retries performed, each warm-started from the last epoch snapshot.
    pub fault_retries: Counter,
    /// Queries that hit their deadline during execution.
    pub deadline_exceeded: Counter,
    /// Gang members that faulted mid-training.
    pub gang_member_faults: Counter,
    /// Failed shards re-executed on a surviving gang member.
    pub shard_reexecutions: Counter,
    /// Panicking dispatches caught and turned into typed replies.
    pub panics_caught: Counter,
    // ---- online serving tier ------------------------------------------
    /// Wall seconds per point-PREDICT, submit to reply.
    pub point_latency: Histogram,
    /// Rows per coalesced batcher dispatch (occupancy histogram — the
    /// recorded "seconds" are row counts; read the `_count`/`_p*` rows
    /// as rows, not time).
    pub batch_occupancy: Histogram,
    /// Point queries served.
    pub point_queries: Counter,
    /// Coalesced batcher dispatches issued.
    pub coalesced_dispatches: Counter,
    /// Prediction-cache hits / misses / entries flushed by invalidation.
    pub prediction_cache_hits: Counter,
    pub prediction_cache_misses: Counter,
    pub prediction_cache_invalidations: Counter,
    // ---- pushdown scan tier -------------------------------------------
    /// Queries that ran with a pushdown scan spec (WHERE / COLUMNS).
    pub scan_queries: Counter,
    /// Pages zone-map-pruned without a fetch, across all pushdown scans.
    pub scan_pages_skipped: Counter,
    /// Reconstructed page bytes the decompressor produced.
    pub scan_bytes_decompressed: Counter,
    /// Rows in the scanned ranges before filtering (the selectivity
    /// denominator).
    pub scan_rows_considered: Counter,
    /// Rows that survived predicates and reached the engine.
    pub scan_rows_emitted: Counter,
    /// Raw vs. compressed sidecar bytes behind those scans (the
    /// compression-ratio numerator and denominator).
    pub scan_raw_bytes: Counter,
    pub scan_compressed_bytes: Counter,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Folds the registry into snapshot rows, tagged by subsystem.
    pub fn snapshot_into(&self, out: &mut Vec<StatEntry>) {
        let hist = |out: &mut Vec<StatEntry>, subsystem: &str, prefix: &str, h: &Histogram| {
            let s = h.snapshot();
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_count"),
                s.count as f64,
            ));
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_mean_s"),
                s.mean_seconds,
            ));
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_p50_s"),
                s.p50_seconds,
            ));
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_p95_s"),
                s.p95_seconds,
            ));
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_p99_s"),
                s.p99_seconds,
            ));
            out.push(StatEntry::new(
                subsystem,
                format!("{prefix}_max_s"),
                s.max_seconds,
            ));
        };
        hist(out, "admission", "wait", &self.admission_wait);
        hist(out, "pool", "lease_wait", &self.lease_wait);
        hist(out, "engine", "exec_wall", &self.exec_wall);
        out.push(StatEntry::new(
            "engine",
            "queries_completed",
            self.queries_completed.get() as f64,
        ));
        out.push(StatEntry::new(
            "engine",
            "queries_failed",
            self.queries_failed.get() as f64,
        ));
        out.push(StatEntry::new(
            "engine",
            "fpga_queries",
            self.fpga_queries.get() as f64,
        ));
        out.push(StatEntry::new(
            "engine",
            "cpu_queries",
            self.cpu_queries.get() as f64,
        ));
        out.push(StatEntry::new(
            "engine",
            "epochs_run",
            self.epochs_run.get() as f64,
        ));
        out.push(StatEntry::new(
            "engine",
            "staleness_invalidations",
            self.staleness_invalidations.get() as f64,
        ));
        let faults: &[(&str, &Counter)] = &[
            ("transient_faults", &self.transient_faults),
            ("retries", &self.fault_retries),
            ("deadline_exceeded", &self.deadline_exceeded),
            ("gang_member_faults", &self.gang_member_faults),
            ("shard_reexecutions", &self.shard_reexecutions),
            ("panics_caught", &self.panics_caught),
        ];
        for (name, c) in faults {
            out.push(StatEntry::new("faults", *name, c.get() as f64));
        }
        hist(out, "serving", "point_latency", &self.point_latency);
        hist(out, "serving", "batch_occupancy", &self.batch_occupancy);
        let serving: &[(&str, &Counter)] = &[
            ("point_queries", &self.point_queries),
            ("coalesced_dispatches", &self.coalesced_dispatches),
            ("cache_hits", &self.prediction_cache_hits),
            ("cache_misses", &self.prediction_cache_misses),
            ("cache_invalidations", &self.prediction_cache_invalidations),
        ];
        for (name, c) in serving {
            out.push(StatEntry::new("serving", *name, c.get() as f64));
        }
        let scan: &[(&str, &Counter)] = &[
            ("queries", &self.scan_queries),
            ("pages_skipped", &self.scan_pages_skipped),
            ("bytes_decompressed", &self.scan_bytes_decompressed),
            ("rows_considered", &self.scan_rows_considered),
            ("rows_emitted", &self.scan_rows_emitted),
            ("raw_bytes", &self.scan_raw_bytes),
            ("compressed_bytes", &self.scan_compressed_bytes),
        ];
        for (name, c) in scan {
            out.push(StatEntry::new("scan", *name, c.get() as f64));
        }
        // Derived gauges, guarded against empty denominators.
        let compressed = self.scan_compressed_bytes.get();
        out.push(StatEntry::new(
            "scan",
            "compression_ratio",
            if compressed == 0 {
                0.0
            } else {
                self.scan_raw_bytes.get() as f64 / compressed as f64
            },
        ));
        let considered = self.scan_rows_considered.get();
        out.push(StatEntry::new(
            "scan",
            "selectivity",
            if considered == 0 {
                0.0
            } else {
                self.scan_rows_emitted.get() as f64 / considered as f64
            },
        ));
    }
}

/// One `SHOW STATS` row: `(subsystem, name, value)`.
#[derive(Debug, Clone, PartialEq)]
pub struct StatEntry {
    pub subsystem: String,
    pub name: String,
    pub value: f64,
}

impl StatEntry {
    pub fn new(subsystem: &str, name: impl Into<String>, value: f64) -> StatEntry {
        StatEntry {
            subsystem: subsystem.to_string(),
            name: name.into(),
            value,
        }
    }
}

impl serde::Serialize for StatEntry {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![
            ("subsystem".to_string(), self.subsystem.to_value()),
            ("name".to_string(), self.name.to_value()),
            ("value".to_string(), self.value.to_value()),
        ])
    }
}

impl serde::Deserialize for StatEntry {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let obj = serde::json::as_obj(v, "StatEntry")?;
        Ok(StatEntry {
            subsystem: serde::Deserialize::from_value(serde::json::field(
                obj,
                "subsystem",
                "StatEntry",
            )?)?,
            name: serde::Deserialize::from_value(serde::json::field(obj, "name", "StatEntry")?)?,
            value: serde::Deserialize::from_value(serde::json::field(obj, "value", "StatEntry")?)?,
        })
    }
}

/// The registry snapshot `SHOW STATS` returns: a flat result table of
/// `(subsystem, name, value)` rows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    pub entries: Vec<StatEntry>,
}

impl StatsSnapshot {
    pub fn new(entries: Vec<StatEntry>) -> StatsSnapshot {
        StatsSnapshot { entries }
    }

    /// The rows of one subsystem only.
    pub fn filtered(&self, subsystem: &str) -> StatsSnapshot {
        StatsSnapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.subsystem == subsystem)
                .cloned()
                .collect(),
        }
    }

    /// Looks up one gauge/counter value.
    pub fn get(&self, subsystem: &str, name: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.subsystem == subsystem && e.name == name)
            .map(|e| e.value)
    }

    /// Renders the snapshot as an aligned result table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let sub_w = self
            .entries
            .iter()
            .map(|e| e.subsystem.len())
            .chain(["subsystem".len()])
            .max()
            .unwrap_or(9);
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .chain(["name".len()])
            .max()
            .unwrap_or(4);
        out.push_str(&format!(
            "{:<sub_w$}  {:<name_w$}  value\n",
            "subsystem", "name"
        ));
        for e in &self.entries {
            out.push_str(&format!(
                "{:<sub_w$}  {:<name_w$}  {}\n",
                e.subsystem,
                e.name,
                format_value(e.value)
            ));
        }
        out
    }
}

fn format_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl serde::Serialize for StatsSnapshot {
    fn to_value(&self) -> serde::json::Value {
        serde::json::Value::Obj(vec![(
            "entries".to_string(),
            serde::json::Value::Arr(self.entries.iter().map(|e| e.to_value()).collect()),
        )])
    }
}

impl serde::Deserialize for StatsSnapshot {
    fn from_value(v: &serde::json::Value) -> Result<Self, String> {
        let obj = serde::json::as_obj(v, "StatsSnapshot")?;
        let arr = serde::json::field(obj, "entries", "StatsSnapshot")?
            .as_arr()
            .ok_or("expected array for StatsSnapshot.entries")?;
        Ok(StatsSnapshot {
            entries: arr
                .iter()
                .map(serde::Deserialize::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(0.75);
        assert_eq!(g.get(), 0.75);
    }

    #[test]
    fn histogram_quantiles_within_bucket_resolution() {
        let h = Histogram::new();
        // 1..=1000 ms, uniformly.
        for ms in 1..=1000u64 {
            h.record(ms as f64 / 1e3);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        // Log-bucket resolution is 1/16 ≈ 6.3%; allow 8%.
        let close = |got: f64, want: f64| (got - want).abs() <= want * 0.08;
        assert!(close(s.p50_seconds, 0.500), "p50 = {}", s.p50_seconds);
        assert!(close(s.p95_seconds, 0.950), "p95 = {}", s.p95_seconds);
        assert!(close(s.p99_seconds, 0.990), "p99 = {}", s.p99_seconds);
        assert!(close(s.mean_seconds, 0.5005), "mean = {}", s.mean_seconds);
        assert!(close(s.max_seconds, 1.0), "max = {}", s.max_seconds);
    }

    #[test]
    fn histogram_small_values_are_exact() {
        let h = Histogram::new();
        for us in [1u64, 2, 3, 10] {
            h.record(us as f64 / 1e6);
        }
        assert_eq!(h.quantile(0.5), 2.0 / 1e6);
        assert_eq!(h.quantile(1.0), 10.0 / 1e6);
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.p99_seconds, 0.0);
        assert_eq!(s.mean_seconds, 0.0);
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        for micros in (0..1_000_000u64).step_by(997) {
            let idx = Histogram::index(micros);
            assert!(idx >= last, "index must not decrease at {micros}");
            last = idx;
            assert!(idx < BUCKETS);
        }
    }

    #[test]
    fn registry_snapshot_tags_subsystems() {
        let r = MetricsRegistry::new();
        r.epochs_run.add(25);
        r.fpga_queries.inc();
        r.admission_wait.record(0.002);
        let mut entries = Vec::new();
        r.snapshot_into(&mut entries);
        let snap = StatsSnapshot::new(entries);
        assert_eq!(snap.get("engine", "epochs_run"), Some(25.0));
        assert_eq!(snap.get("engine", "fpga_queries"), Some(1.0));
        assert_eq!(snap.get("admission", "wait_count"), Some(1.0));
        assert_eq!(snap.get("admission", "nope"), None);
        let filtered = snap.filtered("admission");
        assert!(filtered.entries.iter().all(|e| e.subsystem == "admission"));
        assert!(!filtered.entries.is_empty());
        let table = snap.render_table();
        assert!(table.contains("epochs_run"), "table:\n{table}");
    }

    #[test]
    fn snapshot_serde_roundtrip() {
        let snap = StatsSnapshot::new(vec![
            StatEntry::new("pool", "utilization", 0.5),
            StatEntry::new("admission", "depth", 3.0),
        ]);
        let json = serde_json::to_string(&snap).unwrap();
        let back: StatsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
