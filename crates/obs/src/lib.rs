//! # dana-obs — the observability layer
//!
//! Everything the system exposes about *itself* funnels through this
//! crate, in two halves:
//!
//! * a **metrics registry** ([`MetricsRegistry`]) of lock-cheap
//!   primitives — [`Counter`], [`Gauge`], and the log-bucketed
//!   [`Histogram`] with p50/p95/p99 readout — that the serving tier
//!   records into on the hot path and snapshots into a serializable
//!   [`StatsSnapshot`] for `SHOW STATS`;
//! * a **query-lifecycle trace** ([`QueryTrace`]) of named stage spans
//!   (parse → admission wait → lease → scan → engine → merge →
//!   materialize → reply), accumulated through a [`SpanRecorder`] that
//!   both the serial `Dana` facade and the concurrent server worker
//!   thread through the shared `dana::exec` assembly helpers — so the
//!   two facades emit structurally identical traces for `EXPLAIN
//!   ANALYZE` and `WITH (trace = on)`.
//!
//! The recorder is pay-for-what-you-use: a disabled [`SpanRecorder`] is
//! a `None` and every call on it is a no-op — queries that don't opt in
//! never touch a lock or an allocation.

pub mod metrics;
pub mod trace;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry};
pub use metrics::{StatEntry, StatsSnapshot};
pub use trace::{QueryTrace, SpanRecorder, TraceSpan};

/// The subsystems `SHOW STATS ('<subsystem>')` can filter on. A name
/// outside this list is a typed query error at parse time.
pub const SUBSYSTEMS: &[&str] = &[
    "admission",
    "pool",
    "buffer",
    "sessions",
    "engine",
    "faults",
    "serving",
    "scan",
];

/// Whether `name` is a known stats subsystem.
pub fn known_subsystem(name: &str) -> bool {
    SUBSYSTEMS.contains(&name)
}
