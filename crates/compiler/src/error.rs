//! Compiler error types.

use std::fmt;

/// Errors from scheduling or hardware generation.
#[derive(Debug, Clone, PartialEq)]
pub enum CompilerError {
    /// Per-AU scratchpad slots exhausted during allocation.
    OutOfSlots { au: u16, slots: u16 },
    /// A model variable is used both elementwise and via gather.
    MixedModelUse(String),
    /// An indexed (gathered) model must be rank-2.
    BadIndexedModel(String),
    /// The FPGA cannot host even a single-thread design.
    InsufficientResources(String),
    /// The engine rejected the generated design (scheduler bug surfaced).
    EngineRejected(String),
    /// Unsupported graph shape.
    Unsupported(String),
}

impl fmt::Display for CompilerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompilerError::OutOfSlots { au, slots } => {
                write!(f, "AU {au} exhausted its {slots} scratchpad slots")
            }
            CompilerError::MixedModelUse(name) => {
                write!(f, "model '{name}' is used both elementwise and via lookup")
            }
            CompilerError::BadIndexedModel(name) => {
                write!(f, "gathered model '{name}' must be rank-2")
            }
            CompilerError::InsufficientResources(msg) => {
                write!(f, "insufficient FPGA resources: {msg}")
            }
            CompilerError::EngineRejected(msg) => {
                write!(f, "generated design rejected by engine: {msg}")
            }
            CompilerError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for CompilerError {}

pub type CompilerResult<T> = Result<T, CompilerError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompilerError::OutOfSlots { au: 3, slots: 128 };
        assert!(e.to_string().contains("AU 3"));
        assert!(CompilerError::MixedModelUse("mo".into())
            .to_string()
            .contains("mo"));
    }
}
