//! The static scheduler: hDFG sub-nodes → AU/AC micro-instruction schedule.
//!
//! "The compiler schedules, maps, and generates the micro-instructions for
//! both ACs and AUs for each sub-node in the hDFG. ... Elementary and
//! non-linear operation nodes are spread across as many AUs as required by
//! the dimensionality of the operation. ... Group operations exhibit data
//! dependencies, hence, they are mapped to minimize the communication
//! cost." (§6.2)
//!
//! Mapping strategy:
//!
//! * every value element `e` of every node lives at AU `e mod AUs` — so
//!   aligned elementwise operands are cluster-local for free;
//! * scalar (and shape-broadcast) operands that cross cluster boundaries
//!   are staged with explicit `Mov` transfers on the inter-AC bus, cached
//!   per (source, cluster) so repeated consumers pay once (slots are
//!   static-single-assignment within the per-tuple program, so staged
//!   copies stay valid);
//! * reductions run in two phases: parallel per-AU chains (all AUs busy
//!   every cycle), then a cluster-aware pairwise tree with bus-limited
//!   cross-cluster hops — the communication-minimizing mapping the paper
//!   prescribes for group operations;
//! * `meta` constants fold into immediate operands; constant subexpressions
//!   fold at compile time.

use std::collections::HashMap;

use dana_dsl::{BinOp, DataKind, GroupOp, UnaryFn, VarId};
use dana_engine::engine::ModelDesc;
use dana_engine::{
    AluOp, ConvergenceCheck, EngineDesign, EngineProgram, Loc, MergePlan, MicroOp, ModelWrite, Src,
    Step, AUS_PER_AC,
};
use dana_hdfg::{HNode, HOp, Hdfg, NodeId, Region};

use crate::error::{CompilerError, CompilerResult};

/// Architecture parameters chosen by the hardware generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleParams {
    pub num_threads: u16,
    pub acs_per_thread: u16,
    pub slots_per_au: u16,
    /// Distinct cross-cluster sources the inter-AC bus carries per step.
    pub bus_lanes: u16,
}

impl ScheduleParams {
    pub fn aus(&self) -> u16 {
        self.acs_per_thread * AUS_PER_AC
    }
}

/// Where a node's value lives.
#[derive(Debug, Clone)]
enum Binding {
    /// One scratchpad location per element.
    Locs(Vec<Loc>),
    /// Compile-time constants (meta variables, folded subexpressions).
    Consts(Vec<f32>),
    /// A row-indexed model in model memory (LRMF).
    ModelRef(u8),
}

struct Sched<'a> {
    g: &'a Hdfg,
    p: ScheduleParams,
    slot_next: Vec<u16>,
    bind: HashMap<NodeId, Binding>,
    per_tuple: Vec<Step>,
    post_merge: Vec<Step>,
    /// (source loc, destination cluster) → staged copy. Cleared at the
    /// region boundary: copies made pre-merge hold un-merged values and
    /// must not satisfy post-merge reads.
    stage_cache: HashMap<(Loc, u16), Loc>,
    cur_region: Region,
    input_slots: Vec<Loc>,
    output_slots: Vec<Loc>,
    models: Vec<ModelDesc>,
    model_of_var: HashMap<VarId, u8>,
}

/// Schedules `g` onto the fabric described by `p`, producing a complete
/// [`EngineDesign`].
pub fn schedule_hdfg(g: &Hdfg, p: ScheduleParams) -> CompilerResult<EngineDesign> {
    assert!(p.num_threads >= 1 && p.acs_per_thread >= 1);
    let mut s = Sched {
        g,
        p,
        slot_next: vec![0; p.aus() as usize],
        bind: HashMap::new(),
        per_tuple: Vec::new(),
        post_merge: Vec::new(),
        stage_cache: HashMap::new(),
        cur_region: Region::PerTuple,
        input_slots: Vec::new(),
        output_slots: Vec::new(),
        models: Vec::new(),
        model_of_var: HashMap::new(),
    };
    s.allocate_leaves()?;
    for node in &g.nodes {
        if matches!(node.op, HOp::Leaf { .. }) {
            continue;
        }
        if node.region != s.cur_region {
            s.stage_cache.clear();
            s.cur_region = node.region;
        }
        s.emit_node(node)?;
    }
    s.finish()
}

impl<'a> Sched<'a> {
    fn aus(&self) -> u16 {
        self.p.aus()
    }

    fn alloc_slot(&mut self, au: u16) -> CompilerResult<u16> {
        let next = self.slot_next[au as usize];
        if next >= self.p.slots_per_au {
            return Err(CompilerError::OutOfSlots {
                au,
                slots: self.p.slots_per_au,
            });
        }
        self.slot_next[au as usize] = next + 1;
        Ok(next)
    }

    /// Allocates `n` elements round-robin across AUs.
    fn alloc_vec(&mut self, n: usize) -> CompilerResult<Vec<Loc>> {
        let aus = self.aus();
        (0..n)
            .map(|e| {
                let au = (e % aus as usize) as u16;
                Ok(Loc::new(au, self.alloc_slot(au)?))
            })
            .collect()
    }

    /// True if `var`'s leaf is consumed only by `Gather` nodes (and model
    /// bindings) — the row-indexed model class.
    fn classify_models(&self) -> CompilerResult<HashMap<VarId, bool>> {
        let mut leaf_of: HashMap<VarId, NodeId> = HashMap::new();
        for n in &self.g.nodes {
            if let HOp::Leaf {
                var,
                kind: DataKind::Model,
            } = n.op
            {
                leaf_of.insert(var, n.id);
            }
        }
        let mut indexed: HashMap<VarId, bool> = HashMap::new();
        for (var, leaf) in &leaf_of {
            let mut gathered = false;
            let mut elementwise = false;
            for n in &self.g.nodes {
                if !n.inputs.contains(leaf) {
                    continue;
                }
                match n.op {
                    HOp::Gather if n.inputs.first() == Some(leaf) => gathered = true,
                    _ => elementwise = true,
                }
            }
            if gathered && elementwise {
                let name = &self.g.node(*leaf).name;
                return Err(CompilerError::MixedModelUse(name.clone()));
            }
            indexed.insert(*var, gathered);
        }
        Ok(indexed)
    }

    fn allocate_leaves(&mut self) -> CompilerResult<()> {
        let indexed = self.classify_models()?;
        // Iterate nodes in order: translate() emitted leaves in declaration
        // order, which fixes the tuple-value layout (inputs then outputs).
        let leaves: Vec<HNode> = self
            .g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, HOp::Leaf { .. }))
            .cloned()
            .collect();
        for node in leaves {
            let HOp::Leaf { var, kind } = node.op else {
                unreachable!()
            };
            match kind {
                DataKind::Input => {
                    let locs = self.alloc_vec(node.dims.elements())?;
                    self.input_slots.extend(locs.iter().copied());
                    self.bind.insert(node.id, Binding::Locs(locs));
                }
                DataKind::Output => {
                    let locs = self.alloc_vec(node.dims.elements())?;
                    self.output_slots.extend(locs.iter().copied());
                    self.bind.insert(node.id, Binding::Locs(locs));
                }
                DataKind::Meta => {
                    let values = self.meta_values(var).ok_or_else(|| {
                        CompilerError::Unsupported(format!("meta '{}' has no value", node.name))
                    })?;
                    self.bind.insert(node.id, Binding::Consts(values));
                }
                DataKind::Model => {
                    let idx = self.models.len() as u8;
                    if indexed.get(&var).copied().unwrap_or(false) {
                        if node.dims.rank() != 2 {
                            return Err(CompilerError::BadIndexedModel(node.name.clone()));
                        }
                        self.models.push(ModelDesc {
                            name: node.name.clone(),
                            rows: node.dims.0[0],
                            cols: node.dims.0[1],
                            broadcast_slots: None,
                        });
                        self.bind.insert(node.id, Binding::ModelRef(idx));
                    } else {
                        let n = node.dims.elements();
                        let locs = self.alloc_vec(n)?;
                        self.models.push(ModelDesc {
                            name: node.name.clone(),
                            rows: 1,
                            cols: n,
                            broadcast_slots: Some(locs.clone()),
                        });
                        self.bind.insert(node.id, Binding::Locs(locs));
                    }
                    self.model_of_var.insert(var, idx);
                }
                DataKind::Inter => unreachable!("inter vars are not leaves"),
            }
        }
        Ok(())
    }

    fn meta_values(&self, var: VarId) -> Option<Vec<f32>> {
        // The hDFG does not carry meta contents; they ride on the leaf name
        // lookup into the spec — which the Hdfg intentionally drops. The
        // translator stores them in the leaf's `HOp::Leaf` var id; contents
        // come from the spec, so `Hdfg` keeps them in `meta_contents`.
        self.g.meta_contents(var)
    }

    // ----- operand resolution -------------------------------------------

    fn binding(&self, id: NodeId) -> &Binding {
        &self.bind[&id]
    }

    /// Maps an output element index to the operand's element index under
    /// the DSL broadcast rules.
    fn operand_index(
        out_dims: &dana_dsl::Dims,
        opnd_dims: &dana_dsl::Dims,
        e: usize,
        left: bool,
    ) -> usize {
        if opnd_dims.is_scalar() {
            return 0;
        }
        if opnd_dims == out_dims {
            return e;
        }
        // Trailing-suffix replication.
        if opnd_dims.rank() < out_dims.rank() && out_dims.0.ends_with(&opnd_dims.0) {
            return e % opnd_dims.elements();
        }
        // Outer pairing [A][K] ⊗ [B][K] → [A][B][K].
        if out_dims.rank() == 3 && opnd_dims.rank() == 2 {
            let (b, k) = (out_dims.0[1], out_dims.0[2]);
            let i = e / (b * k);
            let j = (e / k) % b;
            let l = e % k;
            return if left { i * k + l } else { j * k + l };
        }
        debug_assert!(false, "unreachable broadcast shape");
        e
    }

    // ----- step emission helpers ----------------------------------------

    fn steps_mut(&mut self, region: Region) -> &mut Vec<Step> {
        match region {
            Region::PerTuple => &mut self.per_tuple,
            Region::PostMerge => &mut self.post_merge,
        }
    }

    /// Ensures `src` is readable from cluster `ac`; returns the usable Src.
    /// Queues a staged Mov into `movs` when a bus transfer is needed.
    fn localize(&mut self, src: Src, ac: u16, movs: &mut Vec<(Loc, Loc)>) -> CompilerResult<Src> {
        let Src::Slot(l) = src else { return Ok(src) };
        if l.ac() == ac {
            return Ok(src);
        }
        if let Some(copy) = self.stage_cache.get(&(l, ac)) {
            return Ok(Src::Slot(*copy));
        }
        // Stage into the cluster's first AU (any AU of the cluster works;
        // intra-cluster reads are free).
        let au = ac * AUS_PER_AC;
        let slot = self.alloc_slot(au)?;
        let copy = Loc::new(au, slot);
        movs.push((l, copy));
        self.stage_cache.insert((l, ac), copy);
        Ok(Src::Slot(copy))
    }

    /// Emits queued Mov transfers as steps: per step, distinct sources ≤
    /// bus lanes and distinct destination AUs.
    fn flush_movs(&mut self, region: Region, movs: Vec<(Loc, Loc)>) {
        if movs.is_empty() {
            return;
        }
        let lanes = self.p.bus_lanes as usize;
        let mut pending = movs;
        while !pending.is_empty() {
            let mut step = Step::default();
            let mut used_aus: Vec<u16> = Vec::new();
            let mut sources: Vec<Loc> = Vec::new();
            let mut rest = Vec::new();
            for (src, dst) in pending {
                let new_source = !sources.contains(&src);
                if used_aus.contains(&dst.au) || (new_source && sources.len() >= lanes) {
                    rest.push((src, dst));
                    continue;
                }
                if new_source {
                    sources.push(src);
                }
                used_aus.push(dst.au);
                step.ops.push(MicroOp::Alu {
                    au: dst.au,
                    op: AluOp::Mov,
                    a: Src::Slot(src),
                    b: Src::Const(0.0),
                    dst: dst.slot,
                });
            }
            self.steps_mut(region).push(step);
            pending = rest;
        }
    }

    /// Emits an elementwise operation over `out` with operand resolvers.
    fn emit_map(
        &mut self,
        region: Region,
        op: AluOp,
        out: &[Loc],
        a_src: &dyn Fn(usize) -> Src,
        b_src: &dyn Fn(usize) -> Src,
    ) -> CompilerResult<()> {
        let aus = self.aus() as usize;
        let n = out.len();
        let mut e0 = 0;
        while e0 < n {
            let wave = &out[e0..(e0 + aus).min(n)];
            let mut movs = Vec::new();
            let mut resolved: Vec<(u16, Src, Src, u16)> = Vec::with_capacity(wave.len());
            for (k, loc) in wave.iter().enumerate() {
                let e = e0 + k;
                let a = self.localize(a_src(e), loc.ac(), &mut movs)?;
                let b = self.localize(b_src(e), loc.ac(), &mut movs)?;
                resolved.push((loc.au, a, b, loc.slot));
            }
            self.flush_movs(region, movs);
            let step = Step {
                ops: resolved
                    .into_iter()
                    .map(|(au, a, b, dst)| MicroOp::Alu { au, op, a, b, dst })
                    .collect(),
            };
            self.steps_mut(region).push(step);
            e0 += aus;
        }
        Ok(())
    }

    /// Two-phase reduction of `srcs` with `op` (Add or Mul) into `dst`.
    fn emit_reduce(
        &mut self,
        region: Region,
        op: AluOp,
        srcs: &[Src],
        dst: Loc,
    ) -> CompilerResult<()> {
        // Fold constants at compile time.
        let identity = if op == AluOp::Mul { 1.0f32 } else { 0.0 };
        let mut const_acc = identity;
        let mut has_consts = false;
        let mut by_au: HashMap<u16, Vec<Loc>> = HashMap::new();
        for s in srcs {
            match s {
                Src::Const(c) => {
                    const_acc = op.apply(const_acc, *c);
                    has_consts = true;
                }
                Src::Slot(l) => by_au.entry(l.au).or_default().push(*l),
            }
        }
        // Phase 1: per-AU chains, all AUs advancing one op per step.
        let mut partials: Vec<Loc> = Vec::new();
        let mut chains: Vec<(u16, Vec<Loc>, Loc)> = Vec::new(); // (au, elems, acc)
        for (au, elems) in by_au {
            if elems.len() == 1 {
                partials.push(elems[0]);
            } else {
                let acc = Loc::new(au, self.alloc_slot(au)?);
                chains.push((au, elems, acc));
            }
        }
        chains.sort_by_key(|(au, _, _)| *au);
        let max_len = chains.iter().map(|(_, e, _)| e.len()).max().unwrap_or(0);
        for round in 1..max_len {
            let mut step = Step::default();
            for (au, elems, acc) in &chains {
                if round < elems.len() {
                    let a = if round == 1 {
                        Src::Slot(elems[0])
                    } else {
                        Src::Slot(*acc)
                    };
                    step.ops.push(MicroOp::Alu {
                        au: *au,
                        op,
                        a,
                        b: Src::Slot(elems[round]),
                        dst: acc.slot,
                    });
                }
            }
            if !step.ops.is_empty() {
                self.steps_mut(region).push(step);
            }
        }
        partials.extend(chains.iter().map(|(_, _, acc)| *acc));
        partials.sort_by_key(|l| l.au);
        // Phase 2: cluster-aware pairwise tree.
        while partials.len() > 1 {
            let mut movs = Vec::new();
            let mut pair_ops: Vec<(Loc, Src)> = Vec::new(); // (left, right src)
            let mut next: Vec<Loc> = Vec::new();
            let mut iter = partials.chunks(2);
            for chunk in &mut iter {
                match chunk {
                    [x] => next.push(*x),
                    [x, y] => {
                        let rsrc = self.localize(Src::Slot(*y), x.ac(), &mut movs)?;
                        pair_ops.push((*x, rsrc));
                    }
                    _ => unreachable!(),
                }
            }
            self.flush_movs(region, movs);
            let mut step = Step::default();
            let mut results = Vec::new();
            for (x, rsrc) in pair_ops {
                let out = Loc::new(x.au, self.alloc_slot(x.au)?);
                step.ops.push(MicroOp::Alu {
                    au: x.au,
                    op,
                    a: Src::Slot(x),
                    b: rsrc,
                    dst: out.slot,
                });
                results.push(out);
            }
            self.steps_mut(region).push(step);
            next.extend(results);
            next.sort_by_key(|l| l.au);
            partials = next;
        }
        // Land the result (and any constant contribution) at `dst`.
        match partials.first() {
            Some(p) => {
                let mut movs = Vec::new();
                let psrc = self.localize(Src::Slot(*p), dst.ac(), &mut movs)?;
                self.flush_movs(region, movs);
                let (op2, b) = if has_consts {
                    (op, Src::Const(const_acc))
                } else {
                    (AluOp::Mov, Src::Const(0.0))
                };
                self.steps_mut(region).push(Step {
                    ops: vec![MicroOp::Alu {
                        au: dst.au,
                        op: op2,
                        a: psrc,
                        b,
                        dst: dst.slot,
                    }],
                });
            }
            None => {
                // Pure-constant reduction.
                self.steps_mut(region).push(Step {
                    ops: vec![MicroOp::Alu {
                        au: dst.au,
                        op: AluOp::Mov,
                        a: Src::Const(const_acc),
                        b: Src::Const(0.0),
                        dst: dst.slot,
                    }],
                });
            }
        }
        Ok(())
    }

    // ----- node emission --------------------------------------------------

    fn emit_node(&mut self, node: &HNode) -> CompilerResult<()> {
        match &node.op {
            HOp::Leaf { .. } => unreachable!(),
            HOp::Identity => {
                let b = self.binding(node.inputs[0]).clone();
                self.bind.insert(node.id, b);
                Ok(())
            }
            HOp::Const(c) => {
                self.bind.insert(node.id, Binding::Consts(vec![*c as f32]));
                Ok(())
            }
            HOp::Merge(_) => {
                // The merged value occupies the same locations; the engine's
                // tree bus combines thread copies in place (into thread 0).
                let b = self.binding(node.inputs[0]).clone();
                self.bind.insert(node.id, b);
                Ok(())
            }
            HOp::Binary(b) => self.emit_binary(node, *b),
            HOp::Unary(u) => self.emit_unary(node, *u),
            HOp::Group(g, axis) => self.emit_group(node, *g, *axis),
            HOp::Gather => self.emit_gather(node),
        }
    }

    fn alu_of_bin(b: BinOp) -> AluOp {
        match b {
            BinOp::Add => AluOp::Add,
            BinOp::Sub => AluOp::Sub,
            BinOp::Mul => AluOp::Mul,
            BinOp::Div => AluOp::Div,
            BinOp::Gt => AluOp::Gt,
            BinOp::Lt => AluOp::Lt,
        }
    }

    fn alu_of_un(u: UnaryFn) -> AluOp {
        match u {
            UnaryFn::Sigmoid => AluOp::Sigmoid,
            UnaryFn::Gaussian => AluOp::Gaussian,
            UnaryFn::Sqrt => AluOp::Sqrt,
        }
    }

    fn emit_binary(&mut self, node: &HNode, b: BinOp) -> CompilerResult<()> {
        let op = Self::alu_of_bin(b);
        let a_id = node.inputs[0];
        let b_id = node.inputs[1];
        let a_dims = self.g.node(a_id).dims.clone();
        let b_dims = self.g.node(b_id).dims.clone();
        let a_bind = self.binding(a_id).clone();
        let b_bind = self.binding(b_id).clone();
        // Constant folding when both operands are compile-time constants.
        if let (Binding::Consts(av), Binding::Consts(bv)) = (&a_bind, &b_bind) {
            let n = node.dims.elements();
            let folded: Vec<f32> = (0..n)
                .map(|e| {
                    let ai = Self::operand_index(&node.dims, &a_dims, e, true);
                    let bi = Self::operand_index(&node.dims, &b_dims, e, false);
                    op.apply(av[ai], bv[bi])
                })
                .collect();
            self.bind.insert(node.id, Binding::Consts(folded));
            return Ok(());
        }
        let out = self.alloc_vec(node.dims.elements())?;
        let out_dims = node.dims.clone();
        let a_src = make_resolver(&a_bind, &out_dims, &a_dims, true)?;
        let b_src = make_resolver(&b_bind, &out_dims, &b_dims, false)?;
        self.emit_map(node.region, op, &out, &a_src, &b_src)?;
        self.bind.insert(node.id, Binding::Locs(out));
        Ok(())
    }

    fn emit_unary(&mut self, node: &HNode, u: UnaryFn) -> CompilerResult<()> {
        let op = Self::alu_of_un(u);
        let a_id = node.inputs[0];
        let a_dims = self.g.node(a_id).dims.clone();
        let a_bind = self.binding(a_id).clone();
        if let Binding::Consts(av) = &a_bind {
            let folded: Vec<f32> = av.iter().map(|v| op.apply(*v, 0.0)).collect();
            self.bind.insert(node.id, Binding::Consts(folded));
            return Ok(());
        }
        let out = self.alloc_vec(node.dims.elements())?;
        let out_dims = node.dims.clone();
        let a_src = make_resolver(&a_bind, &out_dims, &a_dims, true)?;
        self.emit_map(node.region, op, &out, &a_src, &|_| Src::Const(0.0))?;
        self.bind.insert(node.id, Binding::Locs(out));
        Ok(())
    }

    fn emit_group(&mut self, node: &HNode, g: GroupOp, axis: usize) -> CompilerResult<()> {
        let a_id = node.inputs[0];
        let in_dims = self.g.node(a_id).dims.clone();
        let a_bind = self.binding(a_id).clone();
        let out_n = node.dims.elements();
        // Input element indices feeding each output element.
        let extent = if in_dims.is_scalar() {
            1
        } else {
            in_dims.0[in_dims.rank() - axis]
        };
        let groups: Vec<Vec<usize>> = (0..out_n)
            .map(|oe| reduction_sources(&in_dims, axis, extent, oe))
            .collect();
        // Constant input → fold.
        if let Binding::Consts(av) = &a_bind {
            let folded: Vec<f32> = groups
                .iter()
                .map(|g_idx| {
                    let vals = g_idx.iter().map(|i| av[*i] as f64);
                    match g {
                        GroupOp::Sigma => vals.sum::<f64>() as f32,
                        GroupOp::Pi => vals.product::<f64>() as f32,
                        GroupOp::Norm => (vals.map(|v| v * v).sum::<f64>()).sqrt() as f32,
                    }
                })
                .collect();
            self.bind.insert(node.id, Binding::Consts(folded));
            return Ok(());
        }
        let Binding::Locs(a_locs) = &a_bind else {
            return Err(CompilerError::Unsupported(
                "group over a model reference".into(),
            ));
        };
        let out = self.alloc_vec(out_n)?;
        for (oe, group) in groups.iter().enumerate() {
            let mut srcs: Vec<Src> = group.iter().map(|i| Src::Slot(a_locs[*i])).collect();
            let dst = out[oe];
            match g {
                GroupOp::Sigma => self.emit_reduce(node.region, AluOp::Add, &srcs, dst)?,
                GroupOp::Pi => self.emit_reduce(node.region, AluOp::Mul, &srcs, dst)?,
                GroupOp::Norm => {
                    // squares into scratch, sum, sqrt.
                    let sq: Vec<Loc> = self.alloc_vec(group.len())?;
                    let region = node.region;
                    let a_locs_c = a_locs.clone();
                    let group_c = group.clone();
                    self.emit_map(
                        region,
                        AluOp::Mul,
                        &sq,
                        &|k| Src::Slot(a_locs_c[group_c[k]]),
                        &|k| Src::Slot(a_locs_c[group_c[k]]),
                    )?;
                    srcs = sq.iter().map(|l| Src::Slot(*l)).collect();
                    let sum = Loc::new(dst.au, self.alloc_slot(dst.au)?);
                    self.emit_reduce(region, AluOp::Add, &srcs, sum)?;
                    self.steps_mut(region).push(Step {
                        ops: vec![MicroOp::Alu {
                            au: dst.au,
                            op: AluOp::Sqrt,
                            a: Src::Slot(sum),
                            b: Src::Const(0.0),
                            dst: dst.slot,
                        }],
                    });
                }
            }
        }
        self.bind.insert(node.id, Binding::Locs(out));
        Ok(())
    }

    fn emit_gather(&mut self, node: &HNode) -> CompilerResult<()> {
        let model_bind = self.binding(node.inputs[0]).clone();
        let Binding::ModelRef(model) = model_bind else {
            return Err(CompilerError::Unsupported(
                "gather target is not a row-indexed model".into(),
            ));
        };
        let idx_bind = self.binding(node.inputs[1]).clone();
        let index = match idx_bind {
            Binding::Locs(l) => Src::Slot(l[0]),
            Binding::Consts(c) => Src::Const(c[0]),
            Binding::ModelRef(_) => {
                return Err(CompilerError::Unsupported("gather index is a model".into()))
            }
        };
        let out = self.alloc_vec(node.dims.elements())?;
        let region = node.region;
        self.steps_mut(region).push(Step {
            ops: vec![MicroOp::Gather {
                model,
                index,
                dst: out.clone(),
            }],
        });
        self.bind.insert(node.id, Binding::Locs(out));
        Ok(())
    }

    // ----- assembly --------------------------------------------------------

    fn finish(self) -> CompilerResult<EngineDesign> {
        // Merge plan: whole-model algorithms combine the merge variable on
        // the tree bus; row-update (LRMF) designs scatter per thread.
        let has_whole = self
            .g
            .model_bindings
            .iter()
            .any(|b| matches!(b, dana_hdfg::graph::ModelBinding::Whole { .. }));
        let merge = match (&self.g.merge, has_whole) {
            (Some(mi), true) => {
                let Binding::Locs(slots) = self.binding(self.g.node(mi.node).inputs[0]).clone()
                else {
                    return Err(CompilerError::Unsupported(
                        "merge variable is not in slots".into(),
                    ));
                };
                MergePlan::Whole { op: mi.op, slots }
            }
            _ => MergePlan::None,
        };
        if matches!(merge, MergePlan::None) && has_whole && self.p.num_threads > 1 {
            return Err(CompilerError::Unsupported(
                "whole-model update without a merge function cannot run multi-threaded".into(),
            ));
        }
        // Model write-backs.
        let mut model_writes = Vec::new();
        for b in &self.g.model_bindings {
            match b {
                dana_hdfg::graph::ModelBinding::Whole { model, source } => {
                    let Binding::Locs(src) = self.binding(*source).clone() else {
                        return Err(CompilerError::Unsupported(
                            "model update source not in slots".into(),
                        ));
                    };
                    model_writes.push(ModelWrite::Whole {
                        model: self.model_of_var[model],
                        src,
                    });
                }
                dana_hdfg::graph::ModelBinding::Row {
                    model,
                    index,
                    source,
                } => {
                    let Binding::Locs(src) = self.binding(*source).clone() else {
                        return Err(CompilerError::Unsupported(
                            "row update source not in slots".into(),
                        ));
                    };
                    let Binding::Locs(idx) = self.binding(*index).clone() else {
                        return Err(CompilerError::Unsupported("row index not in slots".into()));
                    };
                    model_writes.push(ModelWrite::Row {
                        model: self.model_of_var[model],
                        index: idx[0],
                        src,
                    });
                }
            }
        }
        // Convergence.
        let convergence = match &self.g.convergence {
            dana_hdfg::graph::ConvergenceBinding::Epochs(n) => ConvergenceCheck::Epochs(*n),
            dana_hdfg::graph::ConvergenceBinding::Condition { node, max_epochs } => {
                let Binding::Locs(l) = self.binding(*node).clone() else {
                    return Err(CompilerError::Unsupported(
                        "convergence condition not in slots".into(),
                    ));
                };
                ConvergenceCheck::Condition {
                    slot: l[0],
                    max_epochs: *max_epochs,
                }
            }
        };
        // Meta preloads: scalar metas folded to constants need no slots;
        // nothing else to preload in this scheme.
        let slots_used = self.slot_next.iter().copied().max().unwrap_or(0);
        Ok(EngineDesign {
            num_threads: self.p.num_threads,
            acs_per_thread: self.p.acs_per_thread,
            slots_per_au: slots_used.max(1),
            bus_lanes: self.p.bus_lanes,
            program: EngineProgram {
                per_tuple: self.per_tuple,
                post_merge: self.post_merge,
            },
            input_slots: self.input_slots,
            output_slots: self.output_slots,
            meta: Vec::new(),
            models: self.models,
            merge,
            model_writes,
            convergence,
        })
    }
}

/// Builds a closure resolving output element `e` to the operand's `Src`.
fn make_resolver(
    bind: &Binding,
    out_dims: &dana_dsl::Dims,
    opnd_dims: &dana_dsl::Dims,
    left: bool,
) -> CompilerResult<Box<dyn Fn(usize) -> Src>> {
    let out_dims = out_dims.clone();
    let opnd_dims = opnd_dims.clone();
    match bind {
        Binding::Locs(locs) => {
            let locs = locs.clone();
            Ok(Box::new(move |e| {
                Src::Slot(locs[Sched::operand_index(&out_dims, &opnd_dims, e, left)])
            }))
        }
        Binding::Consts(vals) => {
            let vals = vals.clone();
            Ok(Box::new(move |e| {
                Src::Const(vals[Sched::operand_index(&out_dims, &opnd_dims, e, left)])
            }))
        }
        Binding::ModelRef(_) => Err(CompilerError::Unsupported(
            "row-indexed model used elementwise".into(),
        )),
    }
}

/// Input element indices reduced into output element `oe` for a group op
/// over `axis` (1-based from the right) of `in_dims`.
fn reduction_sources(
    in_dims: &dana_dsl::Dims,
    axis: usize,
    extent: usize,
    oe: usize,
) -> Vec<usize> {
    if in_dims.is_scalar() {
        return vec![0];
    }
    let rank = in_dims.rank();
    let red = rank - axis; // axis position from the left
                           // Decompose oe over the output dims (input dims minus `red`).
    let mut out_shape: Vec<usize> = in_dims.0.clone();
    out_shape.remove(red);
    let mut coords = vec![0usize; out_shape.len()];
    let mut rem = oe;
    for (i, d) in out_shape.iter().enumerate().rev() {
        coords[i] = rem % d;
        rem /= d;
    }
    // Insert the reduced coordinate and flatten per input strides.
    let mut strides = vec![1usize; rank];
    for i in (0..rank - 1).rev() {
        strides[i] = strides[i + 1] * in_dims.0[i + 1];
    }
    (0..extent)
        .map(|k| {
            let mut idx = 0usize;
            let mut ci = 0usize;
            for (i, stride) in strides.iter().enumerate() {
                let c = if i == red {
                    k
                } else {
                    let c = coords[ci];
                    ci += 1;
                    c
                };
                idx += c * stride;
            }
            idx
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_dsl::zoo::{
        linear_regression, logistic_regression, lrmf, svm, DenseParams, LrmfParams,
    };
    use dana_dsl::Dims;
    use dana_engine::{ExecutionEngine, ModelStore};
    use dana_hdfg::translate;

    fn params(threads: u16, acs: u16) -> ScheduleParams {
        ScheduleParams {
            num_threads: threads,
            acs_per_thread: acs,
            slots_per_au: 4096,
            bus_lanes: 1,
        }
    }

    fn schedule_zoo(spec: &dana_dsl::AlgoSpec, threads: u16, acs: u16) -> EngineDesign {
        let g = translate(spec);
        schedule_hdfg(&g, params(threads, acs)).unwrap()
    }

    #[test]
    fn linreg_design_is_engine_valid() {
        let spec = linear_regression(DenseParams {
            n_features: 10,
            ..Default::default()
        })
        .unwrap();
        let design = schedule_zoo(&spec, 4, 1);
        ExecutionEngine::new(design).expect("engine accepts scheduled design");
    }

    #[test]
    fn all_zoo_specs_schedule_and_validate() {
        for spec in [
            linear_regression(DenseParams {
                n_features: 20,
                ..Default::default()
            })
            .unwrap(),
            logistic_regression(DenseParams {
                n_features: 20,
                ..Default::default()
            })
            .unwrap(),
            svm(DenseParams {
                n_features: 20,
                ..Default::default()
            })
            .unwrap(),
            lrmf(LrmfParams::default()).unwrap(),
        ] {
            for (threads, acs) in [(1u16, 1u16), (2, 1), (4, 2), (8, 2)] {
                let design = schedule_zoo(&spec, threads, acs);
                ExecutionEngine::new(design)
                    .unwrap_or_else(|e| panic!("{} t={threads} acs={acs}: {e}", spec.name));
            }
        }
    }

    #[test]
    fn trained_linreg_matches_reference() {
        // End-to-end: DSL → hDFG → schedule → engine vs. hand-rolled SGD.
        let n = 6usize;
        let spec = linear_regression(DenseParams {
            n_features: n,
            learning_rate: 0.2,
            merge_coef: 4,
            epochs: 10,
        })
        .unwrap();
        let design = schedule_zoo(&spec, 4, 1);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        // Synthetic tuples from a known model.
        let truth: Vec<f32> = (0..n).map(|i| 0.5 * (i as f32) - 1.0).collect();
        let tuples: Vec<Vec<f32>> = (0..64)
            .map(|k| {
                let x: Vec<f32> = (0..n)
                    .map(|i| (((k * 7 + i * 3) % 11) as f32 - 5.0) / 5.0)
                    .collect();
                let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
                let mut t = x;
                t.push(y);
                t
            })
            .collect();
        let mut store = ModelStore::new(&design, vec![vec![0.0; n]]).unwrap();
        let batch = dana_storage::TupleBatch::from_rows(n + 1, &tuples);
        engine.run_training_batch(&batch, &mut store).unwrap();

        // Reference: batched GD, batch 4, lr 0.2/4, 10 epochs.
        let mut w = vec![0.0f32; n];
        for _ in 0..10 {
            for batch in tuples.chunks(4) {
                let mut g = vec![0.0f32; n];
                for t in batch {
                    let s: f32 = w.iter().zip(&t[..n]).map(|(a, b)| a * b).sum();
                    let er = s - t[n];
                    for i in 0..n {
                        g[i] += er * t[i];
                    }
                }
                for i in 0..n {
                    w[i] -= 0.05 * g[i];
                }
            }
        }
        let got = store.model(0);
        for i in 0..n {
            assert!(
                (got[i] - w[i]).abs() < 1e-3,
                "element {i}: engine {} vs reference {}",
                got[i],
                w[i]
            );
        }
    }

    #[test]
    fn wide_models_span_multiple_clusters() {
        let spec = linear_regression(DenseParams {
            n_features: 64,
            ..Default::default()
        })
        .unwrap();
        let design = schedule_zoo(&spec, 2, 4); // 32 AUs per thread
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        // Per-tuple work must spread across all 4 clusters.
        let mut acs_used: Vec<u16> = design
            .program
            .per_tuple
            .iter()
            .flat_map(|s| s.ops.iter().flat_map(|o| o.occupied_aus()))
            .map(|au| au / AUS_PER_AC)
            .collect();
        acs_used.sort_unstable();
        acs_used.dedup();
        assert_eq!(acs_used.len(), 4);
        let _ = engine;
    }

    #[test]
    fn more_acs_fewer_per_tuple_cycles() {
        let spec = linear_regression(DenseParams {
            n_features: 128,
            ..Default::default()
        })
        .unwrap();
        let one = schedule_zoo(&spec, 1, 1).program.per_tuple_cycles();
        let four = schedule_zoo(&spec, 1, 4).program.per_tuple_cycles();
        let sixteen = schedule_zoo(&spec, 1, 16).program.per_tuple_cycles();
        assert!(four < one, "4 ACs {four} !< 1 AC {one}");
        // Scaling saturates: the dot-product reduction becomes inter-AC-bus
        // bound, so 16 ACs need not beat 4 (the Fig. 12 saturation effect) —
        // but they must still beat a single cluster.
        assert!(sixteen < one, "16 ACs {sixteen} !< 1 AC {one}");
    }

    #[test]
    fn meta_constants_fold_into_immediates() {
        let spec = linear_regression(DenseParams {
            n_features: 4,
            ..Default::default()
        })
        .unwrap();
        let design = schedule_zoo(&spec, 1, 1);
        // No meta preloads: lr folded into Const operands.
        assert!(design.meta.is_empty());
        let has_const_operand = design
            .program
            .post_merge
            .iter()
            .flat_map(|s| &s.ops)
            .any(|o| matches!(o, MicroOp::Alu { a: Src::Const(c), .. } if *c != 0.0));
        assert!(has_const_operand, "lr must appear as an immediate");
    }

    #[test]
    fn lrmf_schedules_gathers_and_row_writes() {
        let spec = lrmf(LrmfParams::default()).unwrap();
        let design = schedule_zoo(&spec, 2, 1);
        let gathers = design
            .program
            .per_tuple
            .iter()
            .flat_map(|s| &s.ops)
            .filter(|o| matches!(o, MicroOp::Gather { .. }))
            .count();
        assert_eq!(gathers, 2);
        assert_eq!(design.model_writes.len(), 2);
        assert!(design
            .model_writes
            .iter()
            .all(|w| matches!(w, ModelWrite::Row { .. })));
        assert!(matches!(design.merge, MergePlan::None));
        // Both models are row-indexed: no broadcast slots.
        assert!(design.models.iter().all(|m| m.broadcast_slots.is_none()));
    }

    #[test]
    fn convergence_condition_gets_a_slot() {
        let src = r#"
            mo = model([4])
            in = input([4])
            out = output()
            cf = meta(0.5)
            s = sigma(mo * in, 1)
            er = s - out
            grad = er * in
            mo_up = mo - grad
            setModel(mo_up)
            n = norm(grad, 1)
            conv = n < cf
            setConvergence(conv, 9)
        "#;
        let spec = dana_dsl::parse_udf(src, "t").unwrap();
        let design = schedule_zoo(&spec, 1, 1);
        assert!(matches!(
            design.convergence,
            ConvergenceCheck::Condition { max_epochs: 9, .. }
        ));
    }

    #[test]
    fn reduction_sources_full_vector() {
        let d = Dims::vector(6);
        let srcs = reduction_sources(&d, 1, 6, 0);
        assert_eq!(srcs, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn reduction_sources_matrix_axes() {
        let d = Dims::matrix(3, 4);
        // axis 1 (innermost): out [3]; out elem 1 ← row 1 = indices 4..8
        assert_eq!(reduction_sources(&d, 1, 4, 1), vec![4, 5, 6, 7]);
        // axis 2: out [4]; out elem 2 ← column 2 = 2, 6, 10
        assert_eq!(reduction_sources(&d, 2, 3, 2), vec![2, 6, 10]);
    }

    #[test]
    fn outer_pairing_schedules() {
        // [2][3] ⊗ [4][3] → [2][4][3] then sigma axis 1 → [2][4] (paper §4.4).
        let mut a = dana_dsl::AlgoBuilder::new("mat");
        let mo = a.model("mo", &[2, 3]);
        let x = a.input("in", &[4, 3]);
        let y = a.output_dims("out", &[2, 4]);
        let prod = a.mul(mo, x).unwrap();
        let s = a.sigma(prod, 1).unwrap();
        let er = a.sub(s, y).unwrap();
        let er2 = a.mul(er, er).unwrap();
        let red = a.sigma(er2, 1).unwrap();
        let red2 = a.sigma(red, 1).unwrap();
        let g = a.mul(mo, red2).unwrap();
        let mo_up = a.sub(mo, g).unwrap();
        a.set_model(mo, mo_up).unwrap();
        a.set_epochs(1);
        let spec = a.finish().unwrap();
        let design = schedule_zoo(&spec, 1, 2);
        ExecutionEngine::new(design).unwrap();
    }

    #[test]
    fn slots_exhaustion_reported() {
        let spec = linear_regression(DenseParams {
            n_features: 64,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let tight = ScheduleParams {
            num_threads: 1,
            acs_per_thread: 1,
            slots_per_au: 4,
            bus_lanes: 1,
        };
        assert!(matches!(
            schedule_hdfg(&g, tight),
            Err(CompilerError::OutOfSlots { .. })
        ));
    }
}
