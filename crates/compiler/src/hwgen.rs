//! The hardware generator (§6.1): resource allocation and design-space
//! exploration.
//!
//! "The hardware generator obtains the database page layout information,
//! model, and training data schema from the DBMS catalog. FPGA-specific
//! information ... [is] provided by the user. Using this information, the
//! hardware generator distributes the resources among access and execution
//! engine. ... To decide the allocation of resources to each thread vs.
//! number of threads, we equip the hardware generator with a performance
//! estimation tool that uses the static schedule of the operations for each
//! design point to estimate its relative performance. It chooses the
//! smallest and best-performing design point."

use std::sync::Arc;

use dana_engine::{EngineDesign, ExecutionEngine};
use dana_fpga::{FpgaSpec, ResourceBudget};
use dana_hdfg::Hdfg;
use dana_storage::PageLayoutDesc;
use dana_strider::codegen::{estimated_cycles_per_page, strider_program_for_layout};
use dana_strider::Instr;

use crate::error::{CompilerError, CompilerResult};
use crate::schedule::{schedule_hdfg, ScheduleParams};

/// DSP slices consumed by one analytic unit: a single-precision multiplier
/// plus adder pipeline maps to five DSP48E2 slices on UltraScale+.
pub const DSP_SLICES_PER_AU: u64 = 5;

/// Scratchpad depth offered to the scheduler (f32 slots per AU). Actual
/// usage is measured after scheduling and charged against BRAM.
const SCHED_SLOTS_PER_AU: u16 = 8192;

/// Page buffers are capped: beyond this the AXI link is saturated long
/// before extraction, and BRAM is better spent elsewhere.
const MAX_STRIDERS: u32 = 16;

/// Everything `compile` needs.
#[derive(Debug, Clone)]
pub struct CompileInput<'a> {
    pub hdfg: &'a Hdfg,
    pub fpga: FpgaSpec,
    pub layout: PageLayoutDesc,
    /// Training-table columns (for float-conversion accounting).
    pub schema_columns: usize,
    /// Expected training-set size, from catalog statistics — drives the
    /// thread-count exploration.
    pub expected_tuples: u64,
}

/// The static performance estimate the DSE ranks designs by.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PerfEstimate {
    /// Engine cycles for one epoch over `expected_tuples`.
    pub epoch_engine_cycles: u64,
    /// Strider cycles to extract one (full) page.
    pub strider_cycles_per_page: u64,
    /// Per-tuple region cost (one thread).
    pub per_tuple_cycles: u64,
    /// Post-merge region cost (once per batch).
    pub post_merge_cycles: u64,
}

/// A deployable accelerator: engine design + Strider program + budget,
/// plus the **execution engine built once at compile time**. Validation
/// and deploy-time lowering happen here — the query path only ever clones
/// the `Arc`, never reconstructs the engine.
#[derive(Debug, Clone)]
pub struct CompiledAccelerator {
    pub design: EngineDesign,
    /// The validated, lowered engine — shared by every query that runs
    /// this accelerator.
    pub engine: Arc<ExecutionEngine>,
    pub strider_program: Vec<Instr>,
    pub strider_config: [u64; 16],
    pub budget: ResourceBudget,
    pub estimate: PerfEstimate,
}

impl CompiledAccelerator {
    /// Striders available to the access engine.
    pub fn num_striders(&self) -> u32 {
        self.budget.num_page_buffers
    }
}

/// Compiles the hDFG for the FPGA, exploring thread counts up to the UDF's
/// merge coefficient and keeping the best design point.
pub fn compile(input: &CompileInput) -> CompilerResult<CompiledAccelerator> {
    let merge_coef = input.hdfg.merge.map(|m| m.coef).unwrap_or(1);
    let candidates = thread_candidates(input, merge_coef);
    let mut best: Option<(u64, CompiledAccelerator)> = None;
    let mut last_err = None;
    for threads in candidates {
        match compile_with_threads(input, threads) {
            Ok(acc) => {
                let score = acc.estimate.epoch_engine_cycles;
                // Strict `<` keeps the *smallest* design on ties (§6.1) —
                // candidates are visited smallest-first.
                let better = best.as_ref().map(|(s, _)| score < *s).unwrap_or(true);
                if better {
                    best = Some((score, acc));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    best.map(|(_, acc)| acc).ok_or_else(|| {
        last_err.unwrap_or_else(|| {
            CompilerError::InsufficientResources("no feasible design point".into())
        })
    })
}

/// Compiles with an explicit thread count (the Figure 12 sweep knob).
pub fn compile_with_threads(
    input: &CompileInput,
    threads: u32,
) -> CompilerResult<CompiledAccelerator> {
    let fpga = &input.fpga;
    let total_aus = (fpga.dsp_slices / DSP_SLICES_PER_AU).min(fpga.max_compute_units as u64) as u32;
    let total_acs = total_aus / 8;
    if total_acs == 0 {
        return Err(CompilerError::InsufficientResources(format!(
            "{} DSP slices cannot host one analytic cluster",
            fpga.dsp_slices
        )));
    }
    if threads == 0 || threads > total_acs {
        return Err(CompilerError::InsufficientResources(format!(
            "{threads} threads exceed {total_acs} available clusters"
        )));
    }
    let acs_per_thread = (total_acs / threads).max(1) as u16;
    let params = ScheduleParams {
        num_threads: threads as u16,
        acs_per_thread,
        slots_per_au: SCHED_SLOTS_PER_AU,
        bus_lanes: 2,
    };
    let design = schedule_hdfg(input.hdfg, params)?;
    // The engine re-validates the schedule; failure is a compiler bug.
    let engine = ExecutionEngine::new(design.clone())
        .map_err(|e| CompilerError::EngineRejected(e.to_string()))?;

    // ---- BRAM budgeting (§6.1) ----------------------------------------
    // Per-thread data/model storage: slots actually used.
    let slots_used = design.slots_per_au as u64;
    let data_model_bytes = slots_used * 4 * design.aus_per_thread() as u64;
    let mut used = data_model_bytes * threads as u64;
    // Row-indexed model memory is shared (single copy in BRAM).
    for m in &design.models {
        if m.broadcast_slots.is_none() {
            used += m.elements() as u64 * 4;
        }
    }
    if used > fpga.bram_bytes {
        return Err(CompilerError::InsufficientResources(format!(
            "design needs {used} BRAM bytes, device has {}",
            fpga.bram_bytes
        )));
    }
    // "The remainder of the BRAM memory is assigned to the page buffer to
    // store as many pages as possible."
    let remaining = fpga.bram_bytes - used;
    let num_page_buffers =
        ((remaining / input.layout.page_size as u64) as u32).clamp(1, MAX_STRIDERS);

    let budget = ResourceBudget {
        data_model_bytes,
        page_buffer_bytes: num_page_buffers as u64 * input.layout.page_size as u64,
        num_page_buffers,
        num_aus: total_aus.min(threads * acs_per_thread as u32 * 8),
        num_acs: threads * acs_per_thread as u32,
        num_threads: threads,
    };

    let (strider_program, strider_config) = strider_program_for_layout(&input.layout);
    let estimate = estimate_perf(input, &engine);
    Ok(CompiledAccelerator {
        design,
        engine: Arc::new(engine),
        strider_program,
        strider_config,
        budget,
        estimate,
    })
}

/// Thread-count candidates: powers of two from 1 to the merge coefficient,
/// merge coefficient itself, bounded by available clusters.
fn thread_candidates(input: &CompileInput, merge_coef: u32) -> Vec<u32> {
    let total_aus =
        (input.fpga.dsp_slices / DSP_SLICES_PER_AU).min(input.fpga.max_compute_units as u64) as u32;
    let total_acs = (total_aus / 8).max(1);
    let cap = merge_coef.min(total_acs);
    let mut v = Vec::new();
    let mut t = 1u32;
    while t <= cap {
        v.push(t);
        t *= 2;
    }
    if !v.contains(&cap) {
        v.push(cap);
    }
    v
}

/// The §6.1 performance estimator: per-epoch engine cycles from the static
/// schedule. "Performance estimation is viable, as the hDFG does not
/// change, there is no hardware managed cache, and the accelerator
/// architecture is fixed during execution."
fn estimate_perf(input: &CompileInput, engine: &ExecutionEngine) -> PerfEstimate {
    let design = engine.design();
    let threads = design.num_threads as u64;
    let tuples = input.expected_tuples;
    let full_batches = tuples / threads;
    let rem = (tuples % threads) as usize;
    let mut epoch = full_batches * engine.estimated_batch_cycles(threads as usize);
    if rem > 0 {
        epoch += engine.estimated_batch_cycles(rem);
    }
    let tuples_per_page = (input.layout.capacity as u64).min(tuples.max(1));
    PerfEstimate {
        epoch_engine_cycles: epoch,
        strider_cycles_per_page: estimated_cycles_per_page(&input.layout, tuples_per_page)
            + tuples_per_page * input.schema_columns as u64,
        per_tuple_cycles: design.program.per_tuple_cycles(),
        post_merge_cycles: design.program.post_merge_cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_dsl::zoo::{
        linear_regression, logistic_regression, lrmf, svm, DenseParams, LrmfParams,
    };
    use dana_hdfg::translate;
    use dana_storage::page::TupleDirection;
    use dana_storage::TUPLE_HEADER_BYTES;

    fn layout_for(features: usize) -> PageLayoutDesc {
        PageLayoutDesc::new(
            32 * 1024,
            0,
            TUPLE_HEADER_BYTES + (features + 1) * 4,
            TUPLE_HEADER_BYTES,
            TupleDirection::Ascending,
        )
        .unwrap()
    }

    fn input_for<'a>(g: &'a Hdfg, features: usize, tuples: u64) -> CompileInput<'a> {
        CompileInput {
            hdfg: g,
            fpga: FpgaSpec::vu9p(),
            layout: layout_for(features),
            schema_columns: features + 1,
            expected_tuples: tuples,
        }
    }

    #[test]
    fn compiles_all_zoo_algorithms_on_vu9p() {
        for spec in [
            linear_regression(DenseParams {
                n_features: 50,
                ..Default::default()
            })
            .unwrap(),
            logistic_regression(DenseParams {
                n_features: 50,
                ..Default::default()
            })
            .unwrap(),
            svm(DenseParams {
                n_features: 50,
                ..Default::default()
            })
            .unwrap(),
        ] {
            let g = translate(&spec);
            let input = input_for(&g, 50, 10_000);
            let acc = compile(&input).unwrap();
            assert!(acc.design.num_threads >= 1);
            assert!(acc.budget.num_page_buffers >= 1);
            assert!(acc.estimate.epoch_engine_cycles > 0);
            assert!(!acc.strider_program.is_empty());
        }
    }

    #[test]
    fn lrmf_compiles_with_shared_model_memory() {
        let spec = lrmf(LrmfParams {
            rows: 500,
            cols: 400,
            rank: 10,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let layout = PageLayoutDesc::new(
            32 * 1024,
            0,
            TUPLE_HEADER_BYTES + 12,
            TUPLE_HEADER_BYTES,
            TupleDirection::Ascending,
        )
        .unwrap();
        let input = CompileInput {
            hdfg: &g,
            fpga: FpgaSpec::vu9p(),
            layout,
            schema_columns: 3,
            expected_tuples: 5_000,
        };
        let acc = compile(&input).unwrap();
        assert!(acc
            .design
            .models
            .iter()
            .all(|m| m.broadcast_slots.is_none()));
    }

    #[test]
    fn dse_respects_merge_coefficient() {
        let spec = linear_regression(DenseParams {
            n_features: 16,
            merge_coef: 4,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let input = input_for(&g, 16, 100_000);
        let acc = compile(&input).unwrap();
        assert!(
            acc.design.num_threads <= 4,
            "threads {} exceed merge coefficient 4",
            acc.design.num_threads
        );
    }

    #[test]
    fn narrow_models_benefit_from_more_threads() {
        // Remote-Sensing-like shape (54 features): the DSE should pick more
        // than one thread when the merge coefficient allows it (§7.2: narrow
        // models scale with threads).
        let spec = linear_regression(DenseParams {
            n_features: 54,
            merge_coef: 64,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let input = input_for(&g, 54, 500_000);
        let acc = compile(&input).unwrap();
        assert!(
            acc.design.num_threads > 1,
            "picked {}",
            acc.design.num_threads
        );
    }

    #[test]
    fn explicit_thread_sweep_monotone_resources() {
        let spec = linear_regression(DenseParams {
            n_features: 32,
            merge_coef: 1024,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let input = input_for(&g, 32, 100_000);
        let t2 = compile_with_threads(&input, 2).unwrap();
        let t8 = compile_with_threads(&input, 8).unwrap();
        assert_eq!(t2.design.num_threads, 2);
        assert_eq!(t8.design.num_threads, 8);
        assert!(t8.design.acs_per_thread <= t2.design.acs_per_thread);
        // More threads with the same tuple count → fewer batches → fewer
        // engine cycles for this narrow model.
        assert!(t8.estimate.epoch_engine_cycles < t2.estimate.epoch_engine_cycles);
    }

    #[test]
    fn tiny_fpga_is_rejected_gracefully() {
        let spec = linear_regression(DenseParams {
            n_features: 16,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let mut input = input_for(&g, 16, 1000);
        input.fpga.dsp_slices = 4; // less than one AU
        assert!(matches!(
            compile(&input),
            Err(CompilerError::InsufficientResources(_))
        ));
    }

    #[test]
    fn bram_pressure_rejects_oversized_designs() {
        let spec = linear_regression(DenseParams {
            n_features: 16,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let mut input = input_for(&g, 16, 1000);
        input.fpga = input.fpga.with_bram_bytes(1024); // 1 KB of BRAM
        assert!(compile(&input).is_err());
    }

    #[test]
    fn thread_candidates_cover_powers_of_two() {
        let spec = linear_regression(DenseParams {
            n_features: 8,
            merge_coef: 24,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let input = input_for(&g, 8, 1000);
        let cands = thread_candidates(&input, 24);
        assert_eq!(cands, vec![1, 2, 4, 8, 16, 24]);
    }

    #[test]
    fn vu9p_caps_at_1024_compute_units() {
        // 6840 DSPs / 5 = 1368, capped to 1024 AUs = 128 ACs (§7.2).
        let spec = linear_regression(DenseParams {
            n_features: 8,
            merge_coef: 2048,
            ..Default::default()
        })
        .unwrap();
        let g = translate(&spec);
        let input = input_for(&g, 8, 1000);
        let err = compile_with_threads(&input, 2048);
        assert!(err.is_err(), "cannot exceed 128 clusters");
        let ok = compile_with_threads(&input, 128).unwrap();
        assert_eq!(ok.budget.num_acs, 128);
        assert_eq!(ok.budget.num_aus, 1024);
    }
}
