//! DAnA's backend: the hardware generator and the compiler/scheduler (§6).
//!
//! "DAnA's translator, scheduler, and hardware generator together configure
//! the accelerator design for the UDF and create its runtime schedule."
//!
//! * [`schedule`] — maps every atomic sub-node of the hDFG onto the AU/AC
//!   fabric, inserting the inter-AC bus transfers the topology requires,
//!   and emits the execution engine's micro-instruction schedule (§6.2).
//! * [`hwgen`] — divides the FPGA's resources between the access engine
//!   (page buffers + Striders) and the execution engine, and explores the
//!   thread-count / ACs-per-thread trade-off with a static performance
//!   estimator, choosing "the smallest and best-performing design point"
//!   (§6.1).
//!
//! The top-level entry point is [`compile`], which packages the scheduled
//! engine design, the generated Strider program, and the resource budget
//! into a [`CompiledAccelerator`] ready to be deployed into the catalog.

pub mod error;
pub mod hwgen;
pub mod schedule;

pub use error::{CompilerError, CompilerResult};
pub use hwgen::{
    compile, compile_with_threads, CompileInput, CompiledAccelerator, PerfEstimate,
    DSP_SLICES_PER_AU,
};
pub use schedule::{schedule_hdfg, ScheduleParams};
