//! The epoch-boundary merge tier: combining per-shard partial models
//! deterministically.
//!
//! DAnA's execution engine merges *threads* with algorithm-aware merge
//! units on a tree bus; the gang executor lifts the same idea one level
//! up, to whole accelerators. At every epoch boundary each shard hands
//! over its partial models, and the merge tier combines them with
//! semantics read off the deployed design itself:
//!
//! * **dense models** (broadcast + `Whole` write-back — linear/logistic/
//!   SVM gradient-style analytics): **weighted averaging**, weights being
//!   each shard's tuple count — the Bismarck-style model-averaging
//!   aggregation that makes data-parallel in-RDBMS training practical;
//! * **row-indexed models** (`Row` write-back — LRMF factors): **row
//!   ownership partitioning** — each shard owns the factor rows its
//!   rating tuples touched. Uniquely-owned rows copy from their owner
//!   verbatim; rows touched by several shards average over exactly the
//!   touching shards (folded in shard-index order), which mini-batches a
//!   contended row's updates instead of discarding all but one shard's;
//! * models a design never writes keep shard 0's values verbatim.
//!
//! Determinism is structural, not incidental: partials are *buffered by
//! shard index* and folded `0..k` regardless of the order shards finished
//! in, and a one-shard merge is the identity (no arithmetic touches the
//! values), which is what makes `shards = 1` bit-identical to the serial
//! path.

use dana_engine::engine::{BUS_WORDS, MODEL_PORTS};
use dana_engine::{EngineDesign, ModelWrite};

use crate::error::{ParallelError, ParallelResult};

/// How one model variable combines across shards.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelMergeKind {
    /// Tuple-count-weighted average (dense gradient-style models).
    WeightedAverage,
    /// Factor-row ownership: the tuple column holding the model's row
    /// index, read at plan time to record which rows each shard touches.
    RowOwnership { column: usize },
    /// Never written by the design: shard 0's values pass through.
    KeepShardZero,
}

/// Deploy-derived merge semantics for every model of a design, in model
/// declaration order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeSpec {
    kinds: Vec<ModelMergeKind>,
    /// `(rows, cols)` per model, for shape checks and cycle accounting.
    shapes: Vec<(usize, usize)>,
}

impl MergeSpec {
    /// Reads the merge semantics off a deployed design. `Whole` writes
    /// average; `Row` writes partition by ownership, requiring the row
    /// index to be a raw tuple column (the DSL's `setModelRow(M, i, …)`
    /// with `i` an input) — a computed index would make shard ownership
    /// unknowable at plan time, so it is refused with a typed error
    /// rather than merged wrongly.
    pub fn derive(design: &EngineDesign) -> ParallelResult<MergeSpec> {
        let mut kinds = vec![ModelMergeKind::KeepShardZero; design.models.len()];
        for w in &design.model_writes {
            match w {
                ModelWrite::Whole { model, .. } => {
                    kinds[*model as usize] = ModelMergeKind::WeightedAverage;
                }
                ModelWrite::Row { model, index, .. } => {
                    let column = design
                        .input_slots
                        .iter()
                        .position(|slot| slot == index)
                        .ok_or_else(|| ParallelError::UnsupportedMerge {
                            model: design.models[*model as usize].name.clone(),
                            reason: "row index is computed, not a tuple column".to_string(),
                        })?;
                    kinds[*model as usize] = ModelMergeKind::RowOwnership { column };
                }
            }
        }
        let shapes = design.models.iter().map(|m| (m.rows, m.cols)).collect();
        Ok(MergeSpec { kinds, shapes })
    }

    pub fn kinds(&self) -> &[ModelMergeKind] {
        &self.kinds
    }

    /// `(model index, tuple column, rows)` for every row-owned model —
    /// what the gang's ownership recorder watches during the first scan.
    pub fn ownership_columns(&self) -> Vec<(usize, usize, usize)> {
        self.kinds
            .iter()
            .enumerate()
            .filter_map(|(mi, k)| match k {
                ModelMergeKind::RowOwnership { column } => Some((mi, *column, self.shapes[mi].0)),
                _ => None,
            })
            .collect()
    }

    pub fn has_row_models(&self) -> bool {
        self.kinds
            .iter()
            .any(|k| matches!(k, ModelMergeKind::RowOwnership { .. }))
    }
}

/// Which factor rows one shard's tuples touch, per row-owned model:
/// `(model index, touched bitmap over rows)`. Constant across epochs (the
/// shard replays the same tuples), recorded once during the first scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardOwnership {
    pub per_model: Vec<(usize, Vec<bool>)>,
}

impl ShardOwnership {
    pub fn for_spec(spec: &MergeSpec) -> ShardOwnership {
        ShardOwnership {
            per_model: spec
                .ownership_columns()
                .into_iter()
                .map(|(mi, _, rows)| (mi, vec![false; rows]))
                .collect(),
        }
    }

    fn rows_for(&self, model: usize) -> Option<&[bool]> {
        self.per_model
            .iter()
            .find(|(mi, _)| *mi == model)
            .map(|(_, bits)| bits.as_slice())
    }

    /// Rows this shard owns for `model` (test/report convenience).
    pub fn owned_rows(&self, model: usize) -> usize {
        self.rows_for(model)
            .map(|bits| bits.iter().filter(|b| **b).count())
            .unwrap_or(0)
    }
}

/// The epoch-boundary merge buffer: shards submit their partial models
/// **in any completion order**; [`MergeBuffer::finish`] folds them in
/// shard-index order. One instance per epoch.
pub struct MergeBuffer<'s> {
    spec: &'s MergeSpec,
    /// Epoch-start model values — the base un-owned rows fall back to.
    base: Vec<Vec<f32>>,
    slots: Vec<Option<Vec<Vec<f32>>>>,
    weights: Vec<u64>,
}

impl<'s> MergeBuffer<'s> {
    /// A buffer expecting `shards` partials on top of the epoch-start
    /// model values `base`.
    pub fn new(spec: &'s MergeSpec, shards: usize, base: Vec<Vec<f32>>) -> MergeBuffer<'s> {
        MergeBuffer {
            spec,
            base,
            slots: (0..shards).map(|_| None).collect(),
            weights: vec![0; shards],
        }
    }

    /// Files shard `shard`'s partial models and its averaging weight (its
    /// tuple count). Arrival order is irrelevant — the slot is keyed by
    /// shard index.
    pub fn submit(&mut self, shard: usize, models: Vec<Vec<f32>>, weight: u64) {
        self.weights[shard] = weight;
        self.slots[shard] = Some(models);
    }

    /// Merges every filed partial in shard-index order. Returns the
    /// merged models and the tree-bus/model-port cycles the merge tier
    /// charged. A one-shard merge is the identity and charges nothing.
    pub fn finish(self, ownership: &[ShardOwnership]) -> ParallelResult<(Vec<Vec<f32>>, u64)> {
        let k = self.slots.len();
        if k == 0 {
            return Err(ParallelError::EmptyGang);
        }
        let mut partials = Vec::with_capacity(k);
        for (s, slot) in self.slots.into_iter().enumerate() {
            let models = slot.ok_or_else(|| {
                ParallelError::ModelShape(format!("shard {s} never submitted its partial"))
            })?;
            if models.len() != self.spec.kinds.len() {
                return Err(ParallelError::ModelShape(format!(
                    "shard {s} submitted {} models, design has {}",
                    models.len(),
                    self.spec.kinds.len()
                )));
            }
            for (mi, m) in models.iter().enumerate() {
                let (rows, cols) = self.spec.shapes[mi];
                if m.len() != rows * cols {
                    return Err(ParallelError::ModelShape(format!(
                        "shard {s} model {mi} has {} values, expected {}",
                        m.len(),
                        rows * cols
                    )));
                }
            }
            partials.push(models);
        }
        // One shard: the merge is the identity — no arithmetic, no
        // cycles — so a 1-gang run stays bit-identical to serial.
        if k == 1 {
            return Ok((partials.pop().expect("one partial"), 0));
        }

        let total_weight: u64 = self.weights.iter().sum();
        let mut cycles = 0u64;
        let mut merged = self.base;
        for (mi, kind) in self.spec.kinds.iter().enumerate() {
            let (_, cols) = self.spec.shapes[mi];
            match kind {
                ModelMergeKind::WeightedAverage => {
                    let elements = merged[mi].len();
                    if total_weight == 0 {
                        merged[mi] = partials[0][mi].clone();
                    } else {
                        // Fold in shard-index order with f64 accumulators:
                        // the result is a pure function of (partials,
                        // weights), never of completion order.
                        for j in 0..elements {
                            let mut acc = 0.0f64;
                            for (s, p) in partials.iter().enumerate() {
                                acc += self.weights[s] as f64 * p[mi][j] as f64;
                            }
                            merged[mi][j] = (acc / total_weight as f64) as f32;
                        }
                    }
                    // All k partials stream to the merge unit, the merged
                    // model streams back — all over the shared bus.
                    cycles += ((k as u64 + 1) * elements as u64).div_ceil(BUS_WORDS);
                }
                ModelMergeKind::RowOwnership { .. } => {
                    let (rows, _) = self.spec.shapes[mi];
                    let mut touchers: Vec<&[bool]> = Vec::with_capacity(k);
                    for s in 0..k {
                        let Some(bits) = ownership.get(s).and_then(|o| o.rows_for(mi)) else {
                            return Err(ParallelError::ModelShape(format!(
                                "shard {s} has no ownership bitmap for model {mi}"
                            )));
                        };
                        touchers.push(bits);
                    }
                    let mut owned_elems = 0u64;
                    for row in 0..rows {
                        let owners: Vec<usize> = (0..k)
                            .filter(|&s| touchers[s].get(row).copied().unwrap_or(false))
                            .collect();
                        let lo = row * cols;
                        match owners.len() {
                            // Untouched: the epoch-start values stand.
                            0 => {}
                            // Uniquely owned: the owner's row, verbatim.
                            1 => {
                                let p = &partials[owners[0]][mi];
                                merged[mi][lo..lo + cols].copy_from_slice(&p[lo..lo + cols]);
                                owned_elems += cols as u64;
                            }
                            // Contended: average the touching shards'
                            // rows, folded in shard-index order. Every
                            // shard stepped from the same epoch-start
                            // row, so this behaves like mini-batching the
                            // row's updates rather than discarding all
                            // but one shard's.
                            m => {
                                for c in 0..cols {
                                    let mut acc = 0.0f64;
                                    for &s in &owners {
                                        acc += partials[s][mi][lo + c] as f64;
                                    }
                                    merged[mi][lo + c] = (acc / m as f64) as f32;
                                }
                                owned_elems += (m * cols) as u64;
                            }
                        }
                    }
                    // Owned rows scatter through the shared model-memory
                    // ports, like the engine's row write-back.
                    cycles += owned_elems.div_ceil(MODEL_PORTS);
                }
                ModelMergeKind::KeepShardZero => {
                    merged[mi] = partials[0][mi].clone();
                }
            }
        }
        Ok((merged, cycles))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_spec(elements: usize) -> MergeSpec {
        MergeSpec {
            kinds: vec![ModelMergeKind::WeightedAverage],
            shapes: vec![(1, elements)],
        }
    }

    fn row_spec(rows: usize, cols: usize) -> MergeSpec {
        MergeSpec {
            kinds: vec![ModelMergeKind::RowOwnership { column: 0 }],
            shapes: vec![(rows, cols)],
        }
    }

    #[test]
    fn weighted_average_folds_in_shard_order_any_arrival_order() {
        let spec = dense_spec(3);
        let partials: Vec<Vec<Vec<f32>>> = vec![
            vec![vec![1.0, 2.0, 3.0]],
            vec![vec![5.0, 6.0, 7.0]],
            vec![vec![-1.0, 0.5, 2.5]],
        ];
        let weights = [100u64, 300, 200];
        let mut reference: Option<Vec<Vec<f32>>> = None;
        // Every arrival permutation must produce bit-identical output.
        for perm in [
            [0usize, 1, 2],
            [0, 2, 1],
            [1, 0, 2],
            [1, 2, 0],
            [2, 0, 1],
            [2, 1, 0],
        ] {
            let mut buf = MergeBuffer::new(&spec, 3, vec![vec![0.0; 3]]);
            for &s in &perm {
                buf.submit(s, partials[s].clone(), weights[s]);
            }
            let (merged, cycles) = buf.finish(&[]).unwrap();
            assert!(cycles > 0);
            match &reference {
                None => reference = Some(merged),
                Some(r) => assert_eq!(&merged, r, "arrival order {perm:?} changed the merge"),
            }
        }
        // And the value is the weighted average.
        let merged = reference.unwrap();
        let expect = (100.0 * 1.0 + 300.0 * 5.0 - 200.0 * 1.0) / 600.0;
        assert!((merged[0][0] as f64 - expect).abs() < 1e-6);
    }

    #[test]
    fn one_shard_merge_is_the_identity() {
        let spec = dense_spec(4);
        let values = vec![vec![0.1f32, -0.2, 0.3, f32::MIN_POSITIVE]];
        let mut buf = MergeBuffer::new(&spec, 1, vec![vec![9.0; 4]]);
        buf.submit(0, values.clone(), 77);
        let (merged, cycles) = buf.finish(&[]).unwrap();
        assert_eq!(merged, values, "identity, bit for bit");
        assert_eq!(cycles, 0, "no merge-tier cost for one shard");
    }

    #[test]
    fn row_ownership_copies_unique_rows_and_averages_contended_ones() {
        let spec = row_spec(4, 2);
        // Base rows are all -1; shard 0 touches rows {0, 2}, shard 1
        // touches {2, 3}: row 0 is shard 0's verbatim, row 1 stays at
        // base, row 2 (contended) averages the two shards, row 3 is
        // shard 1's verbatim.
        let base = vec![vec![-1.0f32; 8]];
        let p0 = vec![vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]];
        let p1 = vec![vec![10.0, 10.1, 10.2, 10.3, 10.4, 10.5, 10.6, 10.7]];
        let own = vec![
            ShardOwnership {
                per_model: vec![(0, vec![true, false, true, false])],
            },
            ShardOwnership {
                per_model: vec![(0, vec![false, false, true, true])],
            },
        ];
        let avg = |a: f32, b: f32| ((a as f64 + b as f64) / 2.0) as f32;
        let expected = vec![
            0.0,
            0.1,
            -1.0,
            -1.0,
            avg(0.4, 10.4),
            avg(0.5, 10.5),
            10.6,
            10.7,
        ];
        for (a, b) in [((0, p0.clone()), (1, p1.clone())), ((1, p1), (0, p0))] {
            let mut buf = MergeBuffer::new(&spec, 2, base.clone());
            buf.submit(a.0, a.1.clone(), 10);
            buf.submit(b.0, b.1.clone(), 10);
            let (merged, cycles) = buf.finish(&own).unwrap();
            assert_eq!(
                merged[0], expected,
                "unique rows verbatim, untouched row at base, contended row averaged"
            );
            assert!(cycles > 0);
        }
    }

    #[test]
    fn missing_or_misshapen_partials_are_typed_errors() {
        let spec = dense_spec(2);
        let buf = MergeBuffer::new(&spec, 2, vec![vec![0.0; 2]]);
        assert!(matches!(buf.finish(&[]), Err(ParallelError::ModelShape(_))));
        let mut buf = MergeBuffer::new(&spec, 1, vec![vec![0.0; 2]]);
        buf.submit(0, vec![vec![1.0; 3]], 1);
        assert!(matches!(buf.finish(&[]), Err(ParallelError::ModelShape(_))));
    }
}
