//! The shard planner: partitioning one heap snapshot into contiguous
//! page-range shards.
//!
//! Intra-query parallelism splits a single table scan across a gang of
//! accelerator instances. Shards are **contiguous page ranges** — pages
//! are the unit the buffer pool, the Striders, and the batch data path
//! already speak — assigned greedily so shard sizes differ by at most one
//! page. Contiguity is what makes parallel PREDICT trivially
//! order-preserving: concatenating per-shard outputs in shard-index order
//! *is* source page order.

use dana_storage::{HeapFile, SourceError, TupleBatch, TupleSource};

/// One shard: a half-open page range `[start_page, end_page)` of the
/// snapshotted heap, with its tuple count resolved at plan time (every
/// heap page is full except possibly the last, so the count is pure
/// arithmetic — no page decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRange {
    pub index: usize,
    pub start_page: u32,
    pub end_page: u32,
    pub tuples: u64,
}

impl ShardRange {
    pub fn pages(&self) -> u32 {
        self.end_page - self.start_page
    }
}

/// A complete partition of a heap into shards, in page order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<ShardRange>,
}

impl ShardPlan {
    /// Plans `requested` shards over `heap`. The effective shard count is
    /// clamped to the page count (a shard with no pages would idle an
    /// accelerator) and to at least one; an empty heap yields a single
    /// empty shard so downstream code has a uniform shape.
    pub fn new(heap: &HeapFile, requested: usize) -> ShardPlan {
        let pages = heap.page_count();
        let k = requested.clamp(1, (pages as usize).max(1));
        let base = pages / k as u32;
        let extra = pages % k as u32;
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0u32;
        for index in 0..k {
            let len = base + u32::from((index as u32) < extra);
            let end = start + len;
            ranges.push(ShardRange {
                index,
                start_page: start,
                end_page: end,
                tuples: heap.tuples_in_page_range(start, end),
            });
            start = end;
        }
        debug_assert_eq!(start, pages);
        ShardPlan { ranges }
    }

    /// The shard count a gang over `heap` would actually run with —
    /// `requested` clamped to the page count (and at least one). The
    /// serving tier sizes gang leases with this so a lease never holds
    /// more instances than the plan has shards for.
    pub fn effective_shards(heap_pages: u32, requested: usize) -> usize {
        requested.clamp(1, (heap_pages as usize).max(1))
    }

    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Tuples per shard, in shard order — the dense merge tier's
    /// averaging weights.
    pub fn tuple_counts(&self) -> Vec<u64> {
        self.ranges.iter().map(|r| r.tuples).collect()
    }

    pub fn total_tuples(&self) -> u64 {
        self.ranges.iter().map(|r| r.tuples).sum()
    }
}

/// Plans shard boundaries for a *filtered* scan in **tuple space**: the
/// per-shard tuple counts [`ShardPlan::new`] would produce over a virtual
/// heap holding `total_tuples` densely packed at `capacity` tuples per
/// page. This is the shard plan of the equivalent pre-materialized
/// filtered table, which is what keeps a pushdown-sharded gang
/// bit-identical to running the same gang on `SELECT … INTO t_f` output:
/// post-filter tuples land packed in the materialized heap, so its page
/// boundaries fall at multiples of the packed page capacity.
pub fn packed_tuple_splits(total_tuples: u64, capacity: u64, requested: usize) -> Vec<u64> {
    assert!(capacity > 0, "page capacity must be positive");
    let pages = total_tuples.div_ceil(capacity);
    let k = requested.clamp(1, (pages as usize).max(1));
    let base = pages / k as u64;
    let extra = pages % k as u64;
    let mut splits = Vec::with_capacity(k);
    let mut start_page = 0u64;
    for index in 0..k {
        let end_page = start_page + base + u64::from((index as u64) < extra);
        let start_tuple = (start_page * capacity).min(total_tuples);
        let end_tuple = (end_page * capacity).min(total_tuples);
        splits.push(end_tuple - start_tuple);
        start_page = end_page;
    }
    debug_assert_eq!(splits.iter().sum::<u64>(), total_tuples);
    splits
}

/// Re-batches a flat tuple stream (page-at-a-time extraction `batches`)
/// into one [`ReplaySource`] per entry of `splits` (per-shard tuple
/// counts, as from [`packed_tuple_splits`]). Row order is preserved:
/// concatenating the shards in order replays the input stream exactly.
/// Each shard's rows are packed into a single batch — the execution
/// engine's within-shard results depend only on the flat row stream, so
/// batch boundaries inside a shard are free.
pub fn split_replay_sources(
    width: usize,
    batches: &[TupleBatch],
    splits: &[u64],
) -> Vec<ReplaySource> {
    let mut rows = batches.iter().flat_map(|b| b.rows());
    splits
        .iter()
        .map(|&n| {
            let mut batch = TupleBatch::with_capacity(width, n as usize);
            for _ in 0..n {
                let row = rows.next().expect("splits exceed available tuples");
                batch.push_row(row);
            }
            ReplaySource::new(width, vec![batch])
        })
        .collect()
}

/// A rewindable [`TupleSource`] over pre-extracted batches — the serial
/// facade's shard source. `Dana` owns a `&mut` buffer pool, so it cannot
/// run several streaming scans at once; instead it extracts each shard's
/// page range once (charging I/O and Strider work exactly like a
/// streaming first pass) and hands the gang these cheap replaying
/// sources. Batch boundaries stay one-per-page, so the engine sees the
/// identical stream a live page scan would produce.
pub struct ReplaySource {
    batches: Vec<TupleBatch>,
    width: usize,
    tuples: u64,
    next: usize,
}

impl ReplaySource {
    pub fn new(width: usize, batches: Vec<TupleBatch>) -> ReplaySource {
        let tuples = batches.iter().map(|b| b.len() as u64).sum();
        ReplaySource {
            batches,
            width,
            tuples,
            next: 0,
        }
    }
}

impl TupleSource for ReplaySource {
    fn width(&self) -> usize {
        self.width
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.next >= self.batches.len() {
            return Ok(None);
        }
        self.next += 1;
        Ok(Some(&self.batches[self.next - 1]))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.next = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        Some(self.tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Schema, Tuple};

    fn heap(n: usize) -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::training(4), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            b.insert(&Tuple::training(&[k as f32; 4], 1.0)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn shards_cover_every_page_once_with_exact_tuple_counts() {
        let h = heap(1000);
        for k in [1usize, 2, 3, 4, 7] {
            let plan = ShardPlan::new(&h, k);
            assert_eq!(plan.shards(), k.min(h.page_count() as usize));
            assert_eq!(plan.total_tuples(), 1000, "shards = {k}");
            let mut next = 0u32;
            for (i, r) in plan.ranges().iter().enumerate() {
                assert_eq!(r.index, i);
                assert_eq!(r.start_page, next);
                assert!(r.end_page > r.start_page, "no empty shards");
                next = r.end_page;
            }
            assert_eq!(next, h.page_count());
            // Balanced to within one page.
            let sizes: Vec<u32> = plan.ranges().iter().map(|r| r.pages()).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn shard_count_clamps_to_pages_and_empty_heap_is_one_shard() {
        let h = heap(50); // one page
        let plan = ShardPlan::new(&h, 8);
        assert_eq!(plan.shards(), h.page_count() as usize);
        assert_eq!(plan.total_tuples(), 50);

        let empty = HeapFileBuilder::new(Schema::training(4), 8 * 1024, TupleDirection::Ascending)
            .unwrap()
            .finish();
        let plan = ShardPlan::new(&empty, 4);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.ranges()[0].pages(), 0);
        assert_eq!(plan.total_tuples(), 0);
        // Zero requested clamps to one.
        assert_eq!(ShardPlan::new(&h, 0).shards(), 1);
    }

    #[test]
    fn packed_splits_match_shard_plan_over_materialized_heap() {
        // The virtual plan must agree with ShardPlan::new over a real heap
        // holding the same tuples densely packed.
        for n in [0usize, 1, 50, 137, 1000] {
            let h = heap(n);
            let capacity = u64::from(h.layout().capacity);
            for k in [1usize, 2, 3, 4, 7] {
                let plan = ShardPlan::new(&h, k);
                let splits = packed_tuple_splits(n as u64, capacity, k);
                assert_eq!(splits.len(), plan.shards(), "n={n} k={k}");
                assert_eq!(splits, plan.tuple_counts(), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn split_replay_sources_preserve_order_and_counts() {
        let batches = vec![
            TupleBatch::from_rows(1, [[0.0], [1.0], [2.0]]),
            TupleBatch::from_rows(1, [[3.0], [4.0]]),
            TupleBatch::from_rows(1, [[5.0], [6.0], [7.0], [8.0]]),
        ];
        let mut sources = split_replay_sources(1, &batches, &[4, 3, 2]);
        assert_eq!(sources.len(), 3);
        let mut seen = Vec::new();
        for (src, want) in sources.iter_mut().zip([4u64, 3, 2]) {
            assert_eq!(src.tuple_count_hint(), Some(want));
            while let Some(b) = src.next_batch().unwrap() {
                seen.extend(b.rows().map(|r| r[0]));
            }
        }
        assert_eq!(seen, (0..9).map(|v| v as f32).collect::<Vec<_>>());
    }

    #[test]
    fn replay_source_replays_identically_per_scan() {
        let b1 = TupleBatch::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        let b2 = TupleBatch::from_rows(2, [[5.0, 6.0]]);
        let mut s = ReplaySource::new(2, vec![b1.clone(), b2.clone()]);
        assert_eq!(s.tuple_count_hint(), Some(3));
        assert_eq!(s.next_batch().unwrap().unwrap(), &b1);
        assert_eq!(s.next_batch().unwrap().unwrap(), &b2);
        assert!(s.next_batch().unwrap().is_none());
        s.rewind().unwrap();
        assert_eq!(s.next_batch().unwrap().unwrap(), &b1);
    }
}
