//! The shard planner: partitioning one heap snapshot into contiguous
//! page-range shards.
//!
//! Intra-query parallelism splits a single table scan across a gang of
//! accelerator instances. Shards are **contiguous page ranges** — pages
//! are the unit the buffer pool, the Striders, and the batch data path
//! already speak — assigned greedily so shard sizes differ by at most one
//! page. Contiguity is what makes parallel PREDICT trivially
//! order-preserving: concatenating per-shard outputs in shard-index order
//! *is* source page order.

use dana_storage::{HeapFile, SourceError, TupleBatch, TupleSource};

/// One shard: a half-open page range `[start_page, end_page)` of the
/// snapshotted heap, with its tuple count resolved at plan time (every
/// heap page is full except possibly the last, so the count is pure
/// arithmetic — no page decode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRange {
    pub index: usize,
    pub start_page: u32,
    pub end_page: u32,
    pub tuples: u64,
}

impl ShardRange {
    pub fn pages(&self) -> u32 {
        self.end_page - self.start_page
    }
}

/// A complete partition of a heap into shards, in page order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<ShardRange>,
}

impl ShardPlan {
    /// Plans `requested` shards over `heap`. The effective shard count is
    /// clamped to the page count (a shard with no pages would idle an
    /// accelerator) and to at least one; an empty heap yields a single
    /// empty shard so downstream code has a uniform shape.
    pub fn new(heap: &HeapFile, requested: usize) -> ShardPlan {
        let pages = heap.page_count();
        let k = requested.clamp(1, (pages as usize).max(1));
        let base = pages / k as u32;
        let extra = pages % k as u32;
        let mut ranges = Vec::with_capacity(k);
        let mut start = 0u32;
        for index in 0..k {
            let len = base + u32::from((index as u32) < extra);
            let end = start + len;
            ranges.push(ShardRange {
                index,
                start_page: start,
                end_page: end,
                tuples: heap.tuples_in_page_range(start, end),
            });
            start = end;
        }
        debug_assert_eq!(start, pages);
        ShardPlan { ranges }
    }

    /// The shard count a gang over `heap` would actually run with —
    /// `requested` clamped to the page count (and at least one). The
    /// serving tier sizes gang leases with this so a lease never holds
    /// more instances than the plan has shards for.
    pub fn effective_shards(heap_pages: u32, requested: usize) -> usize {
        requested.clamp(1, (heap_pages as usize).max(1))
    }

    pub fn shards(&self) -> usize {
        self.ranges.len()
    }

    pub fn ranges(&self) -> &[ShardRange] {
        &self.ranges
    }

    /// Tuples per shard, in shard order — the dense merge tier's
    /// averaging weights.
    pub fn tuple_counts(&self) -> Vec<u64> {
        self.ranges.iter().map(|r| r.tuples).collect()
    }

    pub fn total_tuples(&self) -> u64 {
        self.ranges.iter().map(|r| r.tuples).sum()
    }
}

/// A rewindable [`TupleSource`] over pre-extracted batches — the serial
/// facade's shard source. `Dana` owns a `&mut` buffer pool, so it cannot
/// run several streaming scans at once; instead it extracts each shard's
/// page range once (charging I/O and Strider work exactly like a
/// streaming first pass) and hands the gang these cheap replaying
/// sources. Batch boundaries stay one-per-page, so the engine sees the
/// identical stream a live page scan would produce.
pub struct ReplaySource {
    batches: Vec<TupleBatch>,
    width: usize,
    tuples: u64,
    next: usize,
}

impl ReplaySource {
    pub fn new(width: usize, batches: Vec<TupleBatch>) -> ReplaySource {
        let tuples = batches.iter().map(|b| b.len() as u64).sum();
        ReplaySource {
            batches,
            width,
            tuples,
            next: 0,
        }
    }
}

impl TupleSource for ReplaySource {
    fn width(&self) -> usize {
        self.width
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        if self.next >= self.batches.len() {
            return Ok(None);
        }
        self.next += 1;
        Ok(Some(&self.batches[self.next - 1]))
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.next = 0;
        Ok(())
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        Some(self.tuples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Schema, Tuple};

    fn heap(n: usize) -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::training(4), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            b.insert(&Tuple::training(&[k as f32; 4], 1.0)).unwrap();
        }
        b.finish()
    }

    #[test]
    fn shards_cover_every_page_once_with_exact_tuple_counts() {
        let h = heap(1000);
        for k in [1usize, 2, 3, 4, 7] {
            let plan = ShardPlan::new(&h, k);
            assert_eq!(plan.shards(), k.min(h.page_count() as usize));
            assert_eq!(plan.total_tuples(), 1000, "shards = {k}");
            let mut next = 0u32;
            for (i, r) in plan.ranges().iter().enumerate() {
                assert_eq!(r.index, i);
                assert_eq!(r.start_page, next);
                assert!(r.end_page > r.start_page, "no empty shards");
                next = r.end_page;
            }
            assert_eq!(next, h.page_count());
            // Balanced to within one page.
            let sizes: Vec<u32> = plan.ranges().iter().map(|r| r.pages()).collect();
            let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
            assert!(max - min <= 1, "unbalanced: {sizes:?}");
        }
    }

    #[test]
    fn shard_count_clamps_to_pages_and_empty_heap_is_one_shard() {
        let h = heap(50); // one page
        let plan = ShardPlan::new(&h, 8);
        assert_eq!(plan.shards(), h.page_count() as usize);
        assert_eq!(plan.total_tuples(), 50);

        let empty = HeapFileBuilder::new(Schema::training(4), 8 * 1024, TupleDirection::Ascending)
            .unwrap()
            .finish();
        let plan = ShardPlan::new(&empty, 4);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.ranges()[0].pages(), 0);
        assert_eq!(plan.total_tuples(), 0);
        // Zero requested clamps to one.
        assert_eq!(ShardPlan::new(&h, 0).shards(), 1);
    }

    #[test]
    fn replay_source_replays_identically_per_scan() {
        let b1 = TupleBatch::from_rows(2, [[1.0, 2.0], [3.0, 4.0]]);
        let b2 = TupleBatch::from_rows(2, [[5.0, 6.0]]);
        let mut s = ReplaySource::new(2, vec![b1.clone(), b2.clone()]);
        assert_eq!(s.tuple_count_hint(), Some(3));
        assert_eq!(s.next_batch().unwrap().unwrap(), &b1);
        assert_eq!(s.next_batch().unwrap().unwrap(), &b2);
        assert!(s.next_batch().unwrap().is_none());
        s.rewind().unwrap();
        assert_eq!(s.next_batch().unwrap().unwrap(), &b1);
    }
}
