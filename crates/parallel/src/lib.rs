//! # dana-parallel — intra-query data parallelism
//!
//! DAnA scales one analytic across many lockstep *threads* and merges
//! their partials with algorithm-aware merge units (§5.2); the
//! accelerator pool (the serving tier) scales across *queries*. This
//! crate closes the gap between them: **one query, many accelerators** —
//! the same model-averaging aggregation pattern Bismarck shows makes
//! data-parallel in-RDBMS training practical, lifted to whole gang
//! members:
//!
//! ```text
//!              heap snapshot
//!                   │ ShardPlan (contiguous page ranges, ±1 page)
//!       ┌───────────┼───────────┐
//!       ▼           ▼           ▼
//!   shard 0      shard 1     shard k-1        (gang lease: k instances,
//!  TupleSource  TupleSource  TupleSource       atomically acquired)
//!       │           │           │
//!   TrainingSession per shard — one epoch each, in lockstep
//!       └───────────┼───────────┘
//!                   ▼
//!            MergeBuffer (epoch boundary)
//!      dense: tuple-weighted average · LRMF: row ownership
//!                   │ merged global model
//!                   └──► next epoch (or done)
//! ```
//!
//! Determinism contract:
//! * partials merge **in shard-index order**, whatever order shards
//!   complete in ([`merge::MergeBuffer`] buffers by index);
//! * a one-shard gang is the **identity merge** — `shards = 1` training
//!   is bit-identical (models *and* stats) to the serial engine;
//! * parallel scoring concatenates shard outputs in shard order, which is
//!   source page order — bit-identical to serial scoring for every shard
//!   count, because per-tuple scoring math is lane- and
//!   boundary-invariant.

pub mod error;
pub mod gang;
pub mod merge;
pub mod shard;

pub use error::{ParallelError, ParallelResult};
pub use gang::{
    evaluate_gang, score_gang, score_gang_concat, train_gang, train_gang_guarded, GangGuard,
    GangOutcome, ShardEval, ShardScore,
};
pub use merge::{MergeBuffer, MergeSpec, ModelMergeKind, ShardOwnership};
pub use shard::{packed_tuple_splits, split_replay_sources, ReplaySource, ShardPlan, ShardRange};
