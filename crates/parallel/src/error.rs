//! Errors the intra-query parallel tier can surface.

use std::fmt;

use dana_engine::EngineError;
use dana_infer::InferError;

/// Failures planning or executing a gang-scheduled parallel query.
#[derive(Debug)]
pub enum ParallelError {
    /// A shard's engine run failed (reported for the lowest-index failing
    /// shard, so concurrent failures surface deterministically).
    Engine { shard: usize, source: EngineError },
    /// A shard's scoring run failed.
    Infer { shard: usize, source: InferError },
    /// The design's model merge semantics cannot be derived — e.g. a
    /// row-scattered model whose row index is computed rather than read
    /// straight from a tuple column, so shard ownership is unknowable at
    /// plan time.
    UnsupportedMerge { model: String, reason: String },
    /// A gang needs at least one shard.
    EmptyGang,
    /// The gang's query deadline passed at an epoch boundary
    /// (cooperative cancellation).
    Cancelled,
    /// Per-shard partial models disagree with the design's model shapes.
    ModelShape(String),
}

impl fmt::Display for ParallelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParallelError::Engine { shard, source } => {
                write!(f, "shard {shard}: engine: {source}")
            }
            ParallelError::Infer { shard, source } => {
                write!(f, "shard {shard}: scoring: {source}")
            }
            ParallelError::UnsupportedMerge { model, reason } => {
                write!(
                    f,
                    "model '{model}' cannot be merged across shards: {reason}"
                )
            }
            ParallelError::EmptyGang => write!(f, "a gang needs at least one shard"),
            ParallelError::Cancelled => {
                write!(f, "gang training cancelled: query deadline exceeded")
            }
            ParallelError::ModelShape(msg) => write!(f, "partial-model shape: {msg}"),
        }
    }
}

impl std::error::Error for ParallelError {}

pub type ParallelResult<T> = Result<T, ParallelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shard() {
        let e = ParallelError::Engine {
            shard: 3,
            source: EngineError::TupleWidth {
                got: 2,
                expected: 4,
            },
        };
        assert!(e.to_string().contains("shard 3"));
        let e = ParallelError::UnsupportedMerge {
            model: "L".into(),
            reason: "computed row index".into(),
        };
        assert!(e.to_string().contains("'L'"));
    }
}
