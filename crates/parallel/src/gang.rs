//! Gang-scheduled shard execution: one query, many accelerators.
//!
//! A gang runs the *same* cached lowered program on every member, each
//! member streaming its own page-range shard. Training is
//! **epoch-synchronous**: all shards run one epoch from the same global
//! model, join at the epoch boundary, and the merge tier
//! ([`crate::merge`]) produces the next global model — the shard-level
//! analogue of the engine's per-batch thread merge. Scoring is
//! embarrassingly parallel: shards score concurrently and the caller
//! concatenates outputs in shard-index order (= source page order).
//!
//! Shard threads are real OS threads (`std::thread::scope`), so on a
//! multi-core host the wall clock shrinks too; the *simulated* timing is
//! composed by the caller from the per-shard counters returned here
//! (critical-path shard + merge-tier cycles).

use dana_engine::{CancelToken, EngineStats, ExecutionEngine, FaultPlan, ModelStore};
use dana_infer::{
    evaluate_source_partial, score_source, MetricKind, MetricPartial, ScoringProgram, ScoringStats,
};
use dana_storage::{SourceError, TupleBatch, TupleSource};

use crate::error::{ParallelError, ParallelResult};
use crate::merge::{MergeBuffer, MergeSpec, ShardOwnership};

/// Everything one gang-scheduled training run produced.
#[derive(Debug, Clone)]
pub struct GangOutcome {
    /// The final merged models (model declaration order, row-major).
    pub models: Vec<Vec<f32>>,
    pub epochs_run: u32,
    pub converged_early: bool,
    /// Per-shard engine counters, in shard order, each stamped with the
    /// gang's epoch outcome.
    pub shard_stats: Vec<EngineStats>,
    /// Per-shard tuples per epoch (the merge tier's averaging weights).
    pub shard_tuples: Vec<u64>,
    /// Tree-bus / model-port cycles the epoch-boundary merge tier
    /// charged, summed over all epochs. Zero for a one-shard gang.
    pub merge_cycles: u64,
    /// Shards that faulted mid-training and were re-executed on a
    /// survivor (deduplicated, ascending). Empty for a no-fault run.
    pub faulted_shards: Vec<usize>,
    /// Shard-epochs re-executed to recover from faults.
    pub reexecuted_epochs: u32,
}

impl GangOutcome {
    /// The merge tier's seconds at an accelerator clock — the lifecycle
    /// trace's `merge` span for a gang-scheduled query.
    pub fn merge_seconds(&self, clock_hz: f64) -> f64 {
        self.merge_cycles as f64 / clock_hz.max(1.0)
    }
}

/// Watches a shard's first scan to record which factor rows its tuples
/// touch (row-ownership merge input). Purely observational — batches
/// pass through untouched, so wrapping changes nothing numerically.
struct OwnershipRecorder<'a> {
    inner: &'a mut dyn TupleSource,
    /// `(model, tuple column, rows)` to watch, from the merge spec.
    columns: &'a [(usize, usize, usize)],
    ownership: &'a mut ShardOwnership,
}

/// Marks the rows `batch` touches in `ownership` (free function so the
/// recorder can observe while the batch reference still borrows its
/// inner source — disjoint field borrows).
fn record_rows(
    columns: &[(usize, usize, usize)],
    ownership: &mut ShardOwnership,
    batch: &TupleBatch,
) {
    for row in batch.rows() {
        for &(model, column, _) in columns {
            // The engine resolves row indices with `.round()`; match it
            // so ownership names exactly the rows the scatters hit.
            let idx = row[column].round();
            if idx >= 0.0 {
                if let Some((_, bits)) = ownership.per_model.iter_mut().find(|(mi, _)| *mi == model)
                {
                    if let Some(b) = bits.get_mut(idx as usize) {
                        *b = true;
                    }
                }
            }
        }
    }
}

impl TupleSource for OwnershipRecorder<'_> {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn next_batch(&mut self) -> Result<Option<&TupleBatch>, SourceError> {
        let batch = self.inner.next_batch()?;
        if let Some(b) = batch {
            record_rows(self.columns, self.ownership, b);
        }
        Ok(batch)
    }

    fn rewind(&mut self) -> Result<(), SourceError> {
        self.inner.rewind()
    }

    fn tuple_count_hint(&self) -> Option<u64> {
        self.inner.tuple_count_hint()
    }
}

/// Runs gang-scheduled, epoch-synchronous training: one
/// [`dana_engine::TrainingSession`] per shard, all executing the shared
/// engine's lowered program, merged deterministically at every epoch
/// boundary. `sources` are the per-shard tuple streams in shard order;
/// `init` is the initial global model.
///
/// A one-shard gang is **bit-identical** to
/// [`ExecutionEngine::run_training`] — same per-epoch code, identity
/// merge — in both models and cycle stats.
pub fn train_gang<S: TupleSource + Send>(
    engine: &ExecutionEngine,
    sources: &mut [S],
    init: Vec<Vec<f32>>,
) -> ParallelResult<GangOutcome> {
    let cancel = CancelToken::none();
    train_gang_guarded(engine, sources, init, &GangGuard::new(&cancel))
}

/// Guard context for a gang run: cooperative cancellation plus an
/// optional deterministic fault plan (see [`dana_engine::FaultPlan`]).
#[derive(Debug, Clone, Copy)]
pub struct GangGuard<'a> {
    pub cancel: &'a CancelToken,
    pub fault: Option<&'a FaultPlan>,
}

impl<'a> GangGuard<'a> {
    /// Cancellation only, no injection.
    pub fn new(cancel: &'a CancelToken) -> GangGuard<'a> {
        GangGuard {
            cancel,
            fault: None,
        }
    }

    pub fn with_fault(mut self, fault: Option<&'a FaultPlan>) -> GangGuard<'a> {
        self.fault = fault;
        self
    }
}

/// [`train_gang`] with graceful degradation. At every epoch boundary the
/// guard's token is checked (typed [`ParallelError::Cancelled`] on
/// expiry) and the fault plan, if any, may fail a gang member. A faulted
/// shard's epoch is **re-executed on a survivor** after the barrier:
/// because every shard starts each epoch from a fresh store holding the
/// merged global model, and injection precedes the epoch's work, the
/// re-executed epoch — and therefore the deterministic merge and the
/// final models — is bit-identical to the no-fault run. The outcome
/// reports which shards faulted so the pool can quarantine the instances
/// that backed them.
pub fn train_gang_guarded<S: TupleSource + Send>(
    engine: &ExecutionEngine,
    sources: &mut [S],
    init: Vec<Vec<f32>>,
    guard: &GangGuard<'_>,
) -> ParallelResult<GangOutcome> {
    let k = sources.len();
    if k == 0 {
        return Err(ParallelError::EmptyGang);
    }
    let design = engine.design();
    let spec = MergeSpec::derive(design)?;
    let own_columns = spec.ownership_columns();
    let mut ownership: Vec<ShardOwnership> =
        (0..k).map(|_| ShardOwnership::for_spec(&spec)).collect();

    let mut sessions: Vec<_> = (0..k).map(|_| engine.training_session()).collect();
    let mut global = init;
    let max_epochs = design.convergence.max_epochs();
    let mut epochs_run = 0u32;
    let mut converged_early = false;
    let mut merge_cycles = 0u64;
    let mut shard_tuples: Vec<u64> = vec![0; k];
    let mut faulted_shards: Vec<usize> = Vec::new();
    let mut reexecuted_epochs = 0u32;

    for epoch in 0..max_epochs {
        if guard.cancel.is_cancelled() {
            return Err(ParallelError::Cancelled);
        }
        if let Some(plan) = guard.fault {
            if plan.should_panic(epoch) {
                panic!("injected accelerator panic at gang epoch {epoch}");
            }
        }
        // Every shard starts the epoch from the merged global model.
        let mut stores: Vec<ModelStore> = Vec::with_capacity(k);
        for _ in 0..k {
            stores.push(
                ModelStore::new(design, global.clone())
                    .map_err(|e| ParallelError::ModelShape(e.to_string()))?,
            );
        }

        // One OS thread per shard, joined at the epoch boundary (the
        // gang's barrier). Each thread owns its shard's source, session,
        // store, and ownership bitmap for the duration of the epoch.
        let results: Vec<Result<bool, dana_engine::EngineError>> = std::thread::scope(|scope| {
            let handles: Vec<_> = sources
                .iter_mut()
                .zip(sessions.iter_mut())
                .zip(stores.iter_mut())
                .zip(ownership.iter_mut())
                .enumerate()
                .map(|(shard, (((source, session), store), own))| {
                    let columns = own_columns.as_slice();
                    let fault = guard.fault;
                    scope.spawn(move || {
                        if let Some(plan) = fault {
                            // The member faults *before* touching any of
                            // the epoch's tuples, so the survivor re-runs
                            // from exactly the epoch-start state.
                            if plan.should_fail(Some(shard), epoch) {
                                return Err(dana_engine::EngineError::TransientFault { epoch });
                            }
                        }
                        if epoch > 0 {
                            source.rewind().map_err(dana_engine::EngineError::from)?;
                            session.run_epoch(source, store)
                        } else if columns.is_empty() {
                            session.run_epoch(source, store)
                        } else {
                            // First scan: record factor-row ownership.
                            let mut recorder = OwnershipRecorder {
                                inner: source,
                                columns,
                                ownership: own,
                            };
                            session.run_epoch(&mut recorder, store)
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard thread must not panic"))
                .collect()
        });

        // Surface the lowest-index *terminal* failure deterministically;
        // transient member faults degrade to survivor re-execution.
        let mut flags: Vec<Option<bool>> = vec![None; k];
        let mut faulted_now: Vec<usize> = Vec::new();
        for (shard, r) in results.into_iter().enumerate() {
            match r {
                Ok(flag) => flags[shard] = Some(flag),
                Err(source) if source.is_transient() => faulted_now.push(shard),
                Err(source) => return Err(ParallelError::Engine { shard, source }),
            }
        }

        // Graceful degradation: re-execute each faulted shard's epoch on
        // a survivor. A fresh store from the epoch-start global model and
        // a rewound source reproduce the epoch bit-identically, keeping
        // the deterministic merge — and the final models — unchanged.
        for &s in &faulted_now {
            stores[s] = ModelStore::new(design, global.clone())
                .map_err(|e| ParallelError::ModelShape(e.to_string()))?;
            sources[s].rewind().map_err(|e| ParallelError::Engine {
                shard: s,
                source: dana_engine::EngineError::from(e),
            })?;
            let run = if epoch == 0 && !own_columns.is_empty() {
                ownership[s] = ShardOwnership::for_spec(&spec);
                let mut recorder = OwnershipRecorder {
                    inner: &mut sources[s],
                    columns: own_columns.as_slice(),
                    ownership: &mut ownership[s],
                };
                sessions[s].run_epoch(&mut recorder, &mut stores[s])
            } else {
                sessions[s].run_epoch(&mut sources[s], &mut stores[s])
            };
            let flag = run.map_err(|source| ParallelError::Engine { shard: s, source })?;
            flags[s] = Some(flag);
            reexecuted_epochs += 1;
            if !faulted_shards.contains(&s) {
                faulted_shards.push(s);
            }
        }
        let flags: Vec<bool> = flags
            .into_iter()
            .map(|f| f.expect("every shard either ran or was re-executed"))
            .collect();

        if epoch == 0 {
            for (s, session) in sessions.iter().enumerate() {
                shard_tuples[s] = session.stats().tuples_processed;
            }
        }

        // Epoch-boundary merge, folded in shard-index order.
        let mut buffer = MergeBuffer::new(&spec, k, std::mem::take(&mut global));
        for (s, store) in stores.into_iter().enumerate() {
            buffer.submit(s, store.into_values(), shard_tuples[s]);
        }
        let (merged, cycles) = buffer.finish(&ownership)?;
        global = merged;
        merge_cycles += cycles;

        epochs_run += 1;
        // The gang converges when every shard's condition fired — for a
        // one-shard gang this is exactly the serial check.
        if !flags.is_empty() && flags.iter().all(|f| *f) {
            converged_early = true;
            break;
        }
    }

    let shard_stats = sessions
        .into_iter()
        .map(|s| s.finish(epochs_run, converged_early))
        .collect();
    faulted_shards.sort_unstable();
    Ok(GangOutcome {
        models: global,
        epochs_run,
        converged_early,
        shard_stats,
        shard_tuples,
        merge_cycles,
        faulted_shards,
        reexecuted_epochs,
    })
}

/// One shard's scoring output.
#[derive(Debug, Clone)]
pub struct ShardScore {
    pub predictions: Vec<f32>,
    pub stats: ScoringStats,
}

/// Scores every shard concurrently with the same bound program. Returns
/// per-shard outputs in shard order; concatenating `predictions` yields
/// the full table's predictions in source page order, bit-identical to a
/// serial scan (per-tuple scoring math is lane- and boundary-invariant).
pub fn score_gang<S: TupleSource + Send>(
    program: &ScoringProgram,
    lanes: u16,
    sources: &mut [S],
) -> ParallelResult<Vec<ShardScore>> {
    if sources.is_empty() {
        return Err(ParallelError::EmptyGang);
    }
    let results: Vec<Result<ShardScore, dana_infer::InferError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter_mut()
            .map(|source| {
                scope.spawn(move || {
                    let mut out =
                        Vec::with_capacity(source.tuple_count_hint().unwrap_or(0) as usize);
                    let stats = score_source(program, lanes, source, &mut out)?;
                    Ok(ShardScore {
                        predictions: out,
                        stats,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread must not panic"))
            .collect()
    });
    results
        .into_iter()
        .enumerate()
        .map(|(shard, r)| r.map_err(|source| ParallelError::Infer { shard, source }))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_engine::isa::{AluOp, EngineProgram, Loc, MicroOp, Src, Step};
    use dana_engine::{ConvergenceCheck, EngineDesign, MergePlan, ModelWrite};
    use dana_ml::Link;

    /// The engine crate's hand-scheduled 2-feature linear regression.
    fn linreg_design(num_threads: u16, epochs: u32) -> EngineDesign {
        let alu = |au, op, a, b, dst| MicroOp::Alu { au, op, a, b, dst };
        let s = |au, slot| Src::Slot(Loc::new(au, slot));
        let lr = 0.05f32;
        EngineDesign {
            num_threads,
            acs_per_thread: 1,
            slots_per_au: 8,
            bus_lanes: 1,
            program: EngineProgram {
                per_tuple: vec![
                    Step {
                        ops: vec![
                            alu(0, AluOp::Mul, s(0, 0), s(0, 1), 2),
                            alu(1, AluOp::Mul, s(1, 0), s(1, 1), 2),
                        ],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Add, s(0, 2), s(1, 2), 2)],
                    },
                    Step {
                        ops: vec![alu(0, AluOp::Sub, s(0, 2), s(0, 3), 2)],
                    },
                    Step {
                        ops: vec![
                            alu(0, AluOp::Mul, s(0, 2), s(0, 0), 2),
                            alu(1, AluOp::Mul, s(0, 2), s(1, 0), 2),
                        ],
                    },
                ],
                post_merge: vec![
                    Step {
                        ops: vec![
                            alu(0, AluOp::Mul, Src::Const(lr), s(0, 2), 2),
                            alu(1, AluOp::Mul, Src::Const(lr), s(1, 2), 2),
                        ],
                    },
                    Step {
                        ops: vec![
                            alu(0, AluOp::Sub, s(0, 1), s(0, 2), 4),
                            alu(1, AluOp::Sub, s(1, 1), s(1, 2), 4),
                        ],
                    },
                ],
            },
            input_slots: vec![Loc::new(0, 0), Loc::new(1, 0)],
            output_slots: vec![Loc::new(0, 3)],
            meta: vec![],
            models: vec![dana_engine::engine::ModelDesc {
                name: "w".into(),
                rows: 1,
                cols: 2,
                broadcast_slots: Some(vec![Loc::new(0, 1), Loc::new(1, 1)]),
            }],
            merge: MergePlan::Whole {
                op: dana_dsl::MergeOp::Sum,
                slots: vec![Loc::new(0, 2), Loc::new(1, 2)],
            },
            model_writes: vec![ModelWrite::Whole {
                model: 0,
                src: vec![Loc::new(0, 4), Loc::new(1, 4)],
            }],
            convergence: ConvergenceCheck::Epochs(epochs),
        }
    }

    fn tuples(n: usize) -> Vec<Vec<f32>> {
        (0..n)
            .map(|k| {
                let x0 = (k % 7) as f32 * 0.25;
                let x1 = (k % 5) as f32 * 0.5 - 1.0;
                vec![x0, x1, 2.0 * x0 - x1]
            })
            .collect()
    }

    fn replay(rows: &[Vec<f32>], per_batch: usize) -> crate::ReplaySource {
        crate::ReplaySource::new(
            3,
            rows.chunks(per_batch)
                .map(|c| TupleBatch::from_rows(3, c))
                .collect(),
        )
    }

    #[test]
    fn one_shard_gang_is_bit_identical_to_serial_training() {
        let design = linreg_design(4, 5);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let rows = tuples(97);

        let mut serial_store = ModelStore::new(&design, vec![vec![0.0, 0.0]]).unwrap();
        let mut serial_src = replay(&rows, 16);
        let serial_stats = engine
            .run_training(&mut serial_src, &mut serial_store)
            .unwrap();

        let mut sources = vec![replay(&rows, 16)];
        let outcome = train_gang(&engine, &mut sources, vec![vec![0.0, 0.0]]).unwrap();
        assert_eq!(outcome.models, serial_store.into_values());
        assert_eq!(outcome.shard_stats[0], serial_stats);
        assert_eq!(outcome.merge_cycles, 0);
        assert_eq!(outcome.epochs_run, 5);
        assert_eq!(outcome.shard_tuples, vec![97]);
    }

    #[test]
    fn multi_shard_gang_is_deterministic_and_learns() {
        let design = linreg_design(4, 20);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let rows = tuples(240);
        let halves: Vec<&[Vec<f32>]> = vec![&rows[..120], &rows[120..]];
        let run = || {
            let mut sources: Vec<_> = halves.iter().map(|h| replay(h, 16)).collect();
            train_gang(&engine, &mut sources, vec![vec![0.0, 0.0]]).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.models, b.models, "gang training must be reproducible");
        assert!(a.merge_cycles > 0, "the merge tier must charge cycles");
        assert_eq!(a.shard_tuples, vec![120, 120]);
        // The merged model still fits y = 2·x0 − x1.
        let w = &a.models[0];
        assert!((w[0] - 2.0).abs() < 0.15, "w = {w:?}");
        assert!((w[1] + 1.0).abs() < 0.15, "w = {w:?}");
    }

    #[test]
    fn gang_member_fault_degrades_bit_identically() {
        let design = linreg_design(4, 20);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let rows = tuples(240);
        let halves: Vec<&[Vec<f32>]> = vec![&rows[..120], &rows[120..]];
        let run = |fault: Option<&FaultPlan>| {
            let mut sources: Vec<_> = halves.iter().map(|h| replay(h, 16)).collect();
            let cancel = CancelToken::none();
            let guard = GangGuard::new(&cancel).with_fault(fault);
            train_gang_guarded(&engine, &mut sources, vec![vec![0.0, 0.0]], &guard).unwrap()
        };
        let clean = run(None);
        assert!(clean.faulted_shards.is_empty());
        assert_eq!(clean.reexecuted_epochs, 0);

        let plan = FaultPlan::shard_fault(1, 3);
        let degraded = run(Some(&plan));
        assert_eq!(plan.injected(), 1, "the member fault must fire");
        assert_eq!(degraded.faulted_shards, vec![1]);
        assert_eq!(degraded.reexecuted_epochs, 1);
        assert_eq!(
            degraded.models, clean.models,
            "survivor re-execution must keep the merge bit-identical"
        );
        assert_eq!(degraded.shard_stats, clean.shard_stats);
        assert_eq!(degraded.merge_cycles, clean.merge_cycles);
    }

    #[test]
    fn epoch_zero_member_fault_preserves_ownership_merge() {
        // Epoch-0 faults exercise the ownership-recorder re-wrap path.
        let design = linreg_design(4, 6);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let rows = tuples(160);
        let halves: Vec<&[Vec<f32>]> = vec![&rows[..80], &rows[80..]];
        let run = |fault: Option<&FaultPlan>| {
            let mut sources: Vec<_> = halves.iter().map(|h| replay(h, 16)).collect();
            let cancel = CancelToken::none();
            let guard = GangGuard::new(&cancel).with_fault(fault);
            train_gang_guarded(&engine, &mut sources, vec![vec![0.0, 0.0]], &guard).unwrap()
        };
        let clean = run(None);
        let plan = FaultPlan::shard_fault(0, 0);
        let degraded = run(Some(&plan));
        assert_eq!(degraded.models, clean.models);
        assert_eq!(degraded.shard_tuples, clean.shard_tuples);
        assert_eq!(degraded.faulted_shards, vec![0]);
    }

    #[test]
    fn cancelled_gang_returns_typed_error() {
        let design = linreg_design(4, 20);
        let engine = ExecutionEngine::new(design.clone()).unwrap();
        let rows = tuples(64);
        let mut sources = vec![replay(&rows, 16)];
        let cancel = CancelToken::manual();
        cancel.cancel();
        let guard = GangGuard::new(&cancel);
        let err =
            train_gang_guarded(&engine, &mut sources, vec![vec![0.0, 0.0]], &guard).unwrap_err();
        assert!(matches!(err, ParallelError::Cancelled), "{err}");
    }

    #[test]
    fn score_gang_concat_matches_serial_scan() {
        let program = ScoringProgram::Dense {
            weights: vec![0.7, -0.3],
            link: Link::Sigmoid,
            signed_labels: false,
        };
        let rows = tuples(101);
        let mut serial_src = replay(&rows, 13);
        let mut serial = Vec::new();
        let serial_stats = score_source(&program, 4, &mut serial_src, &mut serial).unwrap();

        for split in [1usize, 2, 4] {
            let chunk = rows.len().div_ceil(split);
            let mut sources: Vec<_> = rows.chunks(chunk).map(|c| replay(c, 13)).collect();
            let shards = score_gang(&program, 4, &mut sources).unwrap();
            let concat: Vec<f32> = shards
                .iter()
                .flat_map(|s| s.predictions.iter().copied())
                .collect();
            assert_eq!(concat, serial, "{split} shards");
            let total: u64 = shards.iter().map(|s| s.stats.tuples).sum();
            assert_eq!(total, serial_stats.tuples);
        }
    }
}

/// [`score_gang`] plus the order-preserving concatenation every caller
/// wants: the full prediction stream in source page order, and the
/// per-shard counters beside it. This is the single place shard outputs
/// are stitched back together.
pub fn score_gang_concat<S: TupleSource + Send>(
    program: &ScoringProgram,
    lanes: u16,
    sources: &mut [S],
) -> ParallelResult<(Vec<f32>, Vec<ScoringStats>)> {
    let shards = score_gang(program, lanes, sources)?;
    let mut predictions = Vec::with_capacity(shards.iter().map(|s| s.predictions.len()).sum());
    let mut stats = Vec::with_capacity(shards.len());
    for s in shards {
        predictions.extend(s.predictions);
        stats.push(s.stats);
    }
    Ok((predictions, stats))
}

/// One shard's metric fold.
#[derive(Debug, Clone, Copy)]
pub struct ShardEval {
    pub partial: MetricPartial,
    pub stats: ScoringStats,
}

/// Evaluates every shard concurrently; the caller absorbs the partials in
/// shard-index order and finishes the metric once. A one-shard gang's
/// finished value is bit-identical to the serial streamed metric.
pub fn evaluate_gang<S: TupleSource + Send>(
    program: &ScoringProgram,
    lanes: u16,
    sources: &mut [S],
    metric: MetricKind,
) -> ParallelResult<Vec<ShardEval>> {
    if sources.is_empty() {
        return Err(ParallelError::EmptyGang);
    }
    let results: Vec<Result<ShardEval, dana_infer::InferError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sources
            .iter_mut()
            .map(|source| {
                scope.spawn(move || {
                    let (partial, stats) = evaluate_source_partial(program, lanes, source, metric)?;
                    Ok(ShardEval { partial, stats })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard thread must not panic"))
            .collect()
    });
    results
        .into_iter()
        .enumerate()
        .map(|(shard, r)| r.map_err(|source| ParallelError::Infer { shard, source }))
        .collect()
}
