//! # dana-infer — the in-database inference tier
//!
//! Training (EXECUTE) leaves a model in the catalog; this crate is what
//! makes that model *usable without leaving the engine*, the missing half
//! of the paper's in-RDBMS analytics premise (MADlib-style workflows
//! train **and** score in-database; Bismarck treats both as first-class
//! in-RDBMS operations):
//!
//! ```text
//!  DEPLOY ──► derive_recipe(spec) ──────────────┐   (scoring lowering,
//!                                               ▼    cached on the entry)
//!  EXECUTE ─► trained model values ──► ScoringProgram::bind
//!                                               │
//!  PREDICT/EVALUATE ─► pages ─► TupleSource ─► SoA lockstep scorer
//!                                               │
//!                     ┌─────────────────────────┴───────────────┐
//!                     ▼                                         ▼
//!       materialized prediction table               streamed metric (mse,
//!       (HeapFileBuilder + derived schema)          log_loss, accuracy, rmse)
//! ```
//!
//! Predictions are held **bit-identical** to the `dana_ml::scorer` CPU
//! reference across execution modes and lockstep lane counts; streamed
//! metrics are bit-identical to the whole-batch `dana_ml::metrics`.

pub mod error;
pub mod executor;
pub mod materialize;
pub mod scoring;

pub use error::{InferError, InferResult};
pub use executor::{
    evaluate_source, evaluate_source_partial, score_batch, score_source, MetricPartial,
    ScoringStats,
};
pub use materialize::{
    build_prediction_heap, build_prediction_heap_selected, prediction_schema, PREDICTION_COLUMN,
};
pub use scoring::{derive_recipe, MetricKind, ScoringProgram, ScoringRecipe};
