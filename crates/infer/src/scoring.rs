//! Deploy-time scoring lowering: deriving a forward-pass-only program
//! from a trained analytic.
//!
//! Training UDFs compute `update(model, tuple)`; inference only needs the
//! *hypothesis* part of that computation — the paper's MADlib-style
//! workflow trains in-database and then scores/evaluates in-database
//! (Bismarck frames both as first-class in-RDBMS operations). The
//! [`derive_recipe`] pass runs at DEPLOY, beside the training lowering:
//! it inspects the DSL program's structure and extracts the forward pass
//!
//! * **dense families** — `link(w·x)`: identity for linear regression,
//!   `σ` for logistic regression, the raw signed margin for SVM (the
//!   comparison operator that gates the hinge sub-gradient marks the
//!   family);
//! * **LRMF** — the factor product `L[i]·R[j]` (row gathers marked by the
//!   DSL's `lookup`).
//!
//! The recipe is model-value-free: it is cached on the catalog entry (and
//! persisted in the artifact blob) at DEPLOY, then bound to the *latest
//! trained model values* at PREDICT/EVALUATE time by
//! [`ScoringProgram::bind`].

use dana_dsl::ast::{BinOp, DataKind, GroupOp, OpKind, UnaryFn, VarId};
use dana_dsl::zoo::Algorithm;
use dana_dsl::AlgoSpec;
use dana_ml::{Link, LrmfModel};

use crate::error::{InferError, InferResult};

/// Concurrent ports on the row-indexed factor memory, mirroring the
/// execution engine's BRAM banking (`dana_engine::MODEL_PORTS`): LRMF row
/// gathers from different lockstep lanes contend for these.
pub const MODEL_PORTS: u64 = 4;

/// An in-database quality metric EVALUATE can compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum MetricKind {
    /// Mean squared error (linear regression / SVM raw scores).
    Mse,
    /// Cross-entropy over predicted probabilities (logistic regression).
    LogLoss,
    /// Classification accuracy (logistic {0,1} or SVM ±1 labels).
    Accuracy,
    /// Root-mean-square rating error (LRMF).
    LrmfRmse,
}

impl MetricKind {
    pub fn name(&self) -> &'static str {
        match self {
            MetricKind::Mse => "mse",
            MetricKind::LogLoss => "log_loss",
            MetricKind::Accuracy => "classification_accuracy",
            MetricKind::LrmfRmse => "lrmf_rmse",
        }
    }

    /// Parses a metric name as written in an EVALUATE statement.
    pub fn parse(s: &str) -> Option<MetricKind> {
        match s.to_ascii_lowercase().as_str() {
            "mse" => Some(MetricKind::Mse),
            "log_loss" | "logloss" => Some(MetricKind::LogLoss),
            "accuracy" | "classification_accuracy" => Some(MetricKind::Accuracy),
            "lrmf_rmse" | "rmse" => Some(MetricKind::LrmfRmse),
            _ => None,
        }
    }
}

/// The deploy-time scoring artifact: which forward pass to run, shaped by
/// the analytic but independent of any trained values.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ScoringRecipe {
    /// `link(w·x)` over the first `features` columns.
    Dense {
        /// Model variable name (the trained-values lookup key).
        model: String,
        features: usize,
        link: Link,
        algorithm: Algorithm,
    },
    /// `L[i]·R[j]` over `(i, j, …)` index columns.
    Lrmf {
        l_model: String,
        r_model: String,
        rows: usize,
        cols: usize,
        rank: usize,
    },
}

impl ScoringRecipe {
    /// Columns the forward pass reads (features, or the two index
    /// columns). Tables at least this wide are scoreable.
    pub fn min_width(&self) -> usize {
        match self {
            ScoringRecipe::Dense { features, .. } => *features,
            ScoringRecipe::Lrmf { .. } => 2,
        }
    }

    /// Column EVALUATE reads the label/rating from.
    pub fn label_column(&self) -> usize {
        self.min_width()
    }

    /// Per-tuple scoring program length in engine cycles — one
    /// multiply-accumulate per feature (or per factor-rank element, twice,
    /// for LRMF) plus the link. The SJF admission hint prices a scoring
    /// query as `tuple count × this ÷ lanes`.
    pub fn per_tuple_cycles(&self) -> u64 {
        match self {
            ScoringRecipe::Dense { features, .. } => *features as u64 + 1,
            ScoringRecipe::Lrmf { rank, .. } => 2 * *rank as u64 + 1,
        }
    }

    /// The metric EVALUATE defaults to for this analytic family.
    pub fn default_metric(&self) -> MetricKind {
        match self {
            ScoringRecipe::Dense { algorithm, .. } => match algorithm {
                Algorithm::Logistic => MetricKind::LogLoss,
                Algorithm::Svm => MetricKind::Accuracy,
                _ => MetricKind::Mse,
            },
            ScoringRecipe::Lrmf { .. } => MetricKind::LrmfRmse,
        }
    }

    /// Whether `metric` is meaningful for this family — `lrmf_rmse` on a
    /// linear model (or `log_loss` on raw margins) is refused, not
    /// silently computed.
    pub fn check_metric(&self, metric: MetricKind) -> InferResult<()> {
        let ok = match (self, metric) {
            (ScoringRecipe::Lrmf { .. }, MetricKind::LrmfRmse) => true,
            (ScoringRecipe::Lrmf { .. }, _) => false,
            (ScoringRecipe::Dense { .. }, MetricKind::LrmfRmse) => false,
            (ScoringRecipe::Dense { link, .. }, MetricKind::LogLoss) => *link == Link::Sigmoid,
            (ScoringRecipe::Dense { link, .. }, MetricKind::Mse) => *link == Link::Identity,
            (ScoringRecipe::Dense { .. }, MetricKind::Accuracy) => true,
        };
        if ok {
            Ok(())
        } else {
            Err(InferError::MetricMismatch {
                metric,
                recipe: self.describe(),
            })
        }
    }

    fn describe(&self) -> String {
        match self {
            ScoringRecipe::Dense {
                link,
                features,
                algorithm,
                ..
            } => format!(
                "dense {} scorer ({} features, {} link)",
                match algorithm {
                    Algorithm::Linear => "linear",
                    Algorithm::Logistic => "logistic",
                    Algorithm::Svm => "svm",
                    Algorithm::Lrmf => "lrmf",
                },
                features,
                link.name()
            ),
            ScoringRecipe::Lrmf {
                rows, cols, rank, ..
            } => {
                format!("lrmf scorer ({rows}×{cols}, rank {rank})")
            }
        }
    }
}

/// Derives the forward-pass recipe from a training UDF's structure —
/// the scoring half of the deploy-time lowering.
pub fn derive_recipe(spec: &AlgoSpec) -> InferResult<ScoringRecipe> {
    let unsupported = |reason: &str| InferError::UnsupportedAnalytic {
        udf: spec.name.clone(),
        reason: reason.to_string(),
    };
    let models: Vec<_> = spec.vars_of_kind(DataKind::Model).collect();
    let flow = Dataflow::new(spec);

    if spec
        .stmts
        .iter()
        .any(|s| matches!(s.op, OpKind::Gather { .. }))
    {
        return derive_lrmf(spec, &flow, &models, unsupported);
    }

    // Dense families: one rank-1 model, features-wide input, scalar label.
    if models.len() != 1 {
        return Err(unsupported(&format!(
            "{} dense models (expected exactly one)",
            models.len()
        )));
    }
    let model = models[0];
    if model.dims.rank() != 1 {
        return Err(unsupported("dense model must be a rank-1 vector"));
    }
    let features = model.dims.0[0];
    if spec.input_width() != features {
        return Err(unsupported(&format!(
            "input width {} disagrees with model width {features}",
            spec.input_width()
        )));
    }
    if spec.output_width() != 1 {
        return Err(unsupported("dense scoring expects a single label column"));
    }

    // The raw score must actually be the dot product: a statement
    // `sigma(model * input, 1)` (operands in either order, through
    // identity/rename chains). Analytics whose hypothesis is anything
    // else are refused, not silently mis-scored.
    let score = flow
        .find(|op| match op {
            OpKind::Group(GroupOp::Sigma, prod, 1) => flow.def(*prod).is_some_and(|p| match p {
                OpKind::Binary(BinOp::Mul, a, b) => {
                    let (a, b) = (flow.resolve(*a), flow.resolve(*b));
                    (a == model.id && spec.var(b).kind == DataKind::Input)
                        || (b == model.id && spec.var(a).kind == DataKind::Input)
                }
                _ => false,
            }),
            _ => false,
        })
        .ok_or_else(|| unsupported("no `sigma(model * input, 1)` dot-product score"))?;
    let is_output = |v: VarId| spec.var(flow.resolve(v)).kind == DataKind::Output;

    // The link is read off the *error path*, not off incidental operator
    // usage elsewhere in the program:
    //   logistic — `sigmoid(score)` feeding a residual against the label;
    //   linear   — the raw score feeding that residual;
    //   svm      — a margin `label * score` gated by a comparison.
    let hypothesis = flow.find(|op| match op {
        OpKind::Unary(UnaryFn::Sigmoid, v) => flow.resolve(*v) == score,
        _ => false,
    });
    let residual_of = |h: VarId| {
        flow.find(|op| match op {
            OpKind::Binary(BinOp::Sub, a, b) => {
                (flow.resolve(*a) == h && is_output(*b)) || (flow.resolve(*b) == h && is_output(*a))
            }
            _ => false,
        })
    };
    let (link, algorithm) = if let Some(h) = hypothesis {
        if residual_of(h).is_none() {
            return Err(unsupported(
                "sigmoid(score) does not feed a residual against the label",
            ));
        }
        (Link::Sigmoid, Algorithm::Logistic)
    } else if let Some(margin) = flow.find(|op| match op {
        OpKind::Binary(BinOp::Mul, a, b) => {
            (flow.resolve(*a) == score && is_output(*b))
                || (flow.resolve(*b) == score && is_output(*a))
        }
        _ => false,
    }) {
        let gated = flow
            .find(|op| match op {
                OpKind::Binary(BinOp::Lt | BinOp::Gt, a, b) => {
                    flow.resolve(*a) == margin || flow.resolve(*b) == margin
                }
                _ => false,
            })
            .is_some();
        if !gated {
            return Err(unsupported(
                "label·score margin exists but no comparison gates it",
            ));
        }
        (Link::Identity, Algorithm::Svm)
    } else if residual_of(score).is_some() {
        (Link::Identity, Algorithm::Linear)
    } else {
        return Err(unsupported(
            "score feeds neither a residual, a sigmoid hypothesis, nor a gated margin",
        ));
    };
    Ok(ScoringRecipe::Dense {
        model: model.name.clone(),
        features,
        link,
        algorithm,
    })
}

/// LRMF derivation: the factor binding comes from the *gathers*, not
/// from model declaration order — the factor indexed by the tuple's
/// first column is the row factor, whatever order `L`/`R` were declared.
fn derive_lrmf(
    spec: &AlgoSpec,
    flow: &Dataflow<'_>,
    models: &[&dana_dsl::ast::VarDecl],
    unsupported: impl Fn(&str) -> InferError,
) -> InferResult<ScoringRecipe> {
    if models.len() != 2 {
        return Err(unsupported(&format!(
            "row-gather analytic with {} models (LRMF needs two factors)",
            models.len()
        )));
    }
    let inputs: Vec<_> = spec.vars_of_kind(DataKind::Input).collect();
    if inputs.len() != 2 || inputs.iter().any(|i| !i.dims.is_scalar()) {
        return Err(unsupported(
            "LRMF scoring expects two scalar index columns (i, j)",
        ));
    }
    // Map each index input (= tuple column, in declaration order) to the
    // factor it gathers.
    let mut gathers: Vec<(VarId, VarId, VarId)> = Vec::new(); // (matrix, index, target)
    for s in &spec.stmts {
        if let OpKind::Gather { matrix, index } = s.op {
            gathers.push((flow.resolve(matrix), flow.resolve(index), s.target));
        }
    }
    if gathers.len() != 2 {
        return Err(unsupported(&format!(
            "{} row gathers (LRMF scoring expects exactly two)",
            gathers.len()
        )));
    }
    let factor_for = |input: VarId| -> InferResult<(VarId, VarId)> {
        gathers
            .iter()
            .find(|(_, idx, _)| *idx == input)
            .map(|(m, _, t)| (*m, *t))
            .ok_or_else(|| {
                unsupported(&format!(
                    "input '{}' gathers no factor",
                    spec.var(input).name
                ))
            })
    };
    let (l_id, l_row) = factor_for(inputs[0].id)?; // tuple column 0
    let (r_id, r_row) = factor_for(inputs[1].id)?; // tuple column 1
    if l_id == r_id {
        return Err(unsupported("both index columns gather the same factor"));
    }
    // The prediction must be the factor product `sigma(L[i] * R[j], 1)`.
    flow.find(|op| match op {
        OpKind::Group(GroupOp::Sigma, prod, 1) => flow.def(*prod).is_some_and(|p| match p {
            OpKind::Binary(BinOp::Mul, a, b) => {
                let (a, b) = (flow.resolve(*a), flow.resolve(*b));
                (a == l_row && b == r_row) || (a == r_row && b == l_row)
            }
            _ => false,
        }),
        _ => false,
    })
    .ok_or_else(|| unsupported("no `sigma(L[i] * R[j], 1)` factor-product score"))?;

    let (l, r) = (spec.var(l_id), spec.var(r_id));
    if l.dims.rank() != 2 || r.dims.rank() != 2 {
        return Err(unsupported("LRMF factors must be rank-2"));
    }
    let (rows, l_rank) = (l.dims.0[0], l.dims.0[1]);
    let (cols, r_rank) = (r.dims.0[0], r.dims.0[1]);
    if l_rank != r_rank {
        return Err(unsupported(&format!(
            "factor ranks disagree: {l_rank} vs {r_rank}"
        )));
    }
    Ok(ScoringRecipe::Lrmf {
        l_model: l.name.clone(),
        r_model: r.name.clone(),
        rows,
        cols,
        rank: l_rank,
    })
}

/// Definition lookup + identity-chain resolution over a spec's
/// three-address statements (last definition wins, like execution order).
struct Dataflow<'s> {
    spec: &'s AlgoSpec,
    defs: std::collections::HashMap<VarId, &'s OpKind>,
}

impl<'s> Dataflow<'s> {
    fn new(spec: &'s AlgoSpec) -> Dataflow<'s> {
        let mut defs = std::collections::HashMap::new();
        for s in &spec.stmts {
            defs.insert(s.target, &s.op);
        }
        Dataflow { spec, defs }
    }

    /// The operation defining `v`, if any statement assigns it.
    fn def(&self, v: VarId) -> Option<&'s OpKind> {
        self.defs.get(&self.resolve(v)).copied()
    }

    /// Follows `Identity` (rename/copy) chains to the underlying variable.
    fn resolve(&self, mut v: VarId) -> VarId {
        for _ in 0..self.spec.vars.len() {
            match self.defs.get(&v) {
                Some(OpKind::Identity(src)) => v = *src,
                _ => return v,
            }
        }
        v
    }

    /// First statement target whose defining op matches `pred`, resolved
    /// through identity chains.
    fn find(&self, pred: impl Fn(&OpKind) -> bool) -> Option<VarId> {
        self.spec
            .stmts
            .iter()
            .find(|s| pred(&s.op))
            .map(|s| self.resolve(s.target))
    }
}

/// A recipe bound to trained model values — the executable artifact the
/// SoA scorer runs.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoringProgram {
    Dense {
        weights: Vec<f32>,
        link: Link,
        /// Labels are ±1 (SVM) rather than {0, 1} — accuracy's convention.
        signed_labels: bool,
    },
    Lrmf {
        model: LrmfModel,
    },
}

impl ScoringProgram {
    /// Binds a deploy-time recipe to the trained model values stored by
    /// the last EXECUTE (`models`/`names` in the UDF's declaration
    /// order), validating every shape.
    pub fn bind(
        recipe: &ScoringRecipe,
        names: &[String],
        models: &[Vec<f32>],
    ) -> InferResult<ScoringProgram> {
        let lookup = |name: &str| -> InferResult<&Vec<f32>> {
            names
                .iter()
                .position(|n| n == name)
                .map(|i| &models[i])
                .ok_or_else(|| {
                    InferError::ModelShape(format!("no trained values for model '{name}'"))
                })
        };
        match recipe {
            ScoringRecipe::Dense {
                model,
                features,
                link,
                algorithm,
            } => {
                let w = lookup(model)?;
                if w.len() != *features {
                    return Err(InferError::ModelShape(format!(
                        "model '{model}' has {} values, recipe expects {features}",
                        w.len()
                    )));
                }
                Ok(ScoringProgram::Dense {
                    weights: w.clone(),
                    link: *link,
                    signed_labels: *algorithm == Algorithm::Svm,
                })
            }
            ScoringRecipe::Lrmf {
                l_model,
                r_model,
                rows,
                cols,
                rank,
            } => {
                let l = lookup(l_model)?;
                let r = lookup(r_model)?;
                if l.len() != rows * rank || r.len() != cols * rank {
                    return Err(InferError::ModelShape(format!(
                        "factors are {}/{} values, recipe expects {}/{}",
                        l.len(),
                        r.len(),
                        rows * rank,
                        cols * rank
                    )));
                }
                Ok(ScoringProgram::Lrmf {
                    model: LrmfModel {
                        l: l.clone(),
                        r: r.clone(),
                        rows: *rows,
                        cols: *cols,
                        rank: *rank,
                    },
                })
            }
        }
    }

    pub fn min_width(&self) -> usize {
        match self {
            ScoringProgram::Dense { weights, .. } => weights.len(),
            ScoringProgram::Lrmf { .. } => 2,
        }
    }

    pub fn label_column(&self) -> usize {
        self.min_width()
    }

    pub fn per_tuple_cycles(&self) -> u64 {
        match self {
            ScoringProgram::Dense { weights, .. } => weights.len() as u64 + 1,
            ScoringProgram::Lrmf { model } => 2 * model.rank as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_dsl::zoo::{
        linear_regression, logistic_regression, lrmf, svm, DenseParams, LrmfParams,
    };

    fn dense_params(d: usize) -> DenseParams {
        DenseParams {
            n_features: d,
            ..Default::default()
        }
    }

    #[test]
    fn derives_dense_recipes_for_the_zoo() {
        let lin = derive_recipe(&linear_regression(dense_params(8)).unwrap()).unwrap();
        assert_eq!(
            lin,
            ScoringRecipe::Dense {
                model: "mo".into(),
                features: 8,
                link: Link::Identity,
                algorithm: Algorithm::Linear,
            }
        );
        assert_eq!(lin.default_metric(), MetricKind::Mse);
        assert_eq!(lin.per_tuple_cycles(), 9);

        let log = derive_recipe(&logistic_regression(dense_params(5)).unwrap()).unwrap();
        assert!(matches!(
            log,
            ScoringRecipe::Dense {
                link: Link::Sigmoid,
                algorithm: Algorithm::Logistic,
                ..
            }
        ));
        assert_eq!(log.default_metric(), MetricKind::LogLoss);

        let s = derive_recipe(&svm(dense_params(5)).unwrap()).unwrap();
        assert!(matches!(
            s,
            ScoringRecipe::Dense {
                link: Link::Identity,
                algorithm: Algorithm::Svm,
                ..
            }
        ));
        assert_eq!(s.default_metric(), MetricKind::Accuracy);
    }

    #[test]
    fn derives_lrmf_recipe() {
        let spec = lrmf(LrmfParams {
            rows: 20,
            cols: 15,
            rank: 6,
            ..Default::default()
        })
        .unwrap();
        let r = derive_recipe(&spec).unwrap();
        assert_eq!(
            r,
            ScoringRecipe::Lrmf {
                l_model: "L".into(),
                r_model: "R".into(),
                rows: 20,
                cols: 15,
                rank: 6,
            }
        );
        assert_eq!(r.min_width(), 2);
        assert_eq!(r.label_column(), 2);
        assert_eq!(r.per_tuple_cycles(), 13);
        assert_eq!(r.default_metric(), MetricKind::LrmfRmse);
    }

    #[test]
    fn metric_applicability_is_checked() {
        let lin = derive_recipe(&linear_regression(dense_params(4)).unwrap()).unwrap();
        assert!(lin.check_metric(MetricKind::Mse).is_ok());
        assert!(lin.check_metric(MetricKind::Accuracy).is_ok());
        assert!(matches!(
            lin.check_metric(MetricKind::LrmfRmse),
            Err(InferError::MetricMismatch { .. })
        ));
        assert!(lin.check_metric(MetricKind::LogLoss).is_err());

        let log = derive_recipe(&logistic_regression(dense_params(4)).unwrap()).unwrap();
        assert!(log.check_metric(MetricKind::LogLoss).is_ok());
        assert!(log.check_metric(MetricKind::Mse).is_err());

        let fac = derive_recipe(
            &lrmf(LrmfParams {
                ..Default::default()
            })
            .unwrap(),
        )
        .unwrap();
        assert!(fac.check_metric(MetricKind::LrmfRmse).is_ok());
        assert!(fac.check_metric(MetricKind::Accuracy).is_err());
    }

    #[test]
    fn non_link_hypothesis_is_refused_not_mis_scored() {
        // Shape-identical to linear regression — one rank-1 model, matching
        // input width, scalar label — but the hypothesis is (w·x)², not
        // link(w·x). The derivation must refuse, never emit a dot-product
        // scorer for it.
        use dana_dsl::AlgoBuilder;
        let mut a = AlgoBuilder::new("squared");
        let mo = a.model("mo", &[4]);
        let x = a.input("in", &[4]);
        let y = a.output("out");
        let lr = a.meta("lr", 0.01);
        let prod = a.mul(mo, x).unwrap();
        let s = a.sigma(prod, 1).unwrap();
        let sq = a.mul(s, s).unwrap(); // the non-link hypothesis
        let er = a.sub(sq, y).unwrap();
        let grad = a.mul(er, x).unwrap();
        let up = a.mul(lr, grad).unwrap();
        let mo_up = a.sub(mo, up).unwrap();
        a.set_model(mo, mo_up).unwrap();
        let spec = a.finish().unwrap();
        assert!(matches!(
            derive_recipe(&spec),
            Err(InferError::UnsupportedAnalytic { .. })
        ));
    }

    #[test]
    fn sigmoid_off_the_error_path_does_not_make_it_logistic() {
        // A linear residual with a sigmoid used elsewhere (a squashed
        // convergence signal) must still derive an identity link.
        use dana_dsl::AlgoBuilder;
        let mut a = AlgoBuilder::new("lin_with_sig");
        let mo = a.model("mo", &[3]);
        let x = a.input("in", &[3]);
        let y = a.output("out");
        let lr = a.meta("lr", 0.01);
        let prod = a.mul(mo, x).unwrap();
        let s = a.sigma(prod, 1).unwrap();
        let er = a.sub(s, y).unwrap();
        let squashed = a.sigmoid(er); // not on the hypothesis path
        let grad = a.mul(squashed, x).unwrap();
        let up = a.mul(lr, grad).unwrap();
        let mo_up = a.sub(mo, up).unwrap();
        a.set_model(mo, mo_up).unwrap();
        let spec = a.finish().unwrap();
        let r = derive_recipe(&spec).unwrap();
        assert!(
            matches!(
                r,
                ScoringRecipe::Dense {
                    link: Link::Identity,
                    algorithm: Algorithm::Linear,
                    ..
                }
            ),
            "sigmoid off the error path must not flip the link: {r:?}"
        );
    }

    #[test]
    fn lrmf_factors_bind_by_gather_not_declaration_order() {
        // Declare R before L: the factor indexed by tuple column 0 must
        // still come out as the row factor.
        use dana_dsl::AlgoBuilder;
        let (rows, cols, rank) = (12usize, 9usize, 3usize);
        let mut a = AlgoBuilder::new("lrmf_flipped");
        let r = a.model("R", &[cols, rank]); // declared first
        let l = a.model("L", &[rows, rank]);
        let i = a.input("i", &[]);
        let j = a.input("j", &[]);
        let y = a.output("rating");
        let lr = a.meta("lr", 0.05);
        let li = a.lookup(l, i).unwrap();
        let rj = a.lookup(r, j).unwrap();
        let prod = a.mul(li, rj).unwrap();
        let pred = a.sigma(prod, 1).unwrap();
        let e = a.sub(pred, y).unwrap();
        let lg = a.mul(e, rj).unwrap();
        let rg = a.mul(e, li).unwrap();
        let lup = a.mul(lr, lg).unwrap();
        let rup = a.mul(lr, rg).unwrap();
        let l_new = a.sub(li, lup).unwrap();
        let r_new = a.sub(rj, rup).unwrap();
        let _ = a.merge(l_new, 4, dana_dsl::MergeOp::Sum).unwrap();
        a.set_model_row(l, i, l_new).unwrap();
        a.set_model_row(r, j, r_new).unwrap();
        let spec = a.finish().unwrap();
        assert_eq!(
            derive_recipe(&spec).unwrap(),
            ScoringRecipe::Lrmf {
                l_model: "L".into(),
                r_model: "R".into(),
                rows,
                cols,
                rank,
            }
        );
    }

    #[test]
    fn parsed_dsl_sources_derive_recipes_too() {
        // The textual-DSL path (parser → AlgoSpec) must derive the same
        // families as the builder path.
        let lin =
            dana_dsl::parse_udf(&dana_dsl::zoo::linear_regression_source(6, 8, 2), "f").unwrap();
        assert!(matches!(
            derive_recipe(&lin).unwrap(),
            ScoringRecipe::Dense {
                link: Link::Identity,
                algorithm: Algorithm::Linear,
                ..
            }
        ));
        let log =
            dana_dsl::parse_udf(&dana_dsl::zoo::logistic_regression_source(6, 8, 2), "f").unwrap();
        assert!(matches!(
            derive_recipe(&log).unwrap(),
            ScoringRecipe::Dense {
                link: Link::Sigmoid,
                algorithm: Algorithm::Logistic,
                ..
            }
        ));
        let s = dana_dsl::parse_udf(&dana_dsl::zoo::svm_source(6, 8, 2), "f").unwrap();
        assert!(matches!(
            derive_recipe(&s).unwrap(),
            ScoringRecipe::Dense {
                algorithm: Algorithm::Svm,
                ..
            }
        ));
    }

    #[test]
    fn metric_names_parse_and_round_trip() {
        for m in [
            MetricKind::Mse,
            MetricKind::LogLoss,
            MetricKind::Accuracy,
            MetricKind::LrmfRmse,
        ] {
            assert_eq!(MetricKind::parse(m.name()), Some(m));
        }
        assert_eq!(MetricKind::parse("MSE"), Some(MetricKind::Mse));
        assert_eq!(MetricKind::parse("rmse"), Some(MetricKind::LrmfRmse));
        assert_eq!(MetricKind::parse("nope"), None);
    }

    #[test]
    fn bind_validates_shapes() {
        let recipe = derive_recipe(&linear_regression(dense_params(3)).unwrap()).unwrap();
        let names = vec!["mo".to_string()];
        let ok = ScoringProgram::bind(&recipe, &names, &[vec![1.0, 2.0, 3.0]]).unwrap();
        assert_eq!(ok.min_width(), 3);
        assert_eq!(ok.per_tuple_cycles(), 4);
        // Wrong width and missing name are typed errors.
        assert!(matches!(
            ScoringProgram::bind(&recipe, &names, &[vec![1.0]]),
            Err(InferError::ModelShape(_))
        ));
        assert!(matches!(
            ScoringProgram::bind(&recipe, &["other".to_string()], &[vec![1.0, 2.0, 3.0]]),
            Err(InferError::ModelShape(_))
        ));
    }

    #[test]
    fn recipe_serde_round_trips() {
        let recipe = derive_recipe(&logistic_regression(dense_params(7)).unwrap()).unwrap();
        let v = serde::Serialize::to_value(&recipe);
        let back = <ScoringRecipe as serde::Deserialize>::from_value(&v).unwrap();
        assert_eq!(back, recipe);
    }
}
