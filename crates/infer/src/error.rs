//! Inference-tier errors.

use std::fmt;

use dana_ml::MetricsError;
use dana_storage::{SourceError, StorageError};

use crate::scoring::MetricKind;

/// Errors raised while deriving, binding, or running a scoring program.
#[derive(Debug, Clone, PartialEq)]
pub enum InferError {
    /// The deployed analytic has no derivable forward pass (e.g. a custom
    /// DSL program whose structure matches none of the supported
    /// families).
    UnsupportedAnalytic { udf: String, reason: String },
    /// Trained model values disagree with the scoring recipe's shapes.
    ModelShape(String),
    /// The scored table is narrower than the scoring program's feature
    /// (or index) columns.
    SourceWidth { got: usize, need: usize },
    /// The requested metric needs a label column the table does not have.
    NoLabelColumn { metric: MetricKind, width: usize },
    /// The requested metric does not apply to this analytic family (e.g.
    /// `lrmf_rmse` on a linear model).
    MetricMismatch { metric: MetricKind, recipe: String },
    /// An LRMF index column addressed a factor row that does not exist.
    RowIndexOutOfRange {
        factor: &'static str,
        row: i64,
        rows: usize,
    },
    /// Metric computation failed (empty table, …).
    Metric(MetricsError),
    /// The tuple stream failed mid-scan.
    Source(SourceError),
    /// Storage failure while materializing the prediction table.
    Storage(StorageError),
    /// Prediction count disagrees with the heap being materialized.
    PredictionCount { predictions: usize, tuples: u64 },
}

impl fmt::Display for InferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InferError::UnsupportedAnalytic { udf, reason } => {
                write!(
                    f,
                    "analytic '{udf}' has no derivable scoring pass: {reason}"
                )
            }
            InferError::ModelShape(msg) => write!(f, "trained model shape: {msg}"),
            InferError::SourceWidth { got, need } => {
                write!(f, "table width {got} below the {need} scoring columns")
            }
            InferError::NoLabelColumn { metric, width } => write!(
                f,
                "metric '{}' needs a label column; table is only {width} wide",
                metric.name()
            ),
            InferError::MetricMismatch { metric, recipe } => {
                write!(f, "metric '{}' does not apply to {recipe}", metric.name())
            }
            InferError::RowIndexOutOfRange { factor, row, rows } => {
                write!(f, "{factor}-factor row {row} out of range ({rows} rows)")
            }
            InferError::Metric(e) => write!(f, "metric: {e}"),
            InferError::Source(e) => write!(f, "scoring scan: {e}"),
            InferError::Storage(e) => write!(f, "materialization: {e}"),
            InferError::PredictionCount {
                predictions,
                tuples,
            } => write!(f, "{predictions} predictions for a heap of {tuples} tuples"),
        }
    }
}

impl std::error::Error for InferError {}

impl From<MetricsError> for InferError {
    fn from(e: MetricsError) -> InferError {
        InferError::Metric(e)
    }
}

impl From<SourceError> for InferError {
    fn from(e: SourceError) -> InferError {
        InferError::Source(e)
    }
}

impl From<StorageError> for InferError {
    fn from(e: StorageError) -> InferError {
        InferError::Storage(e)
    }
}

pub type InferResult<T> = Result<T, InferError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = InferError::UnsupportedAnalytic {
            udf: "custom".into(),
            reason: "two dense models".into(),
        };
        assert!(e.to_string().contains("custom"));
        let e = InferError::SourceWidth { got: 2, need: 5 };
        assert!(e.to_string().contains('5'));
        let e = InferError::NoLabelColumn {
            metric: MetricKind::Mse,
            width: 3,
        };
        assert!(e.to_string().contains("mse"));
        let e: InferError = MetricsError::EmptyBatch { metric: "mse" }.into();
        assert!(e.to_string().contains("empty"));
        let e: InferError = SourceError("boom".into()).into();
        assert!(e.to_string().contains("boom"));
        let e: InferError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("'t'"));
    }
}
