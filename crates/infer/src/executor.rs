//! The SoA lockstep scoring executor.
//!
//! Scoring reuses the execution engine's lowered execution shape: tuples
//! are grouped `lanes` at a time, the group's columns are transposed into
//! a slot-major **structure-of-arrays** scratchpad (`xbuf[col*lanes +
//! lane]`), and each program step dispatches once and runs a tight loop
//! across all lockstep lanes — the same group-at-a-time discipline as
//! `dana_engine::lowered`, with the batch data path streaming pages
//! underneath.
//!
//! **Bit-identical by construction.** Every per-tuple prediction is a
//! sequential f32 multiply-accumulate over the feature axis followed by
//! the link — the exact operation order of the `dana_ml::scorer` CPU
//! reference — so predictions are independent of the lane count and the
//! batch boundaries. The differential suite holds the executor to the
//! reference across execution modes and lane counts 1/4/16.
//!
//! LRMF row gathers are bounds-checked before any work (a typed error,
//! never a panic) and charged against the shared factor-memory ports,
//! mirroring the training engine's port-contention accounting.

use dana_ml::metrics::{classified_correctly, log_loss_term, squared_error_term};
use dana_ml::MetricsError;
use dana_storage::{TupleBatch, TupleSource};

use crate::error::{InferError, InferResult};
use crate::scoring::{MetricKind, ScoringProgram, MODEL_PORTS};

/// Counters for one scoring run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScoringStats {
    pub tuples: u64,
    /// Lockstep groups executed (`ceil(tuples / lanes)`).
    pub groups: u64,
    /// Simulated engine cycles: one program issue per group, plus LRMF
    /// factor-port contention.
    pub cycles: u64,
    pub lanes: u16,
}

impl ScoringStats {
    /// The scan's engine-compute seconds at an accelerator clock — the
    /// lifecycle trace's `engine` span for a scoring query.
    pub fn engine_seconds(&self, clock_hz: f64) -> f64 {
        self.cycles as f64 / clock_hz.max(1.0)
    }
}

/// Streams a [`TupleSource`] through the scoring program, appending one
/// prediction per tuple to `out` (in tuple order). Returns the run's
/// cycle counters.
pub fn score_source(
    program: &ScoringProgram,
    lanes: u16,
    source: &mut dyn TupleSource,
    out: &mut Vec<f32>,
) -> InferResult<ScoringStats> {
    run_source(program, lanes, source, |_, pred, _| {
        out.push(pred);
        Ok(())
    })
}

/// Convenience: scores one materialized batch.
pub fn score_batch(
    program: &ScoringProgram,
    lanes: u16,
    batch: &TupleBatch,
) -> InferResult<(Vec<f32>, ScoringStats)> {
    let mut out = Vec::with_capacity(batch.len());
    let stats = score_source(
        program,
        lanes,
        &mut dana_storage::OneBatchSource::new(batch),
        &mut out,
    )?;
    Ok((out, stats))
}

/// Streams a [`TupleSource`] through the scoring program and folds each
/// `(raw score, prediction, label)` into `metric` — EVALUATE's path: no
/// prediction vector is materialized and no tuple leaves the engine.
pub fn evaluate_source(
    program: &ScoringProgram,
    lanes: u16,
    source: &mut dyn TupleSource,
    metric: MetricKind,
) -> InferResult<(f64, ScoringStats)> {
    let (partial, stats) = evaluate_source_partial(program, lanes, source, metric)?;
    Ok((partial.finish(metric)?, stats))
}

/// [`evaluate_source`] stopped one step short of the final division: the
/// raw `(sum, correct, n)` fold. This is the sharded EVALUATE's building
/// block — each shard folds its own stream, the partials combine in
/// shard-index order with [`MetricPartial::absorb`], and one
/// [`MetricPartial::finish`] produces the metric. A single shard's
/// partial finishes to exactly what [`evaluate_source`] returns.
pub fn evaluate_source_partial(
    program: &ScoringProgram,
    lanes: u16,
    source: &mut dyn TupleSource,
    metric: MetricKind,
) -> InferResult<(MetricPartial, ScoringStats)> {
    let signed = matches!(
        program,
        ScoringProgram::Dense {
            signed_labels: true,
            ..
        }
    );
    let label_col = program.label_column();
    if source.width() <= label_col {
        return Err(InferError::NoLabelColumn {
            metric,
            width: source.width(),
        });
    }
    let mut acc = MetricAccumulator::new(metric, signed);
    let stats = run_source(program, lanes, source, |raw, pred, label| {
        acc.update(raw, pred, label);
        Ok(())
    })?;
    Ok((acc.partial, stats))
}

/// The streaming core shared by scoring and evaluation: group tuples
/// `lanes` at a time into the SoA scratchpad, execute the program
/// group-at-a-time, emit `(raw, prediction, label)` per lane in tuple
/// order. The label is `NaN` when the stream has no label column (scoring
/// feature-only tables never reads it).
fn run_source(
    program: &ScoringProgram,
    lanes: u16,
    source: &mut dyn TupleSource,
    mut emit: impl FnMut(f32, f32, f32) -> InferResult<()>,
) -> InferResult<ScoringStats> {
    let lanes = (lanes as usize).max(1);
    let need = program.min_width();
    let width = source.width();
    if width < need {
        return Err(InferError::SourceWidth { got: width, need });
    }
    let label_col = program.label_column();
    let has_label = width > label_col;

    // Slot-major SoA scratchpad: column k of lane l lives at k*lanes + l,
    // so each program step streams contiguously across the lanes.
    let mut xbuf = vec![0.0f32; need * lanes];
    let mut labels = vec![0.0f32; lanes];
    let mut raw = vec![0.0f32; lanes];
    let mut pred = vec![0.0f32; lanes];
    let mut active = 0usize;
    let mut stats = ScoringStats {
        lanes: lanes as u16,
        ..ScoringStats::default()
    };

    while let Some(batch) = source.next_batch()? {
        if batch.width() != width {
            return Err(InferError::SourceWidth {
                got: batch.width(),
                need: width,
            });
        }
        let mut served = 0usize;
        while served < batch.len() {
            // Transpose-load the next run of rows into the free lanes.
            let take = (batch.len() - served).min(lanes - active);
            for (offset, row) in (0..take).map(|o| (o, batch.row(served + o))) {
                let lane = active + offset;
                for (k, x) in xbuf.chunks_exact_mut(lanes).zip(&row[..need]) {
                    k[lane] = *x;
                }
                labels[lane] = if has_label { row[label_col] } else { f32::NAN };
            }
            served += take;
            active += take;
            if active == lanes {
                exec_group(
                    program, lanes, active, &xbuf, &mut raw, &mut pred, &mut stats,
                )?;
                for l in 0..active {
                    emit(raw[l], pred[l], labels[l])?;
                }
                active = 0;
            }
        }
    }
    if active > 0 {
        exec_group(
            program, lanes, active, &xbuf, &mut raw, &mut pred, &mut stats,
        )?;
        for l in 0..active {
            emit(raw[l], pred[l], labels[l])?;
        }
    }
    Ok(stats)
}

/// Executes the scoring program on one lockstep group of `active ≤ lanes`
/// loaded tuples.
fn exec_group(
    program: &ScoringProgram,
    lanes: usize,
    active: usize,
    xbuf: &[f32],
    raw: &mut [f32],
    pred: &mut [f32],
    stats: &mut ScoringStats,
) -> InferResult<()> {
    match program {
        ScoringProgram::Dense { weights, link, .. } => {
            // Group-at-a-time dot product: each feature step dispatches
            // once and multiply-accumulates across every lane — a
            // sequential f32 fold per lane, identical to the reference
            // scorer's `dot`.
            raw[..active].iter_mut().for_each(|v| *v = 0.0);
            for (k, &w) in weights.iter().enumerate() {
                let col = &xbuf[k * lanes..k * lanes + active];
                for (acc, &x) in raw[..active].iter_mut().zip(col) {
                    *acc += w * x;
                }
            }
            for l in 0..active {
                pred[l] = link.apply(raw[l]);
            }
        }
        ScoringProgram::Lrmf { model } => {
            // Lane-at-a-time (like the lowered executor's LRMF path):
            // row gathers are data-dependent, so each lane gathers its
            // factor rows and reduces over the rank axis in order.
            // Validate every lane's indices before computing anything.
            for l in 0..active {
                let i = check_row("L", xbuf[l], model.rows)?;
                let j = check_row("R", xbuf[lanes + l], model.cols)?;
                raw[l] = model.predict(i, j);
                pred[l] = raw[l];
            }
            // All lanes' row gathers share the factor-memory ports.
            stats.cycles += (active as u64 * 2 * model.rank as u64).div_ceil(MODEL_PORTS);
        }
    }
    stats.cycles += program.per_tuple_cycles();
    stats.groups += 1;
    stats.tuples += active as u64;
    Ok(())
}

fn check_row(factor: &'static str, index: f32, rows: usize) -> InferResult<usize> {
    let row = index as i64;
    if row < 0 || row as usize >= rows {
        return Err(InferError::RowIndexOutOfRange { factor, row, rows });
    }
    // The reference scorer converts with `as usize`; match it exactly.
    Ok(index as usize)
}

/// A metric fold stopped short of the final division: the running term
/// sum, the correct-classification count, and the row count. Partials
/// from disjoint row ranges combine with [`MetricPartial::absorb`]
/// (callers combine in a fixed order — shard-index order in the gang
/// tier — so the f64 fold is deterministic), and [`MetricPartial::finish`]
/// produces the metric value.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricPartial {
    pub sum: f64,
    pub correct: u64,
    pub n: u64,
}

impl MetricPartial {
    /// Folds `other` (the next row range, in order) into this partial.
    pub fn absorb(&mut self, other: MetricPartial) {
        self.sum += other.sum;
        self.correct += other.correct;
        self.n += other.n;
    }

    /// Completes the fold into the metric value. An empty fold (zero
    /// rows) is a typed error, like the whole-batch metrics.
    pub fn finish(self, kind: MetricKind) -> InferResult<f64> {
        if self.n == 0 {
            return Err(MetricsError::EmptyBatch {
                metric: kind.name(),
            }
            .into());
        }
        Ok(match kind {
            MetricKind::Mse => self.sum / self.n as f64,
            MetricKind::LrmfRmse => (self.sum / self.n as f64).sqrt(),
            MetricKind::LogLoss => self.sum / self.n as f64,
            MetricKind::Accuracy => self.correct as f64 / self.n as f64,
        })
    }
}

/// Streamed metric accumulation: folds per-row terms (shared with
/// `dana_ml::metrics`) left-to-right in tuple order, so the streamed
/// value is bit-identical to the whole-batch metric on the materialized
/// table.
struct MetricAccumulator {
    kind: MetricKind,
    signed: bool,
    partial: MetricPartial,
}

impl MetricAccumulator {
    fn new(kind: MetricKind, signed: bool) -> MetricAccumulator {
        MetricAccumulator {
            kind,
            signed,
            partial: MetricPartial::default(),
        }
    }

    fn update(&mut self, raw: f32, pred: f32, label: f32) {
        match self.kind {
            MetricKind::Mse | MetricKind::LrmfRmse => {
                self.partial.sum += squared_error_term(pred, label);
            }
            MetricKind::LogLoss => self.partial.sum += log_loss_term(pred, label),
            MetricKind::Accuracy => {
                // Accuracy thresholds the *raw* score, exactly as
                // `metrics::classification_accuracy` does.
                if classified_correctly(raw, label, self.signed) {
                    self.partial.correct += 1;
                }
            }
        }
        self.partial.n += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_ml::scorer::{score_dense, score_lrmf};
    use dana_ml::{DenseModel, Link, LrmfModel};

    fn dense_program(weights: &[f32], link: Link) -> ScoringProgram {
        ScoringProgram::Dense {
            weights: weights.to_vec(),
            link,
            signed_labels: false,
        }
    }

    fn feature_batch(n: usize, d: usize) -> TupleBatch {
        TupleBatch::from_rows(
            d + 1,
            (0..n).map(|k| {
                (0..=d)
                    .map(|i| (((k * 13 + i * 7) % 23) as f32 - 11.0) / 7.0)
                    .collect::<Vec<f32>>()
            }),
        )
    }

    #[test]
    fn lane_count_is_invisible_to_predictions() {
        let w: Vec<f32> = (0..9).map(|i| 0.25 * i as f32 - 1.0).collect();
        let batch = feature_batch(103, 9); // non-divisible: partial group
        let reference = score_dense(&DenseModel(w.clone()), &batch, Link::Sigmoid);
        for lanes in [1u16, 3, 4, 16, 64] {
            let program = dense_program(&w, Link::Sigmoid);
            let (pred, stats) = score_batch(&program, lanes, &batch).unwrap();
            assert_eq!(pred, reference, "{lanes} lanes");
            assert_eq!(stats.tuples, 103);
            assert_eq!(stats.lanes, lanes);
            assert_eq!(stats.groups, 103u64.div_ceil(lanes as u64));
            assert_eq!(stats.cycles, stats.groups * program.per_tuple_cycles());
        }
    }

    #[test]
    fn batch_boundaries_are_invisible_to_predictions() {
        struct Chunked {
            batches: Vec<TupleBatch>,
            next: usize,
        }
        impl TupleSource for Chunked {
            fn width(&self) -> usize {
                self.batches[0].width()
            }
            fn next_batch(&mut self) -> Result<Option<&TupleBatch>, dana_storage::SourceError> {
                if self.next >= self.batches.len() {
                    return Ok(None);
                }
                self.next += 1;
                Ok(Some(&self.batches[self.next - 1]))
            }
            fn rewind(&mut self) -> Result<(), dana_storage::SourceError> {
                self.next = 0;
                Ok(())
            }
        }
        let w = vec![0.5f32, -0.25, 1.5];
        let batch = feature_batch(50, 3);
        let program = dense_program(&w, Link::Identity);
        let (whole, _) = score_batch(&program, 4, &batch).unwrap();
        for chunk in [1usize, 3, 7, 50] {
            let rows: Vec<Vec<f32>> = batch.rows().map(|r| r.to_vec()).collect();
            let mut src = Chunked {
                batches: rows
                    .chunks(chunk)
                    .map(|c| TupleBatch::from_rows(4, c))
                    .collect(),
                next: 0,
            };
            let mut out = Vec::new();
            score_source(&program, 4, &mut src, &mut out).unwrap();
            assert_eq!(out, whole, "chunk {chunk}");
        }
    }

    #[test]
    fn lrmf_matches_reference_and_charges_ports() {
        let model = LrmfModel::zeroed(12, 9, 5);
        let batch =
            TupleBatch::from_rows(3, (0..40).map(|k| [(k % 12) as f32, (k % 9) as f32, 1.0]));
        let reference = score_lrmf(&model, &batch);
        let program = ScoringProgram::Lrmf {
            model: model.clone(),
        };
        for lanes in [1u16, 4, 16] {
            let (pred, stats) = score_batch(&program, lanes, &batch).unwrap();
            assert_eq!(pred, reference, "{lanes} lanes");
            // Gathers contend for the factor-memory ports.
            let mut expected = 0u64;
            let mut left = 40u64;
            while left > 0 {
                let active = left.min(lanes as u64);
                expected += (active * 2 * 5).div_ceil(MODEL_PORTS) + program.per_tuple_cycles();
                left -= active;
            }
            assert_eq!(stats.cycles, expected, "{lanes} lanes");
        }
    }

    #[test]
    fn lrmf_bad_index_is_typed_error() {
        let program = ScoringProgram::Lrmf {
            model: LrmfModel::zeroed(4, 4, 2),
        };
        let batch = TupleBatch::from_rows(3, [[9.0, 0.0, 1.0]]);
        assert!(matches!(
            score_batch(&program, 4, &batch),
            Err(InferError::RowIndexOutOfRange {
                factor: "L",
                row: 9,
                ..
            })
        ));
        let batch = TupleBatch::from_rows(3, [[0.0, -1.0, 1.0]]);
        assert!(matches!(
            score_batch(&program, 4, &batch),
            Err(InferError::RowIndexOutOfRange { factor: "R", .. })
        ));
    }

    #[test]
    fn narrow_source_is_typed_error() {
        let program = dense_program(&[1.0, 2.0, 3.0], Link::Identity);
        let batch = TupleBatch::from_rows(2, [[1.0, 2.0]]);
        assert!(matches!(
            score_batch(&program, 4, &batch),
            Err(InferError::SourceWidth { got: 2, need: 3 })
        ));
    }

    #[test]
    fn streamed_metrics_match_batch_metrics_exactly() {
        use dana_ml::metrics;
        let w: Vec<f32> = (0..6).map(|i| 0.4 * i as f32 - 1.1).collect();
        let batch = feature_batch(77, 6);
        let model = DenseModel(w.clone());

        let program = dense_program(&w, Link::Identity);
        let (v, _) = evaluate_source(
            &program,
            4,
            &mut dana_storage::OneBatchSource::new(&batch),
            MetricKind::Mse,
        )
        .unwrap();
        assert_eq!(v, metrics::mse(&model, &batch).unwrap());

        let program = dense_program(&w, Link::Sigmoid);
        let (v, _) = evaluate_source(
            &program,
            7,
            &mut dana_storage::OneBatchSource::new(&batch),
            MetricKind::LogLoss,
        )
        .unwrap();
        assert_eq!(v, metrics::log_loss(&model, &batch).unwrap());

        let (v, _) = evaluate_source(
            &program,
            3,
            &mut dana_storage::OneBatchSource::new(&batch),
            MetricKind::Accuracy,
        )
        .unwrap();
        assert_eq!(
            v,
            metrics::classification_accuracy(&model, &batch, false).unwrap()
        );

        let lmodel = LrmfModel::zeroed(10, 8, 3);
        let ratings = TupleBatch::from_rows(
            3,
            (0..31).map(|k| [(k % 10) as f32, (k % 8) as f32, ((k % 5) as f32) - 2.0]),
        );
        let program = ScoringProgram::Lrmf {
            model: lmodel.clone(),
        };
        let (v, _) = evaluate_source(
            &program,
            4,
            &mut dana_storage::OneBatchSource::new(&ratings),
            MetricKind::LrmfRmse,
        )
        .unwrap();
        assert_eq!(v, metrics::lrmf_rmse(&lmodel, &ratings).unwrap());
    }

    #[test]
    fn evaluate_needs_a_label_column() {
        let program = dense_program(&[1.0, 2.0], Link::Identity);
        let features_only = TupleBatch::from_rows(2, [[1.0, 2.0]]);
        assert!(matches!(
            evaluate_source(
                &program,
                4,
                &mut dana_storage::OneBatchSource::new(&features_only),
                MetricKind::Mse,
            ),
            Err(InferError::NoLabelColumn { .. })
        ));
    }

    #[test]
    fn evaluate_empty_table_is_typed_error() {
        let program = dense_program(&[1.0], Link::Identity);
        let empty = TupleBatch::new(2);
        assert!(matches!(
            evaluate_source(
                &program,
                4,
                &mut dana_storage::OneBatchSource::new(&empty),
                MetricKind::Mse,
            ),
            Err(InferError::Metric(MetricsError::EmptyBatch { .. }))
        ));
    }
}
