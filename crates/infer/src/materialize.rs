//! Prediction materialization: turning a scored scan back into a heap.
//!
//! PREDICT is the first query that *writes* into the storage layer: its
//! output is a real catalog table — scannable, snapshottable, and
//! droppable like any heap. The schema is derived from the source table's
//! (every source column preserved with its exact on-page type and value)
//! plus one appended `prediction real` column; predictions are stored as
//! Float4, so a scan of the materialized table recovers each prediction
//! bit-exactly.

use dana_storage::{ColumnType, HeapFile, HeapFileBuilder, PageView, Schema, TUPLE_HEADER_BYTES};

use crate::error::{InferError, InferResult};

/// Name of the appended prediction column.
pub const PREDICTION_COLUMN: &str = "prediction";

/// Derives a prediction table's schema: the source schema with a
/// `prediction real` column appended. Refuses a source that already has a
/// column of that name (scoring a prediction table into itself would
/// shadow the earlier predictions).
pub fn prediction_schema(source: &Schema) -> InferResult<Schema> {
    if source.column_index(PREDICTION_COLUMN).is_some() {
        return Err(InferError::Storage(
            dana_storage::StorageError::DuplicateName(PREDICTION_COLUMN.to_string()),
        ));
    }
    let mut cols: Vec<(String, ColumnType)> = source
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    cols.push((PREDICTION_COLUMN.to_string(), ColumnType::Float4));
    Ok(Schema::new(cols))
}

/// Builds the materialized prediction heap: every source tuple (values
/// preserved byte-for-byte) with its prediction appended, in scan
/// order, using the source's page size and placement direction.
///
/// One zero-copy pass over the source pages: each tuple's user-data
/// bytes are copied straight into the output heap with the prediction's
/// four Float4 bytes behind them — no per-tuple `Datum` materialization,
/// so materialization costs one page walk, not a second full decode.
pub fn build_prediction_heap(source: &HeapFile, predictions: &[f32]) -> InferResult<HeapFile> {
    if predictions.len() as u64 != source.tuple_count() {
        return Err(InferError::PredictionCount {
            predictions: predictions.len(),
            tuples: source.tuple_count(),
        });
    }
    let schema = prediction_schema(source.schema())?;
    let layout = *source.layout();
    let src_width = source.schema().tuple_data_width();
    let mut builder = HeapFileBuilder::new(schema, layout.page_size, layout.direction)?;
    let mut next = predictions.iter();
    for page_no in 0..source.page_count() {
        let view = PageView::new(source.page_bytes(page_no)?, layout)?;
        for rec in view.tuples() {
            // User data starts at t_hoff (validated like `Tuple::deform`).
            let hoff = rec.get(10).copied().unwrap_or(0) as usize;
            if hoff < TUPLE_HEADER_BYTES || hoff + src_width > rec.len() {
                return Err(InferError::Storage(
                    dana_storage::StorageError::SchemaMismatch(format!(
                        "tuple on page {page_no} has bad t_hoff {hoff} for {} bytes",
                        rec.len()
                    )),
                ));
            }
            let p = next.next().expect("count checked above");
            builder.insert_raw(&[&rec[hoff..hoff + src_width], &p.to_le_bytes()])?;
        }
    }
    Ok(builder.finish())
}

/// [`build_prediction_heap`] for a *pushdown* scoring scan: materializes
/// only the tuples the scan's predicates kept (`slots[page]` lists each
/// page's surviving slot numbers, in slot order — the scan tier's
/// `select_slots` output) and only its projected columns, with one
/// prediction per surviving tuple in scan order. Kept cells are copied
/// byte-for-byte, so the output heap is identical to scoring a
/// pre-materialized filtered/projected table.
pub fn build_prediction_heap_selected(
    source: &HeapFile,
    slots: &[Vec<u16>],
    projection: Option<&[usize]>,
    predictions: &[f32],
) -> InferResult<HeapFile> {
    if slots.len() != source.page_count() as usize {
        return Err(InferError::Storage(
            dana_storage::StorageError::SchemaMismatch(format!(
                "slot selection covers {} pages, heap has {}",
                slots.len(),
                source.page_count()
            )),
        ));
    }
    let selected: u64 = slots.iter().map(|s| s.len() as u64).sum();
    if predictions.len() as u64 != selected {
        return Err(InferError::PredictionCount {
            predictions: predictions.len(),
            tuples: selected,
        });
    }
    let src_schema = source.schema();
    let cols: Vec<usize> = match projection {
        Some(p) => p.to_vec(),
        None => (0..src_schema.len()).collect(),
    };
    let mut projected: Vec<(String, ColumnType)> = Vec::with_capacity(cols.len());
    let mut spans: Vec<(usize, usize)> = Vec::with_capacity(cols.len());
    for &c in &cols {
        let col = src_schema.columns().get(c).ok_or_else(|| {
            InferError::Storage(dana_storage::StorageError::SchemaMismatch(format!(
                "projected column index {c} out of range for {}-column schema",
                src_schema.len()
            )))
        })?;
        projected.push((col.name.clone(), col.ty));
        spans.push((src_schema.column_offset(c)?, col.ty.width()));
    }
    let schema = prediction_schema(&Schema::new(projected))?;
    let layout = *source.layout();
    let src_width = src_schema.tuple_data_width();
    let mut builder = HeapFileBuilder::new(schema, layout.page_size, layout.direction)?;
    let mut next = predictions.iter();
    for (page_no, keep) in slots.iter().enumerate() {
        let view = PageView::new(source.page_bytes(page_no as u32)?, layout)?;
        for &slot in keep {
            let rec = view.tuple_bytes(slot)?;
            let hoff = rec.get(10).copied().unwrap_or(0) as usize;
            if hoff < TUPLE_HEADER_BYTES || hoff + src_width > rec.len() {
                return Err(InferError::Storage(
                    dana_storage::StorageError::SchemaMismatch(format!(
                        "tuple on page {page_no} has bad t_hoff {hoff} for {} bytes",
                        rec.len()
                    )),
                ));
            }
            let data = &rec[hoff..hoff + src_width];
            let p = next.next().expect("count checked above").to_le_bytes();
            let mut parts: Vec<&[u8]> = Vec::with_capacity(spans.len() + 1);
            for &(off, w) in &spans {
                parts.push(&data[off..off + w]);
            }
            parts.push(&p);
            builder.insert_raw(&parts)?;
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{Datum, Tuple};

    fn rating_heap(n: usize) -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::rating(), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            b.insert(&Tuple::rating(k as i32, (k * 3) as i32, k as f32 / 2.0))
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn schema_appends_prediction_column() {
        let s = prediction_schema(&Schema::training(4)).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.columns()[5].name, PREDICTION_COLUMN);
        assert_eq!(s.columns()[5].ty, ColumnType::Float4);
        // Re-deriving from a prediction schema is refused.
        assert!(prediction_schema(&s).is_err());
    }

    #[test]
    fn heap_round_trips_values_and_predictions() {
        let heap = rating_heap(500);
        let predictions: Vec<f32> = (0..500).map(|k| 0.125 * k as f32 - 3.0).collect();
        let out = build_prediction_heap(&heap, &predictions).unwrap();
        assert_eq!(out.tuple_count(), 500);
        assert_eq!(out.schema().len(), 4);
        // Integer index columns survive with their exact on-page type;
        // predictions come back bit-exactly.
        for (k, t) in out.scan().enumerate() {
            assert_eq!(t.values[0], Datum::Int4(k as i32));
            assert_eq!(t.values[1], Datum::Int4((k * 3) as i32));
            assert_eq!(t.values[3], Datum::Float4(predictions[k]));
        }
    }

    #[test]
    fn selected_heap_keeps_only_chosen_slots_and_columns() {
        let heap = rating_heap(500);
        // Keep every third tuple, page by page, exactly as select_slots
        // would list them.
        let layout = *heap.layout();
        let mut slots: Vec<Vec<u16>> = Vec::new();
        let mut kept: Vec<usize> = Vec::new();
        let mut k = 0usize;
        for page_no in 0..heap.page_count() {
            let view = PageView::new(heap.page_bytes(page_no).unwrap(), layout).unwrap();
            let mut page_slots = Vec::new();
            for slot in 0..view.tuple_count() {
                if k.is_multiple_of(3) {
                    page_slots.push(slot);
                    kept.push(k);
                }
                k += 1;
            }
            slots.push(page_slots);
        }
        let predictions: Vec<f32> = kept.iter().map(|&k| k as f32 * 0.5).collect();
        // Project columns (2, 0): reordered and partial.
        let out =
            build_prediction_heap_selected(&heap, &slots, Some(&[2, 0]), &predictions).unwrap();
        assert_eq!(out.tuple_count(), kept.len() as u64);
        assert_eq!(out.schema().len(), 3);
        assert_eq!(out.schema().columns()[2].name, PREDICTION_COLUMN);
        for (i, t) in out.scan().enumerate() {
            let k = kept[i];
            assert_eq!(t.values[0], Datum::Float4(k as f32 / 2.0));
            assert_eq!(t.values[1], Datum::Int4(k as i32));
            assert_eq!(t.values[2], Datum::Float4(predictions[i]));
        }
        // No projection keeps the full schema, like build_prediction_heap.
        let full = build_prediction_heap_selected(&heap, &slots, None, &predictions).unwrap();
        assert_eq!(full.schema().len(), 4);
        // Selecting every slot with no projection matches the unselected
        // builder bit-for-bit.
        let all: Vec<Vec<u16>> = (0..heap.page_count())
            .map(|p| {
                let view = PageView::new(heap.page_bytes(p).unwrap(), layout).unwrap();
                (0..view.tuple_count()).collect()
            })
            .collect();
        let preds: Vec<f32> = (0..500).map(|k| k as f32).collect();
        let a = build_prediction_heap_selected(&heap, &all, None, &preds).unwrap();
        let b = build_prediction_heap(&heap, &preds).unwrap();
        assert_eq!(a.page_count(), b.page_count());
        for p in 0..a.page_count() {
            assert_eq!(a.page_bytes(p).unwrap(), b.page_bytes(p).unwrap());
        }
    }

    #[test]
    fn prediction_count_mismatch_is_typed_error() {
        let heap = rating_heap(10);
        assert!(matches!(
            build_prediction_heap(&heap, &[1.0; 9]),
            Err(InferError::PredictionCount {
                predictions: 9,
                tuples: 10
            })
        ));
    }
}
