//! Prediction materialization: turning a scored scan back into a heap.
//!
//! PREDICT is the first query that *writes* into the storage layer: its
//! output is a real catalog table — scannable, snapshottable, and
//! droppable like any heap. The schema is derived from the source table's
//! (every source column preserved with its exact on-page type and value)
//! plus one appended `prediction real` column; predictions are stored as
//! Float4, so a scan of the materialized table recovers each prediction
//! bit-exactly.

use dana_storage::{ColumnType, HeapFile, HeapFileBuilder, PageView, Schema, TUPLE_HEADER_BYTES};

use crate::error::{InferError, InferResult};

/// Name of the appended prediction column.
pub const PREDICTION_COLUMN: &str = "prediction";

/// Derives a prediction table's schema: the source schema with a
/// `prediction real` column appended. Refuses a source that already has a
/// column of that name (scoring a prediction table into itself would
/// shadow the earlier predictions).
pub fn prediction_schema(source: &Schema) -> InferResult<Schema> {
    if source.column_index(PREDICTION_COLUMN).is_some() {
        return Err(InferError::Storage(
            dana_storage::StorageError::DuplicateName(PREDICTION_COLUMN.to_string()),
        ));
    }
    let mut cols: Vec<(String, ColumnType)> = source
        .columns()
        .iter()
        .map(|c| (c.name.clone(), c.ty))
        .collect();
    cols.push((PREDICTION_COLUMN.to_string(), ColumnType::Float4));
    Ok(Schema::new(cols))
}

/// Builds the materialized prediction heap: every source tuple (values
/// preserved byte-for-byte) with its prediction appended, in scan
/// order, using the source's page size and placement direction.
///
/// One zero-copy pass over the source pages: each tuple's user-data
/// bytes are copied straight into the output heap with the prediction's
/// four Float4 bytes behind them — no per-tuple `Datum` materialization,
/// so materialization costs one page walk, not a second full decode.
pub fn build_prediction_heap(source: &HeapFile, predictions: &[f32]) -> InferResult<HeapFile> {
    if predictions.len() as u64 != source.tuple_count() {
        return Err(InferError::PredictionCount {
            predictions: predictions.len(),
            tuples: source.tuple_count(),
        });
    }
    let schema = prediction_schema(source.schema())?;
    let layout = *source.layout();
    let src_width = source.schema().tuple_data_width();
    let mut builder = HeapFileBuilder::new(schema, layout.page_size, layout.direction)?;
    let mut next = predictions.iter();
    for page_no in 0..source.page_count() {
        let view = PageView::new(source.page_bytes(page_no)?, layout)?;
        for rec in view.tuples() {
            // User data starts at t_hoff (validated like `Tuple::deform`).
            let hoff = rec.get(10).copied().unwrap_or(0) as usize;
            if hoff < TUPLE_HEADER_BYTES || hoff + src_width > rec.len() {
                return Err(InferError::Storage(
                    dana_storage::StorageError::SchemaMismatch(format!(
                        "tuple on page {page_no} has bad t_hoff {hoff} for {} bytes",
                        rec.len()
                    )),
                ));
            }
            let p = next.next().expect("count checked above");
            builder.insert_raw(&[&rec[hoff..hoff + src_width], &p.to_le_bytes()])?;
        }
    }
    Ok(builder.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{Datum, Tuple};

    fn rating_heap(n: usize) -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::rating(), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            b.insert(&Tuple::rating(k as i32, (k * 3) as i32, k as f32 / 2.0))
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn schema_appends_prediction_column() {
        let s = prediction_schema(&Schema::training(4)).unwrap();
        assert_eq!(s.len(), 6);
        assert_eq!(s.columns()[5].name, PREDICTION_COLUMN);
        assert_eq!(s.columns()[5].ty, ColumnType::Float4);
        // Re-deriving from a prediction schema is refused.
        assert!(prediction_schema(&s).is_err());
    }

    #[test]
    fn heap_round_trips_values_and_predictions() {
        let heap = rating_heap(500);
        let predictions: Vec<f32> = (0..500).map(|k| 0.125 * k as f32 - 3.0).collect();
        let out = build_prediction_heap(&heap, &predictions).unwrap();
        assert_eq!(out.tuple_count(), 500);
        assert_eq!(out.schema().len(), 4);
        // Integer index columns survive with their exact on-page type;
        // predictions come back bit-exactly.
        for (k, t) in out.scan().enumerate() {
            assert_eq!(t.values[0], Datum::Int4(k as i32));
            assert_eq!(t.values[1], Datum::Int4((k * 3) as i32));
            assert_eq!(t.values[3], Datum::Float4(predictions[k]));
        }
    }

    #[test]
    fn prediction_count_mismatch_is_typed_error() {
        let heap = rating_heap(10);
        assert!(matches!(
            build_prediction_heap(&heap, &[1.0; 9]),
            Err(InferError::PredictionCount {
                predictions: 9,
                tuples: 10
            })
        ));
    }
}
