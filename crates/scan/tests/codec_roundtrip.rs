//! Property suite: every page codec round-trips bit-exact over random
//! schemas and adversarial values — NaNs (with payloads), ±0.0,
//! subnormals, infinities — across page sizes, tuple directions, and
//! fill levels. The codec packs cell *bit patterns*, never interpreting
//! floats, and `compress_page` self-verifies before committing to the
//! packed form, so these properties must hold unconditionally.

use dana_scan::{compress_page, decompress_page, CODEC_FOR, CODEC_RAW};
use dana_storage::page::TupleDirection;
use dana_storage::{ColumnType, Datum, HeapFileBuilder, Schema, Tuple};
use proptest::prelude::*;

/// f32 from raw bits: uniformly covers NaN payloads, ±0, subnormals.
fn f32_bits(word: u32) -> f32 {
    f32::from_bits(word)
}

fn schema_from(types: &[u8]) -> Schema {
    Schema::new(
        types
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let ty = match t % 4 {
                    0 => ColumnType::Float4,
                    1 => ColumnType::Float8,
                    2 => ColumnType::Int4,
                    _ => ColumnType::Int8,
                };
                (format!("c{i}"), ty)
            })
            .collect(),
    )
}

fn datum_for(ty: ColumnType, seed: u64) -> Datum {
    match ty {
        ColumnType::Float4 => Datum::Float4(f32_bits(seed as u32)),
        ColumnType::Float8 => {
            Datum::Float8(f64::from_bits(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        }
        ColumnType::Int4 => Datum::Int4(seed as i32),
        ColumnType::Int8 => Datum::Int8(seed as i64),
    }
}

/// A pool of adversarial f32 bit patterns every random page gets seeded
/// with: quiet/signaling NaNs with payloads, ±0, subnormals, ±inf.
const ODDBALLS: [u32; 10] = [
    0x7FC0_0000, // canonical quiet NaN
    0x7FC0_1234, // NaN with payload
    0xFFC0_0001, // negative NaN
    0x7F80_0001, // signaling NaN
    0x8000_0000, // -0.0
    0x0000_0000, // +0.0
    0x0000_0001, // smallest subnormal
    0x807F_FFFF, // negative subnormal
    0x7F80_0000, // +inf
    0xFF80_0000, // -inf
];

proptest! {
    #[test]
    fn random_pages_round_trip_bit_exact(
        ncols in 1usize..6,
        type_seed in 0u8..255,
        rows in 0usize..400,
        value_seed in 0u64..u64::MAX,
        page_kb in proptest::sample::select(vec![8usize, 16, 32]),
        descending in any::<bool>(),
    ) {
        let types: Vec<u8> = (0..ncols).map(|i| type_seed.wrapping_add(i as u8)).collect();
        let schema = schema_from(&types);
        let dir = if descending { TupleDirection::Descending } else { TupleDirection::Ascending };
        let mut b = HeapFileBuilder::new(schema.clone(), page_kb * 1024, dir).unwrap();
        for k in 0..rows {
            let values = schema
                .columns()
                .iter()
                .enumerate()
                .map(|(c, col)| {
                    let seed = value_seed
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add((k * 31 + c) as u64);
                    // Mix adversarial bit patterns into Float4 columns.
                    if col.ty == ColumnType::Float4 && k % 3 == 0 {
                        Datum::Float4(f32_bits(ODDBALLS[(seed as usize) % ODDBALLS.len()]))
                    } else {
                        datum_for(col.ty, seed)
                    }
                })
                .collect();
            b.insert(&Tuple::new(values)).unwrap();
        }
        let heap = b.finish();
        for p in 0..heap.page_count() {
            let raw = heap.page_bytes(p).unwrap();
            let packed = compress_page(raw, heap.layout(), &schema);
            prop_assert!(packed[0] == CODEC_FOR || packed[0] == CODEC_RAW);
            let back = decompress_page(&packed, heap.layout(), &schema).unwrap();
            prop_assert_eq!(back.as_slice(), raw, "page {} must round-trip bit-exact", p);
        }
    }

    /// Arbitrary (even non-canonical) byte images survive: the raw
    /// fallback makes the codec total over any page-sized buffer that
    /// parses — and even garbage that doesn't parse as a page still
    /// round-trips through the raw codec.
    #[test]
    fn scribbled_pages_fall_back_and_round_trip(
        rows in 1usize..200,
        scribble_at in 0usize..8192,
        scribble in 0u8..255,
    ) {
        let schema = Schema::training(3);
        let mut b = HeapFileBuilder::new(schema.clone(), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..rows {
            b.insert(&Tuple::training(&[k as f32, -(k as f32), 0.5], 1.0)).unwrap();
        }
        let heap = b.finish();
        let mut raw = heap.page_bytes(0).unwrap().to_vec();
        raw[scribble_at] ^= scribble;
        let packed = compress_page(&raw, heap.layout(), &schema);
        let back = decompress_page(&packed, heap.layout(), &schema).unwrap();
        prop_assert_eq!(back, raw);
    }
}
