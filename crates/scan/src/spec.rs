//! The pushdown scan specification: what `WHERE` and `COLUMNS` compile to.
//!
//! A [`ScanSpec`] carries column *names* (the parser knows no schema); at
//! query time it binds against the scanned table's schema into a
//! [`BoundScanSpec`], which does three jobs page-at-a-time, *before* tuple
//! extraction: prune whole pages via zone maps, filter individual rows,
//! and project the surviving rows down to the requested columns.

use crate::zonemap::PageZone;
use dana_storage::Schema;

/// A typed scan-binding or scan-grammar error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanError(pub String);

impl std::fmt::Display for ScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ScanError {}

/// Comparison operator of one `WHERE` conjunct.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

impl CmpOp {
    /// Parses the SQL spelling (`<`, `<=`, `>`, `>=`, `=`, `!=`/`<>`).
    pub fn parse(s: &str) -> Option<CmpOp> {
        Some(match s {
            "<" => CmpOp::Lt,
            "<=" => CmpOp::Le,
            ">" => CmpOp::Gt,
            ">=" => CmpOp::Ge,
            "=" => CmpOp::Eq,
            "!=" | "<>" => CmpOp::Ne,
            _ => return None,
        })
    }

    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        }
    }

    /// IEEE-754 comparison semantics: NaN fails everything except `!=`.
    pub fn matches(&self, cell: f32, constant: f32) -> bool {
        match self {
            CmpOp::Lt => cell < constant,
            CmpOp::Le => cell <= constant,
            CmpOp::Gt => cell > constant,
            CmpOp::Ge => cell >= constant,
            CmpOp::Eq => cell == constant,
            CmpOp::Ne => cell != constant,
        }
    }
}

/// One `WHERE` conjunct, by column name.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    pub column: String,
    pub op: CmpOp,
    pub value: f32,
}

/// The parse-time pushdown spec: AND-combined predicates plus an optional
/// projection column list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScanSpec {
    pub predicates: Vec<Predicate>,
    pub projection: Option<Vec<String>>,
}

impl ScanSpec {
    /// True when the spec does nothing (no predicates, no projection).
    pub fn is_trivial(&self) -> bool {
        self.predicates.is_empty() && self.projection.is_none()
    }

    /// Resolves column names against `schema`.
    pub fn bind(&self, schema: &Schema) -> Result<BoundScanSpec, ScanError> {
        let lookup = |name: &str| {
            schema.column_index(name).ok_or_else(|| {
                let known: Vec<&str> = schema.columns().iter().map(|c| c.name.as_str()).collect();
                ScanError(format!(
                    "unknown column '{name}' (table columns: {})",
                    known.join(", ")
                ))
            })
        };
        let predicates = self
            .predicates
            .iter()
            .map(|p| {
                Ok(BoundPredicate {
                    column: lookup(&p.column)?,
                    op: p.op,
                    value: p.value,
                })
            })
            .collect::<Result<Vec<_>, ScanError>>()?;
        let projection = match &self.projection {
            None => None,
            Some(cols) => {
                if cols.is_empty() {
                    return Err(ScanError("COLUMNS list cannot be empty".to_string()));
                }
                Some(cols.iter().map(|c| lookup(c)).collect::<Result<_, _>>()?)
            }
        };
        Ok(BoundScanSpec {
            predicates,
            projection,
        })
    }

    /// Schema-free selectivity estimate for cost planning, usable before
    /// any zone maps exist (the advisor prices a statement without
    /// touching the table): equality keeps 5% of rows, inequality (`!=`)
    /// 95%, each range conjunct one third; conjuncts multiply and the
    /// product is clamped to `[0.01, 1.0]`. Never used for correctness.
    pub fn planning_selectivity(&self) -> f64 {
        let mut s = 1.0f64;
        for p in &self.predicates {
            s *= match p.op {
                CmpOp::Eq => 0.05,
                CmpOp::Ne => 0.95,
                CmpOp::Lt | CmpOp::Le | CmpOp::Gt | CmpOp::Ge => 1.0 / 3.0,
            };
        }
        s.clamp(0.01, 1.0)
    }
}

/// One conjunct bound to a column index.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundPredicate {
    pub column: usize,
    pub op: CmpOp,
    pub value: f32,
}

impl BoundPredicate {
    /// Whether *any* tuple on a page with this zone could match.
    fn page_can_match(&self, zone: &PageZone) -> bool {
        let (min, max) = (zone.min[self.column], zone.max[self.column]);
        let has_real = min <= max; // false when all-NaN/empty
        match self.op {
            CmpOp::Lt => has_real && min < self.value,
            CmpOp::Le => has_real && min <= self.value,
            CmpOp::Gt => has_real && max > self.value,
            CmpOp::Ge => has_real && max >= self.value,
            CmpOp::Eq => has_real && min <= self.value && self.value <= max,
            // NaN != c for every c, so a page with NaN cells always may
            // match; otherwise only an all-equal page can be pruned.
            CmpOp::Ne => {
                zone.has_nan[self.column] || (has_real && (min != self.value || max != self.value))
            }
        }
    }

    /// Estimated match fraction on a page, from its zone (uniform
    /// assumption within `[min, max]`) — drives EXPLAIN's priced scan and
    /// post-filter shard planning; never used for correctness.
    fn page_selectivity(&self, zone: &PageZone) -> f64 {
        if !self.page_can_match(zone) {
            return 0.0;
        }
        let (min, max) = (zone.min[self.column] as f64, zone.max[self.column] as f64);
        let v = self.value as f64;
        let span = max - min;
        let frac_below = if span > 0.0 {
            ((v - min) / span).clamp(0.0, 1.0)
        } else if v >= min {
            1.0
        } else {
            0.0
        };
        match self.op {
            CmpOp::Lt | CmpOp::Le => frac_below.max(0.01),
            CmpOp::Gt | CmpOp::Ge => (1.0 - frac_below).max(0.01),
            CmpOp::Eq => 0.05,
            CmpOp::Ne => 0.95,
        }
    }
}

/// A [`ScanSpec`] bound to a concrete schema.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BoundScanSpec {
    pub predicates: Vec<BoundPredicate>,
    pub projection: Option<Vec<usize>>,
}

impl BoundScanSpec {
    /// Width of the post-projection tuple stream.
    pub fn output_width(&self, schema_len: usize) -> usize {
        match &self.projection {
            Some(p) => p.len(),
            None => schema_len,
        }
    }

    /// Whether any tuple on a page with this zone could match every
    /// conjunct (false → the page is skipped without being fetched).
    pub fn page_can_match(&self, zone: &PageZone) -> bool {
        zone.tuples > 0 && self.predicates.iter().all(|p| p.page_can_match(zone))
    }

    /// Whether one full-width row passes every conjunct.
    pub fn row_matches(&self, row: &[f32]) -> bool {
        self.predicates
            .iter()
            .all(|p| p.op.matches(row[p.column], p.value))
    }

    /// Estimated post-filter tuple count over `zones` (zone-pruned pages
    /// contribute zero; surviving pages contribute their tuple count times
    /// the product of per-conjunct selectivities). An *estimate* for
    /// pricing and shard planning only.
    pub fn estimated_tuples(&self, zones: &[PageZone]) -> u64 {
        zones
            .iter()
            .map(|z| {
                if !self.page_can_match(z) {
                    return 0u64;
                }
                let sel: f64 = self
                    .predicates
                    .iter()
                    .map(|p| p.page_selectivity(z))
                    .product();
                (z.tuples as f64 * sel).ceil() as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zone(min: f32, max: f32, nan: bool) -> PageZone {
        PageZone {
            min: vec![min],
            max: vec![max],
            has_nan: vec![nan],
            tuples: 100,
        }
    }

    #[test]
    fn cmp_ops_follow_ieee_semantics() {
        assert!(CmpOp::Lt.matches(1.0, 2.0));
        assert!(!CmpOp::Lt.matches(f32::NAN, 2.0));
        assert!(CmpOp::Ne.matches(f32::NAN, 2.0), "NaN != c holds");
        assert!(CmpOp::Eq.matches(-0.0, 0.0), "IEEE -0 == +0");
        assert_eq!(CmpOp::parse("<>"), Some(CmpOp::Ne));
        assert_eq!(CmpOp::parse("=="), None);
    }

    #[test]
    fn binding_resolves_names_and_rejects_unknowns() {
        let schema = Schema::training(2); // x0, x1, y
        let spec = ScanSpec {
            predicates: vec![Predicate {
                column: "y".into(),
                op: CmpOp::Gt,
                value: 0.5,
            }],
            projection: Some(vec!["x1".into(), "y".into()]),
        };
        let bound = spec.bind(&schema).unwrap();
        assert_eq!(bound.predicates[0].column, 2);
        assert_eq!(bound.projection, Some(vec![1, 2]));
        assert_eq!(bound.output_width(3), 2);

        let bad = ScanSpec {
            predicates: vec![Predicate {
                column: "ghost".into(),
                op: CmpOp::Lt,
                value: 0.0,
            }],
            projection: None,
        };
        let err = bad.bind(&schema).unwrap_err();
        assert!(err.0.contains("ghost"), "{err}");

        let empty = ScanSpec {
            predicates: vec![],
            projection: Some(vec![]),
        };
        assert!(empty.bind(&schema).is_err());
    }

    #[test]
    fn zone_pruning_is_conservative() {
        let schema = Schema::new(vec![("a".into(), dana_storage::ColumnType::Float4)]);
        let gt = ScanSpec {
            predicates: vec![Predicate {
                column: "a".into(),
                op: CmpOp::Gt,
                value: 10.0,
            }],
            projection: None,
        }
        .bind(&schema)
        .unwrap();
        assert!(!gt.page_can_match(&zone(0.0, 5.0, false)), "max below cut");
        assert!(gt.page_can_match(&zone(0.0, 50.0, false)));

        let ne = ScanSpec {
            predicates: vec![Predicate {
                column: "a".into(),
                op: CmpOp::Ne,
                value: 3.0,
            }],
            projection: None,
        }
        .bind(&schema)
        .unwrap();
        // All-equal page of exactly the constant: prunable…
        assert!(!ne.page_can_match(&zone(3.0, 3.0, false)));
        // …unless NaNs hide on the page (NaN != 3.0 matches).
        assert!(ne.page_can_match(&zone(3.0, 3.0, true)));

        // Empty page never matches anything.
        let mut empty = zone(0.0, 1.0, false);
        empty.tuples = 0;
        assert!(!gt.page_can_match(&empty));
    }
}
