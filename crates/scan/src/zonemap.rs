//! Per-page zone maps: the min/max statistics that let a filtered scan
//! prove "no tuple on this page can match" without touching the page.
//!
//! Statistics are computed over the engine-native f32 value of every cell
//! (via [`ColumnType::decode_f32`], the same conversion the data paths
//! use), ignoring NaN — but remembering whether any NaN was seen, because
//! `!=` predicates match NaN rows and must not prune on min/max alone.

use dana_storage::{ColumnType, HeapFile, PageView, StorageResult};

/// Min/max/has-NaN per column for one page, plus its live tuple count.
#[derive(Debug, Clone, PartialEq)]
pub struct PageZone {
    /// Per-column minimum over non-NaN values (`+inf` when all-NaN/empty).
    pub min: Vec<f32>,
    /// Per-column maximum over non-NaN values (`-inf` when all-NaN/empty).
    pub max: Vec<f32>,
    /// Whether the column holds at least one NaN on this page.
    pub has_nan: Vec<bool>,
    /// Live tuples on the page.
    pub tuples: u16,
}

impl PageZone {
    /// Computes the zone map of one page of `heap`.
    pub fn build(heap: &HeapFile, page_no: u32) -> StorageResult<PageZone> {
        let schema = heap.schema();
        let layout = heap.layout();
        let view = PageView::new(heap.page_bytes(page_no)?, *layout)?;
        let ncols = schema.len();
        let mut zone = PageZone {
            min: vec![f32::INFINITY; ncols],
            max: vec![f32::NEG_INFINITY; ncols],
            has_nan: vec![false; ncols],
            tuples: view.tuple_count(),
        };
        let widths: Vec<(usize, ColumnType)> = (0..ncols)
            .map(|i| Ok((schema.column_offset(i)?, schema.columns()[i].ty)))
            .collect::<StorageResult<_>>()?;
        for tuple in view.tuples() {
            let data = &tuple[layout.tuple_header_bytes..];
            for (c, &(off, ty)) in widths.iter().enumerate() {
                let v = ty.decode_f32(&data[off..off + ty.width()]);
                if v.is_nan() {
                    zone.has_nan[c] = true;
                } else {
                    zone.min[c] = zone.min[c].min(v);
                    zone.max[c] = zone.max[c].max(v);
                }
            }
        }
        Ok(zone)
    }
}
