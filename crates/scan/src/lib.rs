//! The DAnA scan tier: compressed page storage plus predicate/projection
//! pushdown.
//!
//! The paper's Striders walk *raw* database pages; this crate adds the
//! storage-side half that practical accelerator stacks (Intel IAA-style
//! scan/extract/select engines) put in front of the compute kernel:
//!
//! * [`codec`] — per-page compression: frame-of-reference + bit-packing
//!   over the page's integer lanes (tuple-header words, Float4/Int column
//!   bit patterns) with a whole-page raw fallback, chosen per page. Both
//!   codecs reconstruct the exact page image — compression is bit-exact by
//!   construction, and [`codec::compress_page`] verifies the round trip
//!   before committing to the packed form.
//! * [`zonemap`] — per-page, per-column min/max/has-NaN statistics that
//!   let a filtered scan skip pages no tuple of which can match.
//! * [`spec`] — [`ScanSpec`]: the `WHERE <col> <op> <const> [AND …]` /
//!   `COLUMNS (…)` clauses compiled at parse time, bound to a schema into
//!   a [`BoundScanSpec`] that prunes pages and filters rows.
//! * [`sidecar`] — [`ScanSidecar`]: the lazily-built per-table compressed
//!   heap + zone maps the scan tier caches on the catalog entry.

pub mod codec;
pub mod sidecar;
pub mod spec;
pub mod zonemap;

pub use codec::{compress_page, decompress_page, CODEC_FOR, CODEC_RAW};
pub use sidecar::{select_slots, ScanSidecar};
pub use spec::{BoundPredicate, BoundScanSpec, CmpOp, Predicate, ScanError, ScanSpec};
pub use zonemap::PageZone;

/// Simulated decompressor throughput: bytes of reconstructed page per
/// accelerator clock cycle. IAA-class decompress engines sustain tens of
/// GB/s; at the VU9P's 150 MHz clock, 16 B/cycle ≈ 2.4 GB/s — deliberately
/// conservative so the decompress term stays visible in the cycle model.
pub const DECOMPRESS_BYTES_PER_CYCLE: u64 = 16;

/// Cycles charged for decompressing `raw_len` reconstructed bytes.
pub fn decompress_cycles(raw_len: usize) -> u64 {
    (raw_len as u64).div_ceil(DECOMPRESS_BYTES_PER_CYCLE)
}
