//! The per-table scan sidecar: every page compressed, plus its zone map.
//!
//! Built lazily the first time a table is scanned with a pushdown spec and
//! cached on the table's catalog entry (a [`dana_storage::RuntimeCache`]
//! slot), the sidecar is what the scan tier actually reads: compressed
//! page images go through the buffer pool (charged at their *compressed*
//! size) and are decompressed on fetch, while the zone maps drive page
//! skipping and selectivity estimation without touching any page.

use crate::codec::compress_page;
use crate::spec::BoundScanSpec;
use crate::zonemap::PageZone;
use dana_storage::{ColumnType, HeapFile, PageView, StorageResult};

/// Compressed pages + zone maps for one heap.
#[derive(Debug, Clone)]
pub struct ScanSidecar {
    /// Per-page compressed image (codec byte + payload).
    pages: Vec<Vec<u8>>,
    /// Per-page zone map.
    zones: Vec<PageZone>,
    /// Total raw page bytes (the compression-ratio denominator).
    raw_bytes: u64,
    /// Total compressed bytes.
    compressed_bytes: u64,
}

impl ScanSidecar {
    /// Compresses every page of `heap` and computes its zone maps.
    pub fn build(heap: &HeapFile) -> StorageResult<ScanSidecar> {
        let layout = heap.layout();
        let schema = heap.schema();
        let mut pages = Vec::with_capacity(heap.page_count() as usize);
        let mut zones = Vec::with_capacity(heap.page_count() as usize);
        let mut raw_bytes = 0u64;
        let mut compressed_bytes = 0u64;
        for page_no in 0..heap.page_count() {
            let raw = heap.page_bytes(page_no)?;
            let packed = compress_page(raw, layout, schema);
            raw_bytes += raw.len() as u64;
            compressed_bytes += packed.len() as u64;
            pages.push(packed);
            zones.push(PageZone::build(heap, page_no)?);
        }
        Ok(ScanSidecar {
            pages,
            zones,
            raw_bytes,
            compressed_bytes,
        })
    }

    /// The compressed image of one page.
    pub fn page(&self, page_no: u32) -> &[u8] {
        &self.pages[page_no as usize]
    }

    pub fn zones(&self) -> &[PageZone] {
        &self.zones
    }

    pub fn zone(&self, page_no: u32) -> &PageZone {
        &self.zones[page_no as usize]
    }

    pub fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    pub fn raw_bytes(&self) -> u64 {
        self.raw_bytes
    }

    pub fn compressed_bytes(&self) -> u64 {
        self.compressed_bytes
    }

    /// Raw-to-compressed ratio (≥ 1.0 means the codec won overall; the
    /// raw fallback bounds it below by ~1).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            return 1.0;
        }
        self.raw_bytes as f64 / self.compressed_bytes as f64
    }
}

/// Evaluates `spec` over every page of `heap` and returns, per page, the
/// slots whose tuples pass every conjunct (zone-pruned pages yield empty
/// slot lists without being decoded). The selection the materializing
/// paths (filtered PREDICT) use to copy exactly the surviving tuples'
/// bytes — the same per-cell [`ColumnType::decode_f32`] conversion the
/// data paths use, so selection and extraction can never disagree.
pub fn select_slots(heap: &HeapFile, spec: &BoundScanSpec) -> StorageResult<Vec<Vec<u16>>> {
    let layout = heap.layout();
    let schema = heap.schema();
    let cols: Vec<(usize, ColumnType)> = (0..schema.len())
        .map(|i| Ok((schema.column_offset(i)?, schema.columns()[i].ty)))
        .collect::<StorageResult<_>>()?;
    let mut selected = Vec::with_capacity(heap.page_count() as usize);
    let mut row = vec![0f32; schema.len()];
    for page_no in 0..heap.page_count() {
        let zone = PageZone::build(heap, page_no)?;
        if !spec.page_can_match(&zone) {
            selected.push(Vec::new());
            continue;
        }
        let view = PageView::new(heap.page_bytes(page_no)?, *layout)?;
        let mut slots = Vec::new();
        for slot in 0..view.tuple_count() {
            let data = &view.tuple_bytes(slot)?[layout.tuple_header_bytes..];
            for (c, &(off, ty)) in cols.iter().enumerate() {
                row[c] = ty.decode_f32(&data[off..off + ty.width()]);
            }
            if spec.row_matches(&row) {
                slots.push(slot);
            }
        }
        selected.push(slots);
    }
    Ok(selected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CmpOp, Predicate, ScanSpec};
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Schema, Tuple};

    fn heap(n: usize) -> HeapFile {
        let mut b =
            HeapFileBuilder::new(Schema::training(2), 8 * 1024, TupleDirection::Ascending).unwrap();
        for k in 0..n {
            b.insert(&Tuple::training(&[k as f32, (k % 10) as f32], k as f32))
                .unwrap();
        }
        b.finish()
    }

    #[test]
    fn sidecar_round_trips_and_records_sizes() {
        let h = heap(800);
        let sc = ScanSidecar::build(&h).unwrap();
        assert_eq!(sc.page_count(), h.page_count());
        assert!(sc.ratio() > 1.0, "clustered pages must shrink");
        for p in 0..h.page_count() {
            let back = crate::codec::decompress_page(sc.page(p), h.layout(), h.schema()).unwrap();
            assert_eq!(back.as_slice(), h.page_bytes(p).unwrap());
            assert_eq!(sc.zone(p).tuples as u64, {
                let view = PageView::new(h.page_bytes(p).unwrap(), *h.layout()).unwrap();
                view.tuple_count() as u64
            });
        }
    }

    #[test]
    fn select_slots_matches_predicate_and_prunes() {
        let h = heap(800);
        // x0 holds 0..800 ascending → a range predicate prunes pages.
        let spec = ScanSpec {
            predicates: vec![Predicate {
                column: "x0".into(),
                op: CmpOp::Lt,
                value: 100.0,
            }],
            projection: None,
        }
        .bind(h.schema())
        .unwrap();
        let sel = select_slots(&h, &spec).unwrap();
        let total: usize = sel.iter().map(|s| s.len()).sum();
        assert_eq!(total, 100);
        // Later pages hold only x0 >= capacity ≥ 100 → empty selections.
        assert!(sel.last().unwrap().is_empty());
    }
}
