//! Per-page compression codecs.
//!
//! Two codecs, chosen per page at sidecar-build time:
//!
//! * **raw** (`CODEC_RAW`) — the page image verbatim. Always applicable.
//! * **FOR** (`CODEC_FOR`) — frame-of-reference + bit-packing over the
//!   page's integer lanes. A slotted heap page of fixed-width tuples is a
//!   collection of parallel integer sequences: the tuple-header words
//!   (xids count up, ctids count slots) and, per column, the little-endian
//!   bit patterns of the cell values (floats are packed as their `u32`/
//!   `u64` bit patterns, which keeps NaN payloads, signed zeros and
//!   subnormals byte-exact — the codec never interprets floats). Each lane
//!   stores its minimum and the bit-packed deltas. Everything else on a
//!   canonical page is reconstructed from the layout (line pointers) or is
//!   zero (free space), so only the 24-byte header and the special space
//!   ride along verbatim.
//!
//! [`compress_page`] decompresses its own output and compares against the
//! original before committing to the FOR form — a page that deviates from
//! the canonical builder layout in any way (or that doesn't shrink) falls
//! back to raw, making the round trip bit-exact *unconditionally*.

use dana_storage::{
    PageLayoutDesc, Schema, StorageError, StorageResult, LINE_POINTER_BYTES, PAGE_HEADER_BYTES,
};

/// Codec id: page image stored verbatim.
pub const CODEC_RAW: u8 = 0;
/// Codec id: frame-of-reference + bit-packed lanes.
pub const CODEC_FOR: u8 = 1;

/// Compresses one page image. The result always begins with a codec id
/// byte and always decompresses (via [`decompress_page`] with the same
/// layout and schema) to exactly `bytes`.
pub fn compress_page(bytes: &[u8], layout: &PageLayoutDesc, schema: &Schema) -> Vec<u8> {
    if let Some(packed) = try_compress_for(bytes, layout, schema) {
        if packed.len() < 1 + bytes.len() {
            // Commit to FOR only if the reconstruction is bit-exact.
            if let Ok(back) = decompress_page(&packed, layout, schema) {
                if back == bytes {
                    return packed;
                }
            }
        }
    }
    let mut out = Vec::with_capacity(1 + bytes.len());
    out.push(CODEC_RAW);
    out.extend_from_slice(bytes);
    out
}

/// Decompresses a page produced by [`compress_page`] back to its exact
/// image.
pub fn decompress_page(
    packed: &[u8],
    layout: &PageLayoutDesc,
    schema: &Schema,
) -> StorageResult<Vec<u8>> {
    let (&codec, body) = packed
        .split_first()
        .ok_or_else(|| StorageError::CorruptPage("empty compressed page".to_string()))?;
    match codec {
        CODEC_RAW => {
            if body.len() != layout.page_size {
                return Err(StorageError::CorruptPage(format!(
                    "raw codec body is {} bytes, layout says {}",
                    body.len(),
                    layout.page_size
                )));
            }
            Ok(body.to_vec())
        }
        CODEC_FOR => decompress_for(body, layout, schema),
        other => Err(StorageError::CorruptPage(format!(
            "unknown page codec {other}"
        ))),
    }
}

/// Attempts the FOR encoding. Returns `None` when the page visibly
/// deviates from the canonical builder layout (the final round-trip check
/// in [`compress_page`] catches anything this misses).
fn try_compress_for(bytes: &[u8], layout: &PageLayoutDesc, schema: &Schema) -> Option<Vec<u8>> {
    if bytes.len() != layout.page_size || !layout.tuple_header_bytes.is_multiple_of(4) {
        return None;
    }
    let count = u16::from_le_bytes(bytes[16..18].try_into().unwrap());
    if count > layout.capacity {
        return None;
    }
    // Line pointers must be exactly what the layout dictates (used slots)
    // or zero (unused slots) — they are regenerated, not stored.
    for slot in 0..layout.capacity {
        let lp = PAGE_HEADER_BYTES + slot as usize * LINE_POINTER_BYTES;
        let off = u16::from_le_bytes(bytes[lp..lp + 2].try_into().unwrap());
        let len = u16::from_le_bytes(bytes[lp + 2..lp + 4].try_into().unwrap());
        if slot < count {
            if off as usize != layout.tuple_offset(slot) || len as usize != layout.tuple_bytes {
                return None;
            }
        } else if off != 0 || len != 0 {
            return None;
        }
    }
    let n = count as usize;
    let mut out = Vec::with_capacity(layout.page_size / 2);
    out.push(CODEC_FOR);
    out.extend_from_slice(&bytes[..PAGE_HEADER_BYTES]);
    out.extend_from_slice(&bytes[layout.special_start()..]);

    // Tuple-header word lanes.
    let header_words = layout.tuple_header_bytes / 4;
    let mut lane = Vec::with_capacity(n);
    for w in 0..header_words {
        lane.clear();
        for slot in 0..count {
            let at = layout.tuple_offset(slot) + w * 4;
            lane.push(u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as u64);
        }
        encode_lane(&lane, 4, &mut out);
    }
    // One lane per column: the cells' little-endian bit patterns.
    for (idx, col) in schema.columns().iter().enumerate() {
        let col_off = schema.column_offset(idx).ok()?;
        let width = col.ty.width();
        lane.clear();
        for slot in 0..count {
            let at = layout.tuple_offset(slot) + layout.tuple_header_bytes + col_off;
            lane.push(match width {
                4 => u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as u64,
                _ => u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap()),
            });
        }
        encode_lane(&lane, width, &mut out);
    }
    Some(out)
}

fn decompress_for(body: &[u8], layout: &PageLayoutDesc, schema: &Schema) -> StorageResult<Vec<u8>> {
    let corrupt = |what: &str| StorageError::CorruptPage(format!("FOR codec: {what}"));
    let mut r = Reader { body, at: 0 };
    let header = r.take(PAGE_HEADER_BYTES).ok_or_else(|| corrupt("header"))?;
    let special = r
        .take(layout.special_bytes)
        .ok_or_else(|| corrupt("special space"))?;
    let mut page = vec![0u8; layout.page_size];
    page[..PAGE_HEADER_BYTES].copy_from_slice(header);
    page[layout.special_start()..].copy_from_slice(special);
    let count = u16::from_le_bytes(header[16..18].try_into().unwrap());
    if count > layout.capacity {
        return Err(corrupt("tuple_count exceeds capacity"));
    }
    for slot in 0..count {
        let lp = PAGE_HEADER_BYTES + slot as usize * LINE_POINTER_BYTES;
        page[lp..lp + 2].copy_from_slice(&(layout.tuple_offset(slot) as u16).to_le_bytes());
        page[lp + 2..lp + 4].copy_from_slice(&(layout.tuple_bytes as u16).to_le_bytes());
    }
    let n = count as usize;
    let mut lane = Vec::with_capacity(n);
    let header_words = layout.tuple_header_bytes / 4;
    for w in 0..header_words {
        r.decode_lane(n, 4, &mut lane)
            .ok_or_else(|| corrupt("tuple-header lane"))?;
        for (slot, &v) in lane.iter().enumerate() {
            let at = layout.tuple_offset(slot as u16) + w * 4;
            page[at..at + 4].copy_from_slice(&(v as u32).to_le_bytes());
        }
    }
    for (idx, col) in schema.columns().iter().enumerate() {
        let col_off = schema
            .column_offset(idx)
            .map_err(|e| corrupt(&e.to_string()))?;
        let width = col.ty.width();
        r.decode_lane(n, width, &mut lane)
            .ok_or_else(|| corrupt("column lane"))?;
        for (slot, &v) in lane.iter().enumerate() {
            let at = layout.tuple_offset(slot as u16) + layout.tuple_header_bytes + col_off;
            match width {
                4 => page[at..at + 4].copy_from_slice(&(v as u32).to_le_bytes()),
                _ => page[at..at + 8].copy_from_slice(&v.to_le_bytes()),
            }
        }
    }
    if r.at != body.len() {
        return Err(corrupt("trailing bytes"));
    }
    Ok(page)
}

/// Lane mode: frame-of-reference over the raw integer values.
const LANE_FOR: u8 = 0;
/// Lane mode: sorted dictionary + bit-packed indices (low-cardinality
/// lanes — e.g. categorical or quantized float columns — where the value
/// *range* is wide but the distinct count is small).
const LANE_DICT: u8 = 1;

/// Maximum dictionary size worth trying (12-bit indices).
const DICT_MAX: usize = 4096;

/// Encodes one lane, choosing the smaller of
/// `[LANE_FOR][min: width bytes LE][bit_width: u8][packed deltas]` and
/// `[LANE_DICT][n_dict: u16 LE][dict: n_dict × width bytes][bit_width: u8][packed indices]`.
fn encode_lane(values: &[u64], width: usize, out: &mut Vec<u8>) {
    let min = values.iter().copied().min().unwrap_or(0);
    let max_delta = values.iter().map(|&v| v - min).max().unwrap_or(0);
    let for_bw = 64 - max_delta.leading_zeros() as usize; // 0 when all equal
    let for_len = width + 1 + packed_len(values.len(), for_bw);

    let mut dict: Vec<u64> = values.to_vec();
    dict.sort_unstable();
    dict.dedup();
    let dict_bw = usize::BITS as usize - (dict.len().max(1) - 1).leading_zeros() as usize;
    let dict_len = 2 + dict.len() * width + 1 + packed_len(values.len(), dict_bw);

    if dict.len() <= DICT_MAX && dict_len < for_len {
        out.push(LANE_DICT);
        out.extend_from_slice(&(dict.len() as u16).to_le_bytes());
        for &v in &dict {
            put_value(v, width, out);
        }
        out.push(dict_bw as u8);
        pack_bits(
            values
                .iter()
                .map(|v| dict.binary_search(v).expect("value in dict") as u64),
            dict_bw,
            out,
        );
    } else {
        out.push(LANE_FOR);
        put_value(min, width, out);
        out.push(for_bw as u8);
        pack_bits(values.iter().map(|&v| v - min), for_bw, out);
    }
}

fn put_value(v: u64, width: usize, out: &mut Vec<u8>) {
    match width {
        4 => out.extend_from_slice(&(v as u32).to_le_bytes()),
        _ => out.extend_from_slice(&v.to_le_bytes()),
    }
}

fn packed_len(n: usize, bw: usize) -> usize {
    (n * bw).div_ceil(8)
}

fn pack_bits(values: impl Iterator<Item = u64>, bw: usize, out: &mut Vec<u8>) {
    let mut acc: u128 = 0;
    let mut nbits = 0usize;
    for v in values {
        acc |= (v as u128) << nbits;
        nbits += bw;
        while nbits >= 8 {
            out.push(acc as u8);
            acc >>= 8;
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push(acc as u8);
    }
}

struct Reader<'a> {
    body: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.body.get(self.at..self.at + n)?;
        self.at += n;
        Some(s)
    }

    fn value(&mut self, width: usize) -> Option<u64> {
        Some(match width {
            4 => u32::from_le_bytes(self.take(4)?.try_into().unwrap()) as u64,
            _ => u64::from_le_bytes(self.take(8)?.try_into().unwrap()),
        })
    }

    /// Decodes one lane of `n` values of on-page `width` into `lane`.
    fn decode_lane(&mut self, n: usize, width: usize, lane: &mut Vec<u64>) -> Option<()> {
        let mode = *self.take(1)?.first()?;
        match mode {
            LANE_FOR => {
                let min = self.value(width)?;
                let raw = self.unpack(n)?;
                lane.clear();
                for d in raw {
                    lane.push(min.wrapping_add(d));
                }
            }
            LANE_DICT => {
                let n_dict = u16::from_le_bytes(self.take(2)?.try_into().unwrap()) as usize;
                let mut dict = Vec::with_capacity(n_dict);
                for _ in 0..n_dict {
                    dict.push(self.value(width)?);
                }
                let idx = self.unpack(n)?;
                lane.clear();
                for i in idx {
                    lane.push(*dict.get(i as usize)?);
                }
            }
            _ => return None,
        }
        Some(())
    }

    /// Reads `[bit_width: u8][packed]` and unpacks `n` values.
    fn unpack(&mut self, n: usize) -> Option<Vec<u64>> {
        let bw = *self.take(1)?.first()? as usize;
        if bw > 64 {
            return None;
        }
        let packed = self.take(packed_len(n, bw))?;
        let mut out = Vec::with_capacity(n);
        let mut acc: u128 = 0;
        let mut nbits = 0usize;
        let mut next = 0usize;
        let mask: u128 = if bw == 0 { 0 } else { (!0u128) >> (128 - bw) };
        for _ in 0..n {
            while nbits < bw {
                acc |= (packed[next] as u128) << nbits;
                next += 1;
                nbits += 8;
            }
            out.push((acc & mask) as u64);
            acc >>= bw;
            nbits -= bw;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dana_storage::page::TupleDirection;
    use dana_storage::{HeapFileBuilder, Tuple};

    fn build_pages(n: usize, d: usize, dir: TupleDirection) -> (Vec<Vec<u8>>, PageLayoutDesc) {
        let schema = Schema::training(d);
        let mut b = HeapFileBuilder::new(schema, 8 * 1024, dir).unwrap();
        for k in 0..n {
            let x: Vec<f32> = (0..d).map(|i| ((k * 3 + i) % 7) as f32 * 0.25).collect();
            b.insert(&Tuple::training(&x, k as f32)).unwrap();
        }
        let heap = b.finish();
        let layout = *heap.layout();
        let pages = (0..heap.page_count())
            .map(|p| heap.page_bytes(p).unwrap().to_vec())
            .collect();
        (pages, layout)
    }

    #[test]
    fn builder_pages_round_trip_and_shrink() {
        for dir in [TupleDirection::Ascending, TupleDirection::Descending] {
            let (pages, layout) = build_pages(500, 8, dir);
            let schema = Schema::training(8);
            let mut raw = 0usize;
            let mut packed_total = 0usize;
            for page in &pages {
                let packed = compress_page(page, &layout, &schema);
                assert_eq!(packed[0], CODEC_FOR, "builder pages are canonical");
                let back = decompress_page(&packed, &layout, &schema).unwrap();
                assert_eq!(&back, page);
                raw += page.len();
                packed_total += packed.len();
            }
            assert!(
                packed_total < raw / 2,
                "clustered data must compress ≥2×: {packed_total} vs {raw}"
            );
        }
    }

    #[test]
    fn special_float_bit_patterns_survive() {
        let schema = Schema::training(2);
        let mut b =
            HeapFileBuilder::new(schema.clone(), 8 * 1024, TupleDirection::Ascending).unwrap();
        let oddballs = [
            f32::NAN,
            f32::from_bits(0x7fc0_1234), // NaN with payload
            -0.0,
            0.0,
            f32::from_bits(1), // smallest subnormal
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE,
        ];
        for (k, &v) in oddballs.iter().enumerate() {
            b.insert(&Tuple::training(&[v, -v], k as f32)).unwrap();
        }
        let heap = b.finish();
        let page = heap.page_bytes(0).unwrap();
        let packed = compress_page(page, heap.layout(), &schema);
        let back = decompress_page(&packed, heap.layout(), &schema).unwrap();
        assert_eq!(back.as_slice(), page, "bit patterns must survive exactly");
    }

    #[test]
    fn corrupted_page_falls_back_to_raw() {
        let (pages, layout) = build_pages(50, 4, TupleDirection::Ascending);
        let schema = Schema::training(4);
        let mut bent = pages[0].clone();
        // Scribble on a line pointer: no longer canonical.
        bent[PAGE_HEADER_BYTES] ^= 0xFF;
        let packed = compress_page(&bent, &layout, &schema);
        assert_eq!(packed[0], CODEC_RAW);
        assert_eq!(decompress_page(&packed, &layout, &schema).unwrap(), bent);
    }

    #[test]
    fn unknown_codec_and_truncation_are_typed_errors() {
        let layout = PageLayoutDesc::new(8 * 1024, 0, 60, 16, TupleDirection::Ascending).unwrap();
        let schema = Schema::training(10);
        assert!(decompress_page(&[], &layout, &schema).is_err());
        assert!(decompress_page(&[9, 0, 0], &layout, &schema).is_err());
        assert!(decompress_page(&[CODEC_RAW, 0], &layout, &schema).is_err());
        assert!(decompress_page(&[CODEC_FOR, 1, 2], &layout, &schema).is_err());
    }
}
