//! Offline stand-in for `criterion`.
//!
//! Implements the subset of criterion's API the bench targets use
//! (`criterion_group!` / `criterion_main!`, `Criterion::default()`,
//! `sample_size`, `bench_function`, `benchmark_group`) with a simple
//! calibrated wall-clock loop: each benchmark is warmed up, then timed for
//! a fixed budget, and the mean time per iteration is printed. No
//! statistics, plots, or saved baselines — compare runs by the printed
//! numbers.

use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bench driver. `sample_size` scales the measurement budget so the knob
/// keeps meaning something: more samples, longer measurement.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: Duration::from_millis(5 * self.sample_size as u64),
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A named group of related benchmarks (prefixes the group name).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<S: Into<String>, F>(&mut self, id: S, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn finish(self) {}
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    budget: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (page faults, lazy init).
        black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if start.elapsed() >= self.budget {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<50} (no measurement)");
            return;
        }
        let per_iter = self.elapsed.as_nanos() as f64 / self.iters as f64;
        let (value, unit) = if per_iter >= 1e9 {
            (per_iter / 1e9, "s")
        } else if per_iter >= 1e6 {
            (per_iter / 1e6, "ms")
        } else if per_iter >= 1e3 {
            (per_iter / 1e3, "µs")
        } else {
            (per_iter, "ns")
        };
        println!(
            "{name:<50} {value:>10.3} {unit}/iter ({} iters)",
            self.iters
        );
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
