//! Offline stand-in for `proptest`.
//!
//! Covers the surface `tests/properties.rs` uses: the `proptest!` macro
//! with `arg in strategy` bindings, range/bool/vec/select strategies, and
//! the `prop_assert*` / `prop_assume!` macros. Each test runs a fixed
//! number of deterministic cases seeded from the test's name — no
//! shrinking, no failure persistence.

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{RngExt, SampleUniform, SeedableRng};

/// Cases per property. Upstream defaults to 256; 64 keeps the heavier
/// heap-building properties quick while still varying every parameter.
pub const CASES: u32 = 64;

/// Deterministic per-test RNG, seeded from the test name.
pub fn test_rng(name: &str) -> StdRng {
    let mut seed = 0xDA7A_5EEDu64;
    for b in name.bytes() {
        seed = seed.rotate_left(8) ^ u64::from(b) ^ seed.wrapping_mul(31);
    }
    StdRng::seed_from_u64(seed)
}

/// A value generator.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.random_range(self.clone())
    }
}

/// `any::<T>()` — full-domain strategy for simple types.
pub struct Any<T>(std::marker::PhantomData<T>);

pub fn any<T>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut StdRng) -> bool {
        rng.random_range(0u32..2) == 1
    }
}

/// Element-count specification for collection strategies: a fixed size or
/// a half-open range.
pub struct SizeRange(Range<usize>);

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange(n..n + 1)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange(r)
    }
}

pub mod collection {
    use super::*;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into().0,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.random_range(self.size.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use super::*;

    pub struct Select<T>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0[rng.random_range(0..self.0.len())].clone()
        }
    }
}

/// What `use proptest::prelude::*` is expected to bring in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};

    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::test_rng(stringify!($name));
                for _ in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut proptest_rng);)+
                    // The body is inlined in the loop so `prop_assume!`'s
                    // `continue` skips just this case.
                    $body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}
