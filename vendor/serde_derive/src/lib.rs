//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serde that round-trips through a JSON value tree
//! (see `vendor/serde`). This proc-macro crate supplies the matching
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]`, covering the shapes
//! this workspace actually uses:
//!
//! * structs with named fields,
//! * tuple structs (newtype and multi-field),
//! * enums with unit, tuple, and struct variants,
//!
//! with serde's externally-tagged representation (`"Variant"` for unit
//! variants, `{"Variant": payload}` otherwise). Generic types and
//! `#[serde(...)]` attributes are not supported — none appear in-tree.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Kind {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

struct Input {
    name: String,
    kind: Kind,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_serialize(&input)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = parse(input);
    gen_deserialize(&input)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---- parsing -------------------------------------------------------------

fn parse(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Skip the attribute's bracket group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Skip a `pub(...)` restriction if present.
                if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    it.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                let kind = match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Kind::Struct(Fields::Named(named_fields(g.stream())))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Kind::Struct(Fields::Tuple(count_top_level(g.stream())))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::Struct(Fields::Unit),
                    other => panic!("derive: unsupported struct body for {name}: {other:?}"),
                };
                return Input { name, kind };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(&mut it);
                reject_generics(&mut it, &name);
                let body = match it.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                    other => panic!("derive: expected enum body for {name}, got {other:?}"),
                };
                return Input {
                    name,
                    kind: Kind::Enum(variants(body)),
                };
            }
            Some(other) => panic!("derive: unexpected token {other}"),
            None => panic!("derive: ran out of tokens before struct/enum keyword"),
        }
    }
}

fn expect_ident(it: &mut impl Iterator<Item = TokenTree>) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("derive: expected identifier, got {other:?}"),
    }
}

fn reject_generics(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>, name: &str) {
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("derive: generic type {name} is not supported by the vendored serde stub");
    }
}

/// Splits a token stream on top-level commas, treating `<...>` nesting as
/// opaque (proc-macro groups already hide `(...)`/`[...]`/`{...}` contents).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    out.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        out.last_mut().unwrap().push(tt);
    }
    if out.last().map(Vec::is_empty).unwrap_or(false) {
        out.pop();
    }
    out
}

fn count_top_level(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut it = field.into_iter().peekable();
            loop {
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        it.next();
                    }
                    Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                        if matches!(it.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                        {
                            it.next();
                        }
                    }
                    Some(TokenTree::Ident(id)) => return id.to_string(),
                    other => panic!("derive: malformed named field: {other:?}"),
                }
            }
        })
        .collect()
}

fn variants(stream: TokenStream) -> Vec<(String, Fields)> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut it = var.into_iter().peekable();
            let name = loop {
                match it.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                        it.next();
                    }
                    Some(TokenTree::Ident(id)) => break id.to_string(),
                    other => panic!("derive: malformed enum variant: {other:?}"),
                }
            };
            let fields = match it.next() {
                None => Fields::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_top_level(g.stream()))
                }
                // `Variant = 3` — explicit discriminant on a unit variant;
                // serde serializes it by name, so the value is irrelevant.
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => Fields::Unit,
                other => panic!("derive: malformed variant body: {other:?}"),
            };
            (name, fields)
        })
        .collect()
}

// ---- code generation -----------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => "serde::json::Value::Null".to_string(),
        Kind::Struct(Fields::Tuple(1)) => "serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::json::Value::Arr(vec![{}])", items.join(", "))
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("serde::json::Value::Obj(vec![{}])", items.join(", "))
        }
        Kind::Enum(vars) => {
            let arms: Vec<String> = vars
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => serde::json::Value::Str(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(f0) => serde::json::tagged(\"{v}\", serde::Serialize::to_value(f0)),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Serialize::to_value(f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => serde::json::tagged(\"{v}\", serde::json::Value::Arr(vec![{}])),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    Fields::Named(fs) => {
                        let binds = fs.join(", ");
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::json::tagged(\"{v}\", serde::json::Value::Obj(vec![{}])),",
                            items.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::json::Value {{ {body} }}\n}}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(Fields::Unit) => format!("Ok({name})"),
        Kind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(serde::Deserialize::from_value(v)?))")
        }
        Kind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                .collect();
            format!(
                "let arr = serde::json::as_arr_of(v, {n}, \"{name}\")?;\n    Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: serde::Deserialize::from_value(serde::json::field(obj, \"{f}\", \"{name}\")?)?"
                    )
                })
                .collect();
            format!(
                "let obj = serde::json::as_obj(v, \"{name}\")?;\n    Ok({name} {{ {} }})",
                items.join(", ")
            )
        }
        Kind::Enum(vars) => {
            let unit_arms: Vec<String> = vars
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let tagged_arms: Vec<String> = vars
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&arr[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let arr = serde::json::as_arr_of(payload, {n}, \"{name}::{v}\")?; Ok({name}::{v}({})) }}",
                            items.join(", ")
                        ))
                    }
                    Fields::Named(fs) => {
                        let items: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(serde::json::field(obj, \"{f}\", \"{name}::{v}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let obj = serde::json::as_obj(payload, \"{name}::{v}\")?; Ok({name}::{v} {{ {} }}) }}",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   serde::json::Value::Str(s) => match s.as_str() {{\n\
                     {unit}\n\
                     other => Err(format!(\"unknown {name} variant '{{other}}'\")),\n\
                   }},\n\
                   _ => {{\n\
                     let (tag, payload) = serde::json::variant(v, \"{name}\")?;\n\
                     match tag {{\n\
                       {tagged}\n\
                       other => Err(format!(\"unknown {name} variant '{{other}}'\")),\n\
                     }}\n\
                   }}\n\
                 }}",
                unit = unit_arms.join("\n"),
                tagged = tagged_arms.join("\n"),
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::json::Value) -> Result<Self, String> {{\n    {body}\n  }}\n}}"
    )
}
