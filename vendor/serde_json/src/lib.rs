//! Offline stand-in for `serde_json`: `to_string` / `from_str` over the
//! vendored serde's [`serde::json::Value`] tree.

use std::fmt;

pub use serde::json::Value;

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let v = serde::json::parse(s).map_err(Error)?;
    T::from_value(&v).map_err(Error)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_containers() {
        let v: Vec<Option<f32>> = vec![Some(1.5), None, Some(-3.0)];
        let s = to_string(&v).unwrap();
        let back: Vec<Option<f32>> = from_str(&s).unwrap();
        assert_eq!(v, back);

        let pairs: Vec<(u64, String)> = vec![(1 << 21, "a \"quoted\"\nline".into())];
        let back: Vec<(u64, String)> = from_str(&to_string(&pairs).unwrap()).unwrap();
        assert_eq!(pairs, back);
    }
}
