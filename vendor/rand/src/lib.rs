//! Offline stand-in for `rand`, covering the surface the workload
//! generators use: `StdRng::seed_from_u64` plus `random_range` over
//! integer and float `Range`s. The generator is SplitMix64 — deterministic,
//! well-mixed, and plenty for synthetic-dataset generation (this is NOT the
//! real rand's ChaCha12 StdRng; seeded streams differ from upstream).

use std::ops::Range;

pub mod rngs {
    /// Seeded deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> rngs::StdRng {
        rngs::StdRng { state: seed }
    }
}

/// Types `random_range` can sample uniformly from a half-open range.
pub trait SampleUniform: PartialOrd + Copy {
    fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Modulo bias is negligible for the small spans used here.
                range.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uniform_int!(usize, u64, u32, u16, u8);

macro_rules! uniform_signed {
    ($($t:ty as $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i64 - range.start as i64) as u64;
                (range.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

uniform_signed!(i64 as u64, i32 as u32, i16 as u16, i8 as u8, isize as usize);

impl SampleUniform for f32 {
    fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + (range.end - range.start) * unit
    }
}

impl SampleUniform for f64 {
    fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + (range.end - range.start) * unit
    }
}

/// The sampling methods callers use (upstream rand's `Rng`; the in-tree
/// code imports it as `RngExt`).
pub trait RngExt {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
}

impl RngExt for rngs::StdRng {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_in_range() {
        let mut a = rngs::StdRng::seed_from_u64(7);
        let mut b = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = a.random_range(0usize..13);
            assert_eq!(x, b.random_range(0usize..13));
            assert!(x < 13);
            let f = a.random_range(-0.5f32..0.5);
            assert_eq!(f, b.random_range(-0.5f32..0.5));
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = rngs::StdRng::seed_from_u64(42);
        let mut counts = [0u32; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
