//! The JSON value tree the vendored serde serializes through, plus a
//! parser and printer. Integers and floats are kept distinct so `u64`
//! program words round-trip exactly; float formatting relies on Rust's
//! shortest-round-trip `Display`.

use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// `{"tag": payload}` — serde's externally-tagged enum representation.
pub fn tagged(tag: &str, payload: Value) -> Value {
    Value::Obj(vec![(tag.to_string(), payload)])
}

/// Splits an externally-tagged enum value into `(tag, payload)`.
pub fn variant<'a>(v: &'a Value, ty: &str) -> Result<(&'a str, &'a Value), String> {
    match v {
        Value::Obj(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
        other => Err(format!(
            "expected single-key variant object for {ty}, got {other:?}"
        )),
    }
}

pub fn as_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a Value, String> {
    match v {
        Value::Obj(_) => Ok(v),
        other => Err(format!("expected object for {ty}, got {other:?}")),
    }
}

pub fn field<'a>(obj: &'a Value, key: &str, ty: &str) -> Result<&'a Value, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field '{key}' for {ty}"))
}

pub fn as_arr_of<'a>(v: &'a Value, len: usize, ty: &str) -> Result<&'a [Value], String> {
    match v {
        Value::Arr(items) if items.len() == len => Ok(items),
        Value::Arr(items) => Err(format!(
            "expected {len}-element array for {ty}, got {}",
            items.len()
        )),
        other => Err(format!("expected array for {ty}, got {other:?}")),
    }
}

// ---- printing ------------------------------------------------------------

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => {
                if v.is_finite() {
                    write!(f, "{v}")
                } else {
                    // JSON has no Inf/NaN; match serde_json's lossy `null`.
                    f.write_str("null")
                }
            }
            Value::Str(s) => write_escaped(f, s),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

// ---- parsing -------------------------------------------------------------

pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Arr(items));
                        }
                        _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Obj(pairs));
                        }
                        _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(
                                char::from_u32(code).ok_or("surrogate \\u escape unsupported")?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                None => return Err("unterminated string".to_string()),
                _ => unreachable!(),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|e| e.to_string())
        } else {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|e| e.to_string())
        }
    }
}
