//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors
//! the minimal surface this codebase uses: `#[derive(Serialize, Deserialize)]`
//! on non-generic structs/enums and `serde_json::{to_string, from_str}`.
//! Instead of serde's visitor-based data model, values round-trip through
//! the [`json::Value`] tree. Representation choices (externally-tagged
//! enums, structs as objects, newtype transparency) match real serde's JSON
//! output so swapping the real crates back in is a manifest-only change.

pub mod json;

/// Serialization into the JSON value tree.
pub trait Serialize {
    fn to_value(&self) -> json::Value;
}

/// Deserialization from the JSON value tree.
pub trait Deserialize: Sized {
    fn from_value(v: &json::Value) -> Result<Self, String>;
}

// Re-export the derives under the names `#[derive(serde::Serialize)]`
// expects. (A trait and a derive macro may share a name: separate
// namespaces.)
pub use serde_derive::Deserialize;
pub use serde_derive::Serialize;

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> json::Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        T::from_value(v).map(Box::new)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> json::Value {
        json::Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, got {other:?}")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                let i = match v {
                    json::Value::Int(i) => *i,
                    json::Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => return Err(format!("expected integer, got {other:?}")),
                };
                <$t>::try_from(i).map_err(|_| {
                    format!("integer {i} out of range for {}", stringify!($t))
                })
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> json::Value {
                json::Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                match v {
                    json::Value::Float(f) => Ok(*f as $t),
                    json::Value::Int(i) => Ok(*i as $t),
                    other => Err(format!("expected number, got {other:?}")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for str {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> json::Value {
        json::Value::Str(self.clone())
    }
}

/// Deserializing into `&'static str` leaks the string. Real serde cannot
/// do this at all; in-tree it only occurs for FPGA device names, which are
/// few and tiny, so the leak is bounded and acceptable for a test stub.
impl Deserialize for &'static str {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(format!("expected array, got {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> json::Value {
        json::Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> json::Value {
        match self {
            None => json::Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &json::Value) -> Result<Self, String> {
        match v {
            json::Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> json::Value {
                json::Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &json::Value) -> Result<Self, String> {
                const LEN: usize = 0 $(+ { let _ = $n; 1 })+;
                let arr = json::as_arr_of(v, LEN, "tuple")?;
                Ok(($($t::from_value(&arr[$n])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}
