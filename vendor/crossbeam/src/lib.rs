//! Offline stand-in for `crossbeam`, covering `crossbeam::thread` scoped
//! threads — a thin adapter over `std::thread::scope` (std has had scoped
//! threads since 1.63) with crossbeam's `Result`-returning surface — and
//! the `crossbeam::channel` MPMC channels the serving tier uses, built on
//! `Mutex<VecDeque>` + `Condvar` with crossbeam-channel's disconnect
//! semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and every sender dropped.
        Disconnected,
    }

    struct Shared<T> {
        queue: Mutex<State<T>>,
        /// Signalled when a message arrives or the last sender leaves.
        readable: Condvar,
        /// Signalled when capacity frees up or the last receiver leaves
        /// (bounded channels only).
        writable: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }
        }
    }

    /// The sending half. Clone freely: the channel is multi-producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half. Clone freely: the channel is multi-consumer;
    /// each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// A channel of unlimited capacity: `send` never blocks.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(None)
    }

    /// A channel holding at most `cap` in-flight messages: `send` blocks
    /// while full. `cap` = 0 is clamped to 1 (this stand-in does not
    /// implement rendezvous channels; no in-tree caller uses them).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(Some(cap.max(1)))
    }

    fn with_capacity<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            readable: Condvar::new(),
            writable: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared.lock().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.readable.notify_all();
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared.lock().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.lock();
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.writable.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Delivers `msg`, blocking while a bounded channel is full.
        /// Errors (returning the message) once every receiver is gone.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.lock();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.items.len() >= c);
                if !full {
                    st.items.push_back(msg);
                    drop(st);
                    self.shared.readable.notify_one();
                    return Ok(());
                }
                st = match self.shared.writable.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }
    }

    impl<T> Receiver<T> {
        /// Takes the next message, blocking while the channel is empty.
        /// Errors once the channel is empty *and* every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.lock();
            loop {
                if let Some(msg) = st.items.pop_front() {
                    drop(st);
                    self.shared.writable.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = match self.shared.readable.wait(st) {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.lock();
            if let Some(msg) = st.items.pop_front() {
                drop(st);
                self.shared.writable.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Messages currently queued.
        pub fn len(&self) -> usize {
            self.shared.lock().items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}

pub mod thread {
    use std::any::Any;

    /// Panic payload of a scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Token passed to `spawn` closures. crossbeam passes a nested scope
    /// handle here; this stub does not support nested spawns, which no
    /// in-tree caller uses.
    pub struct NestedScope;

    /// Scope handle: spawn threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam, a panicking child propagates its panic
    /// through the scope (so `Err` is never actually produced) — callers
    /// here only `.expect()` the result, which behaves identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn unbounded_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(channel::SendError(7)));
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = channel::bounded(1);
        tx.send(1).unwrap();
        let handle = std::thread::spawn(move || {
            // Blocks until the main thread drains the slot.
            tx.send(2).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        handle.join().unwrap();
    }

    #[test]
    fn mpmc_delivers_each_message_once() {
        let (tx, rx) = channel::unbounded::<u32>();
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        drop(rx);
        let mut all: Vec<u32> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
