//! Offline stand-in for `crossbeam`, covering only `crossbeam::thread`
//! scoped threads — a thin adapter over `std::thread::scope` (std has had
//! scoped threads since 1.63) with crossbeam's `Result`-returning surface.

pub mod thread {
    use std::any::Any;

    /// Panic payload of a scoped thread.
    pub type PanicPayload = Box<dyn Any + Send + 'static>;

    /// Token passed to `spawn` closures. crossbeam passes a nested scope
    /// handle here; this stub does not support nested spawns, which no
    /// in-tree caller uses.
    pub struct NestedScope;

    /// Scope handle: spawn threads that may borrow from the caller.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        pub fn join(self) -> Result<T, PanicPayload> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(NestedScope) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(NestedScope)),
            }
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns. Unlike crossbeam, a panicking child propagates its panic
    /// through the scope (so `Err` is never actually produced) — callers
    /// here only `.expect()` the result, which behaves identically.
    pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let sums: Vec<i32> = super::thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
        .unwrap();
        assert_eq!(sums, vec![3, 7]);
    }
}
