//! Intra-query data parallelism end-to-end: one large training table,
//! one query, a gang of accelerators.
//!
//! ```sh
//! cargo run --release --example parallel_scaleout
//! ```
//!
//! A logistic-regression table is trained, evaluated, and scored with
//! `WITH (shards = k)` for k ∈ {1, 2, 4} through the SQL front door of a
//! running [`dana_server::DanaServer`]. The printout shows, per shard
//! count: the simulated end-to-end seconds (the gang's critical path),
//! the speedup over the 1-shard run, the gang's pool instances, and the
//! model's in-database loss — demonstrating scan speedup *with* loss
//! parity. The 1-shard run is bit-identical to serial by construction,
//! and every PREDICT materializes a bit-identical prediction table
//! (asserted). `DANA_SMOKE=1` shrinks the table for CI.

use dana::prelude::*;
use dana_server::{DanaServer, QueryRequest, ServerConfig, SystemCoreConfig};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

fn logistic_heap(n: usize, d: usize) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.25 * i as f32 - 1.5).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 13 + i * 7) % 29) as f32 - 14.0) / 14.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, (s > 0.0) as u8 as f32))
            .unwrap();
    }
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (n, d) = if smoke { (60_000, 16) } else { (300_000, 16) };
    let spec = dana_dsl::zoo::logistic_regression(dana_dsl::zoo::DenseParams {
        n_features: d,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: if smoke { 3 } else { 6 },
    })?;

    let srv = DanaServer::start(ServerConfig {
        accelerators: 4,
        workers: 4,
        admission: Default::default(),
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 512 << 20,
                page_size: PAGE,
            },
            ..Default::default()
        },
    });
    srv.create_table("clicks", logistic_heap(n, d))?;
    srv.deploy(&spec, "clicks")?;
    let session = srv.open_session("scaleout");

    println!("=== intra-query parallelism: {n} × {d} logistic regression, pool of 4 ===\n");

    // ---- training sweep: same query, growing gangs -----------------------
    // Each shard count trains its own data-parallel model; the loss
    // column shows parity with the serial optimum (the problem is
    // convex, so epoch-boundary model averaging tracks it closely).
    println!(
        "{:<24} {:>13} {:>9} {:>14} {:>12}",
        "training", "sim seconds", "speedup", "gang", "log_loss"
    );
    let mut train_base = None;
    for k in [1u16, 2, 4] {
        // Cold cache per run: the scan term (what sharding divides)
        // dominates the per-query constants.
        srv.core().clear_cache();
        let reply = srv.call(
            session,
            QueryRequest::Sql(format!(
                "EXECUTE dana.logisticR('clicks') WITH (shards = {k});"
            )),
        )?;
        let sim = reply.report().timing.total_seconds;
        let gang = reply.gang.clone();
        srv.core().clear_cache();
        let loss = srv
            .call(
                session,
                QueryRequest::Sql(format!(
                    "EVALUATE dana.logisticR('clicks') WITH (shards = {k});"
                )),
            )?
            .eval_report()
            .value;
        let base = *train_base.get_or_insert(sim);
        println!(
            "{:<24} {:>13.4} {:>8.2}x {:>14} {:>12.6}",
            format!("EXECUTE WITH (shards={k})"),
            sim,
            base / sim,
            format!("{gang:?}"),
            loss,
        );
    }

    // ---- scoring sweep: one fixed model, growing gangs -------------------
    // Retrain once at shards = 1 so every PREDICT binds the *same*
    // model: the three materialized tables must then be bit-identical —
    // the shard count is invisible to PREDICT's output.
    srv.call(
        session,
        QueryRequest::Sql("EXECUTE dana.logisticR('clicks');".into()),
    )?;
    println!(
        "\n{:<24} {:>13} {:>9} {:>14} {:>12}",
        "scoring (fixed model)", "sim seconds", "speedup", "gang", "output"
    );
    let mut score_base = None;
    let mut serial_rows: Option<Vec<Vec<f32>>> = None;
    for k in [1u16, 2, 4] {
        let dest = format!("scores_{k}");
        srv.core().clear_cache();
        let reply = srv.call(
            session,
            QueryRequest::Sql(format!(
                "PREDICT dana.logisticR('clicks') INTO '{dest}' WITH (shards = {k});"
            )),
        )?;
        let gang = reply.gang.clone();
        let predict = reply.predict_report().clone();
        let rows: Vec<Vec<f32>> = srv
            .core()
            .table_snapshot(&dest)?
            .scan_batch()?
            .rows()
            .map(|r| r.to_vec())
            .collect();
        match &serial_rows {
            None => serial_rows = Some(rows),
            Some(reference) => assert_eq!(
                &rows, reference,
                "{k}-shard PREDICT must be bit-identical to serial"
            ),
        }
        let sim = predict.timing.total_seconds;
        let base = *score_base.get_or_insert(sim);
        println!(
            "{:<24} {:>13.4} {:>8.2}x {:>14} {:>12}",
            format!("PREDICT WITH (shards={k})"),
            sim,
            base / sim,
            format!("{gang:?}"),
            format!("{} rows", predict.rows_scored),
        );
    }
    println!(
        "\nall three prediction tables are bit-identical — shard count is invisible to PREDICT"
    );

    let util = srv.shutdown();
    println!(
        "pool busy seconds {:?} (makespan {:.3}s, {:.1}% utilized)",
        util.busy_seconds
            .iter()
            .map(|s| (s * 1e3).round() / 1e3)
            .collect::<Vec<_>>(),
        util.makespan_seconds(),
        util.utilization() * 100.0
    );
    Ok(())
}
