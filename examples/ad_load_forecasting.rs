//! The paper's motivating Example 1: "A marketing firm ... forecasts the
//! hourly ad serving load by running a multi-regression model across a
//! hundred features available in their data."
//!
//! Without DAnA, the data scientist must export her table and hand-design
//! Verilog. Here she writes the update rule in the DSL, deploys, and the
//! comparison against in-database MADlib-style execution falls out.
//!
//! ```sh
//! cargo run --release --example ad_load_forecasting
//! ```

use dana::prelude::*;
use dana_ml::{metrics, CpuModel, MadlibExecutor};
use dana_storage::HeapId;
use dana_workloads::{generate, workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The firm's table: 100 features, tens of thousands of rows.
    let mut w = workload("Patient").unwrap();
    w.features = 100;
    w.tuples = 20_000;
    w.epochs = 40;
    w.learning_rate = 0.1;
    let table = generate(&w, 32 * 1024, 7)?;
    let data = table.heap.scan_batch()?;

    // --- DAnA path -----------------------------------------------------
    let mut db = Dana::default_system();
    db.create_table("ad_serving_history", table.heap.clone())?;
    db.prewarm("ad_serving_history")?;
    db.deploy(&w.spec(), "ad_serving_history")?;
    let out = db.execute("SELECT * FROM dana.linearR('ad_serving_history');")?;
    let dana_model = dana_ml::DenseModel(out.report.dense_model().to_vec());
    let dana_seconds = out.report.timing.total_seconds;

    // --- In-database software path (MADlib-class) -----------------------
    let exec = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::ssd());
    let mut pool = dana_storage::BufferPool::new(BufferPoolConfig {
        pool_bytes: 1 << 30,
        page_size: 32 * 1024,
    });
    pool.prewarm(HeapId(0), &table.heap)?;
    pool.reset_stats();
    // Per-tuple SGD needs a gentler step than the batched accelerator run.
    let cfg = TrainConfig {
        algorithm: Algorithm::Linear,
        learning_rate: 0.005,
        batch: 1,
        epochs: w.epochs,
        ..Default::default()
    };
    let madlib = exec.train(&mut pool, HeapId(0), &table.heap, &cfg)?;

    // --- Report ----------------------------------------------------------
    println!(
        "ad-load forecasting, 100 features x {} rows, {} epochs",
        w.tuples, w.epochs
    );
    println!(
        "  DAnA accelerator : {:>9.3} s   (mse {:.5})",
        dana_seconds,
        metrics::mse(&dana_model, &data).unwrap()
    );
    println!(
        "  MADlib/PostgreSQL: {:>9.3} s   (mse {:.5})",
        madlib.total_seconds,
        metrics::mse(madlib.model.as_dense(), &data).unwrap()
    );
    println!(
        "  speedup          : {:>8.1}x",
        madlib.total_seconds / dana_seconds
    );
    Ok(())
}
