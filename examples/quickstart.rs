//! Quickstart: train a linear-regression UDF on an FPGA accelerator, from
//! SQL, in a few lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dana::prelude::*;
use dana_workloads::{generate, workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A database with a training table (the "Patient" workload of the
    //    paper's Table 3, scaled for an in-memory demo).
    let mut db = Dana::default_system();
    let mut w = workload("Patient").unwrap().scaled(0.02);
    w.epochs = 30;
    let table = generate(&w, 32 * 1024, 42)?;
    println!(
        "table: {} tuples x {} features across {} pages",
        table.heap.tuple_count(),
        w.features,
        table.heap.page_count()
    );
    db.create_table("patient_data", table.heap)?;
    db.prewarm("patient_data")?; // warm-cache setting

    // 2. The UDF, written in the paper's DSL (about 15 lines of text).
    let udf = dana_dsl::zoo::linear_regression_source(w.features, 8, w.epochs);
    println!("\n--- UDF source ---\n{udf}");
    let info = db.deploy_source(&udf, "linearR", "patient_data")?;
    println!(
        "deployed: {} threads x {} clusters, {} Striders, {} engine micro-ops",
        info.num_threads, info.acs_per_thread, info.num_striders, info.micro_ops
    );
    println!(
        "--- generated Strider program ---\n{}",
        info.strider_listing
    );

    // 3. Invoke it from SQL.
    let out = db.execute("SELECT * FROM dana.linearR('patient_data');")?;
    let t = &out.report.timing;
    println!("epochs run: {}", out.report.epochs_run);
    println!(
        "simulated time: total {:.1} ms (axi {:.1} ms, striders {:.1} ms, engine {:.1} ms, io {:.1} ms)",
        t.total_seconds * 1e3,
        t.axi_seconds * 1e3,
        t.strider_seconds * 1e3,
        t.engine_seconds * 1e3,
        t.io_seconds * 1e3
    );
    let m = out.report.dense_model();
    println!("model (first 8 weights): {:?}", &m[..8.min(m.len())]);
    Ok(())
}

// Satisfy the unused-dep lint for the prelude's breadth.
#[allow(unused_imports)]
use dana_ml as _;
