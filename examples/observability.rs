//! Observability demo: watch a concurrent serving run through the
//! `SHOW STATS` and `EXPLAIN ANALYZE` surfaces.
//!
//! Four clients train different model-zoo entries at once against one
//! `DanaServer` — one of them opting into `WITH (trace = on)` so its
//! reply carries the query-lifecycle trace. Afterwards the demo prints:
//!
//! * `SHOW STATS` — the server-wide metrics snapshot (admission queue,
//!   accelerator pool busy/idle clocks, buffer pool, engine counters,
//!   sessions), rendered as the result table a client would see;
//! * `EXPLAIN ANALYZE` — one query executed with the span recorder on,
//!   its span tree rendered beside the backend-advisor comparison.
//!
//! Run with `cargo run --release --example observability`;
//! `DANA_SMOKE=1` shrinks the burst for CI.

use dana::prelude::*;
use dana_server::{DanaServer, QueryRequest, QueryResponse, ServerConfig, SystemCoreConfig};
use dana_storage::BufferPoolConfig;
use dana_workloads::{generate, workload};

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let queries_per_client: usize = if smoke { 1 } else { 3 };

    let zoo: Vec<(&str, &str, f64)> = vec![
        ("alice", "Patient", 0.02),             // linear regression
        ("bob", "Remote Sensing LR", 0.004),    // logistic regression
        ("carol", "Remote Sensing SVM", 0.004), // SVM
        ("dave", "Blog Feedback", 0.004),       // linear regression, wide
    ];

    let srv = DanaServer::start(ServerConfig {
        accelerators: 4,
        workers: 4,
        admission: Default::default(),
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 256 << 20,
                page_size: 32 * 1024,
            },
            pool_shards: 8,
            disk: DiskModel::ssd(),
        },
    });

    for (client, wname, scale) in &zoo {
        let mut w = workload(wname).unwrap().scaled(*scale);
        w.epochs = 2;
        w.merge_coef = 8;
        let table = generate(&w, 32 * 1024, 7).unwrap();
        let tname = format!("{client}_table");
        srv.create_table(&tname, table.heap).unwrap();
        srv.prewarm(&tname).unwrap();
        let mut spec = w.spec();
        spec.name = format!("{client}_udf");
        srv.deploy(&spec, &tname).unwrap();
    }

    // Concurrent burst: every client fires its queries from its own
    // thread; alice opts into a lifecycle trace on her replies.
    std::thread::scope(|scope| {
        for (client, _, _) in &zoo {
            let srv = &srv;
            scope.spawn(move || {
                let session = srv.open_session(client);
                let opts = if *client == "alice" {
                    " WITH (trace = on)"
                } else {
                    ""
                };
                for _ in 0..queries_per_client {
                    let reply = srv
                        .call(
                            session,
                            QueryRequest::Sql(format!(
                                "EXECUTE dana.{client}_udf('{client}_table'){opts};"
                            )),
                        )
                        .unwrap();
                    if let Some(trace) = &reply.trace {
                        println!(
                            "[{client}] traced reply: {} stages, sim {:.4}s",
                            trace.stages.len(),
                            trace.total_sim_seconds
                        );
                    }
                }
                let stats = srv.close_session(session).unwrap();
                println!(
                    "[{client}] {} queries, sim {:.4}s, wall {:.1}ms",
                    stats.completed,
                    stats.sim_seconds,
                    stats.wall_seconds * 1e3
                );
            });
        }
    });

    // The server-wide snapshot, exactly as a SQL client would see it.
    let session = srv.open_session("observer");
    let reply = srv
        .call(session, QueryRequest::Sql("SHOW STATS;".into()))
        .unwrap();
    let QueryResponse::Stats(snap) = &reply.response else {
        panic!("expected stats response");
    };
    println!("\nSHOW STATS;\n{}", snap.render_table());

    // One query re-run under the span recorder: the full lifecycle tree
    // plus the backend advisor's take on the same statement.
    let reply = srv
        .call(
            session,
            QueryRequest::Sql(
                "EXPLAIN ANALYZE EXECUTE dana.alice_udf('alice_table') WITH (shards = 2);".into(),
            ),
        )
        .unwrap();
    let QueryResponse::Analyzed(report) = &reply.response else {
        panic!("expected analyzed response");
    };
    println!("EXPLAIN ANALYZE EXECUTE dana.alice_udf('alice_table') WITH (shards = 2);");
    println!("{}", report.trace.render());
    if let Some(cmp) = &report.comparison {
        println!("{cmp}");
    }

    srv.close_session(session).unwrap();
    let util = srv.shutdown();
    println!(
        "pool: {} instances, busy {:.4}s, utilization {:.0}%",
        util.instances(),
        util.serial_seconds(),
        util.utilization() * 100.0
    );
}
