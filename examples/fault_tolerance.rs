//! Fault-tolerant serving end-to-end: a gang member dies mid-training
//! and the query still returns a bit-identical model.
//!
//! ```sh
//! cargo run --release --example fault_tolerance
//! ```
//!
//! A linear-regression table is trained through the SQL front door of a
//! running [`dana_server::DanaServer`], twice: once undisturbed, once
//! with a deterministic [`dana_engine::FaultPlan`] that kills gang
//! member 1 at epoch 2. The degraded run re-executes the lost shard on
//! a survivor and the PR 5 merge reproduces the clean model **bit for
//! bit** (asserted). The faulted instance walks the health machine
//! (healthy → suspect; a second strike would quarantine it), a probe
//! reinstates it, and the run closes with the `SHOW STATS('faults')`
//! table plus a deadline + panic-isolation vignette. `DANA_SMOKE=1`
//! shrinks the table for CI.

use std::sync::Arc;
use std::time::Duration;

use dana::prelude::*;
use dana_engine::FaultPlan;
use dana_server::{DanaServer, Health, QueryRequest, ServerConfig, SystemCoreConfig};
use dana_storage::page::TupleDirection;
use dana_storage::{BufferPoolConfig, HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

fn linreg_heap(n: usize, d: usize) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.5).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 7 + i * 3) % 11) as f32 - 5.0) / 5.0)
            .collect();
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (n, d) = if smoke { (30_000, 12) } else { (120_000, 12) };
    let spec = dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
        n_features: d,
        learning_rate: 0.2,
        merge_coef: 8,
        epochs: if smoke { 6 } else { 10 },
    })?;

    let srv = DanaServer::start(ServerConfig {
        accelerators: 4,
        workers: 2,
        admission: Default::default(),
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 256 << 20,
                page_size: PAGE,
            },
            pool_shards: 4,
            disk: DiskModel::ssd(),
        },
    });
    srv.create_table("t", linreg_heap(n, d))?;
    srv.prewarm("t")?;
    srv.deploy(&spec, "t")?;
    let session = srv.open_session("fault-demo");
    let sql = "SELECT * FROM dana.linearR('t') WITH (shards = 3);";

    // ---- 1. the undisturbed gang run -----------------------------------
    let clean = srv.call(session, QueryRequest::Sql(sql.into()))?;
    let clean_report = clean.try_report()?.clone();
    println!(
        "clean run:    gang {:?}, model[0][..4] = {:?}",
        clean.gang,
        &clean_report.models[0][..4]
    );

    // ---- 2. kill gang member 1 at epoch 2 ------------------------------
    srv.install_fault_plan(Some(Arc::new(FaultPlan::shard_fault(1, 2))));
    let degraded = srv.call(session, QueryRequest::Sql(sql.into()))?;
    let degraded_report = degraded.try_report()?.clone();
    srv.install_fault_plan(None);
    assert_eq!(
        degraded_report.models, clean_report.models,
        "degraded merge must be bit-identical"
    );
    assert_eq!(degraded_report.engine.cycles, clean_report.engine.cycles);
    println!(
        "faulted run:  gang {:?}, member 1 died at epoch 2 — shard re-executed on a survivor",
        degraded.gang
    );
    println!(
        "              model[0][..4] = {:?}  (bit-identical: {})",
        &degraded_report.models[0][..4],
        degraded_report.models == clean_report.models
    );

    // ---- 3. the health machine and the probe ---------------------------
    let health = srv.pool_health();
    let suspect = health
        .states
        .iter()
        .position(|h| *h != Health::Healthy)
        .expect("the faulted instance was reported");
    println!(
        "pool health:  {:?} — instance {} took the blame ({} fault reported)",
        health.states, suspect, health.faults_reported
    );

    // ---- 4. a query deadline fires while the lease stalls --------------
    srv.install_fault_plan(Some(Arc::new(FaultPlan::lease_stall(
        Duration::from_millis(30),
    ))));
    let err = srv
        .call(
            session,
            QueryRequest::Sql("SELECT * FROM dana.linearR('t') WITH (timeout_ms = 2);".into()),
        )
        .expect_err("the 2 ms deadline must expire during the 30 ms stall");
    println!("deadline:     {err}");
    assert!(err.is_deadline_exceeded());
    assert_eq!(srv.core().held_frames(), 0, "frames released on timeout");

    // ---- 5. panic isolation: the worker survives -----------------------
    srv.install_fault_plan(Some(Arc::new(FaultPlan::panic_at_epoch(0))));
    // The injected panic is caught by the worker; silence the default
    // hook so the demo log shows the typed reply, not a backtrace.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = srv
        .call(session, QueryRequest::Sql(sql.into()))
        .expect_err("the injected panic must surface as a typed reply");
    std::panic::set_hook(hook);
    println!("panic:        {err}");
    srv.install_fault_plan(None);
    srv.call(session, QueryRequest::Sql(sql.into()))?
        .try_report()?;
    println!("              …and the same workers serve the next query.");

    // ---- 6. the fault ledger -------------------------------------------
    println!("\nSHOW STATS('faults'):");
    print!("{}", srv.stats_snapshot(Some("faults")).render_table());
    Ok(())
}
