//! Hand-written Strider assembly: assemble the paper's §5.1.2-style
//! listing, run it on a real page image, and inspect the extracted records
//! and cycle counts.
//!
//! ```sh
//! cargo run --release --example strider_playground
//! ```

use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema, Tuple};
use dana_strider::{assemble, disassemble, StriderMachine};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A page holding 4-feature training tuples.
    let schema = Schema::training(4);
    let mut b = HeapFileBuilder::new(schema, 8 * 1024, TupleDirection::Ascending)?;
    for k in 0..10 {
        b.insert(&Tuple::training(
            &[k as f32, 2.0, 3.0, 4.0],
            100.0 + k as f32,
        ))?;
    }
    let heap = b.finish();
    let layout = heap.layout();

    // Hand-written extraction program (what the compiler generates for us
    // in production). Registers: %t0 = offset, %t1 = live count, %t3 = idx.
    let source = "\
\\\\ page header processing
readB 16, 2, %t1          \\\\ live tuple count
readB 24, 4, %t2          \\\\ first tuple pointer
extrB 0, 2, %t2           \\\\ its byte offset
ad %t2, 0, %t0
ad 0, 0, %t3
\\\\ tuple walk
bentr
readB %t0, %cr2, %t4      \\\\ stage one tuple (cr2 = tuple bytes)
cln 0, %cr5, 0            \\\\ strip the 16-byte tuple header
writeB 0, 0, 0            \\\\ emit user data downstream
ad %t0, %cr2, %t0
ad %t3, 1, %t3
bexit 1, %t3, %t1
";
    let program = assemble(source)?;
    println!(
        "--- program ({} instructions, 22 bits each) ---",
        program.len()
    );
    println!("{}", disassemble(&program));

    // Configuration registers: what the host loads over AXI (Fig. 5).
    let mut config = [0u64; 16];
    config[0] = layout.page_size as u64;
    config[1] = layout.capacity as u64;
    config[2] = layout.tuple_bytes as u64;
    config[5] = layout.tuple_header_bytes as u64;

    let machine = StriderMachine::new(program, config);
    let run = machine.run(heap.page_bytes(0)?)?;
    println!(
        "extracted {} records in {} cycles ({} instructions executed)",
        run.len(),
        run.cycles,
        run.executed
    );
    for (i, rec) in run.records().take(3).enumerate() {
        let vals: Vec<f32> = rec
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        println!("  record {i}: {vals:?}");
    }
    println!("  ...");
    assert_eq!(run.len(), 10);
    Ok(())
}
