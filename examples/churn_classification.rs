//! Churn classification: logistic regression *and* SVM deployed over the
//! same customer table, compared across MADlib-style, Greenplum-style, and
//! DAnA execution.
//!
//! ```sh
//! cargo run --release --example churn_classification
//! ```

use dana::prelude::*;
use dana_ml::{metrics, CpuModel, GreenplumExecutor, MadlibExecutor};
use dana_storage::HeapId;
use dana_workloads::{generate, workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut w = workload("Remote Sensing LR").unwrap().scaled(0.05); // ~29000 x 54
    w.epochs = 15;
    w.learning_rate = 0.5;
    w.merge_coef = 16;
    let table = generate(&w, 32 * 1024, 99)?;
    let data = table.heap.scan_batch()?;

    let mut db = Dana::default_system();
    db.create_table("customers", table.heap.clone())?;
    db.prewarm("customers")?;

    // Deploy BOTH classifiers against the same table.
    db.deploy(&w.spec(), "customers")?; // logisticR
    let mut svm_w = workload("Remote Sensing SVM").unwrap().scaled(0.02);
    svm_w.epochs = 15;
    svm_w.learning_rate = 0.2;
    svm_w.merge_coef = 16;
    // SVM needs ±1 labels: use its own generated table.
    let svm_table = generate(&svm_w, 32 * 1024, 99)?;
    db.create_table("customers_pm1", svm_table.heap)?;
    db.prewarm("customers_pm1")?;
    db.deploy(&svm_w.spec(), "customers_pm1")?;

    println!("deployed UDFs: {:?}", db.catalog().accelerator_names());

    let logistic = db.execute("SELECT * FROM dana.logisticR('customers');")?;
    let lm = dana_ml::DenseModel(logistic.report.dense_model().to_vec());
    println!(
        "\nlogistic regression: accuracy {:.1}%  ({} threads, {:.2} ms simulated)",
        100.0 * metrics::classification_accuracy(&lm, &data, false).unwrap(),
        logistic.report.num_threads,
        logistic.report.timing.total_seconds * 1e3
    );

    let svm = db.execute("SELECT * FROM dana.svm('customers_pm1');")?;
    println!(
        "svm:                 {} threads, {:.2} ms simulated",
        svm.report.num_threads,
        svm.report.timing.total_seconds * 1e3
    );

    // Software baselines on the logistic table.
    let cfg = TrainConfig {
        algorithm: Algorithm::Logistic,
        learning_rate: 0.5,
        batch: 1,
        epochs: w.epochs,
        ..Default::default()
    };
    let mk_pool = || {
        dana_storage::BufferPool::new(BufferPoolConfig {
            pool_bytes: 1 << 30,
            page_size: 32 * 1024,
        })
    };
    let mut pool = mk_pool();
    pool.prewarm(HeapId(0), &table.heap)?;
    let madlib = MadlibExecutor::new(CpuModel::i7_6700(), DiskModel::ssd()).train(
        &mut pool,
        HeapId(0),
        &table.heap,
        &cfg,
    )?;
    let mut pool = mk_pool();
    pool.prewarm(HeapId(0), &table.heap)?;
    let gp = GreenplumExecutor::new(CpuModel::i7_6700(), DiskModel::ssd(), 8).train(
        &mut pool,
        HeapId(0),
        &table.heap,
        &cfg,
    )?;

    println!("\n--- simulated end-to-end comparison (logistic) ---");
    println!("  MADlib/PostgreSQL : {:>9.4} s", madlib.total_seconds);
    println!("  MADlib/Greenplum-8: {:>9.4} s", gp.total_seconds);
    println!(
        "  DAnA              : {:>9.4} s",
        logistic.report.timing.total_seconds
    );
    println!(
        "  DAnA speedup      : {:>8.1}x over PostgreSQL, {:.1}x over Greenplum",
        madlib.total_seconds / logistic.report.timing.total_seconds,
        gp.total_seconds / logistic.report.timing.total_seconds
    );
    Ok(())
}
