//! The cost-based backend advisor: EXPLAIN one query at three table
//! sizes and watch the chosen execution backend cross over from the
//! native CPU tier to the simulated FPGA.
//!
//! ```sh
//! cargo run --release --example backend_advisor
//! ```
//!
//! The default system keeps the paper's behavior — every query offloads
//! to the accelerator. Installing a profile without a manual threshold
//! enables the throughput model: a fixed reconfiguration + epoch
//! overhead amortized against a higher streaming rate, so small tables
//! price out on the CPU and large tables on the FPGA. `EXPLAIN` prints
//! the per-backend comparison without running anything; `WITH
//! (backend = …)` overrides the advisor. `DANA_SMOKE=1` shrinks the
//! large table for CI.

use dana::prelude::*;
use dana_dsl::zoo::{self, Algorithm, DenseParams};
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;
const FEATURES: usize = 12;

fn dense_heap(n: usize) -> HeapFile {
    let truth: Vec<f32> = (0..FEATURES).map(|i| 0.3 * i as f32 - 0.8).collect();
    let mut b =
        HeapFileBuilder::new(Schema::training(FEATURES), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..FEATURES)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let mut db = Dana::default_system();

    let spec = zoo::spec_for(
        Algorithm::Linear,
        DenseParams {
            n_features: FEATURES,
            learning_rate: 0.1,
            merge_coef: 8,
            epochs: 8,
        },
    )?;
    db.create_table("probe", dense_heap(1_000))?;
    db.deploy(&spec, "probe")?;

    println!("=== cost-based backend advisor ===\n");

    // The stock system always offloads — the paper has no CPU tier.
    let paper = db.explain_sql("EXPLAIN SELECT * FROM dana.linearR('probe');")?;
    println!("-- default profile (paper semantics: always offload)\n{paper}");
    assert_eq!(paper.chosen, BackendKind::Fpga);

    // Enable the throughput model and learn this program's break-even.
    let profile = db.hardware_profile().with_offload_threshold(None);
    db.set_hardware_profile(profile);
    let probe = db.explain_sql("EXPLAIN SELECT * FROM dana.linearR('probe');")?;
    let break_even = probe
        .break_even_rows
        .expect("the default constants have a finite break-even");
    println!("-- throughput model enabled: break-even at ~{break_even} rows for this program\n");

    // The same query at three sizes straddling the break-even.
    let big = if smoke { 2 } else { 4 } * break_even as usize;
    let sizes = [
        ("tiny", (break_even as usize / 50).max(64)),
        ("mid", break_even as usize),
        ("big", big),
    ];
    let mut chosen = Vec::new();
    for (name, n) in sizes {
        db.create_table(name, dense_heap(n))?;
        let cmp = db.explain_sql(&format!("EXPLAIN SELECT * FROM dana.linearR('{name}');"))?;
        println!("{cmp}");
        chosen.push(cmp.chosen);
    }
    assert_eq!(chosen[0], BackendKind::Cpu, "tiny tables stay on the CPU");
    assert_eq!(
        *chosen.last().unwrap(),
        BackendKind::Fpga,
        "large tables amortize the offload"
    );

    // An explicit override beats the advisor — and EXPLAIN says so.
    let forced =
        db.explain_sql("EXPLAIN SELECT * FROM dana.linearR('tiny') WITH (backend = fpga);")?;
    assert!(forced.forced && forced.chosen == BackendKind::Fpga);
    println!("{forced}");

    // Run the tiny query on the backend the advisor picked: the CPU tier
    // reports measured wall time, not simulated cycles.
    let out = db.execute("SELECT * FROM dana.linearR('tiny');")?;
    assert_eq!(out.report.backend, BackendKind::Cpu);
    println!(
        "ran tiny on {:?}: wall {:.6}s (simulated slots all zero: {})",
        out.report.backend,
        out.report.timing.wall_seconds.unwrap_or(0.0),
        out.report.timing.total_seconds,
    );

    println!("\nadvisor crossover demonstrated — CPU below break-even, FPGA above.");
    Ok(())
}
