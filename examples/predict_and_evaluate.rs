//! The inference tier end-to-end: train → deploy → PREDICT → EVALUATE,
//! entirely in-database, for all four zoo analytics.
//!
//! ```sh
//! cargo run --release --example predict_and_evaluate
//! ```
//!
//! Each analytic is deployed (which also derives its deploy-time scoring
//! recipe), trained with `SELECT * FROM dana.<udf>(…)`, scored with
//! `PREDICT … INTO …` (materializing a real prediction table in the
//! catalog), and evaluated with `EVALUATE …` — no tuple ever leaves the
//! engine. `DANA_SMOKE=1` shrinks the tables for CI.

use dana::prelude::*;
use dana::StatementOutcome;
use dana_dsl::zoo::{self, Algorithm, DenseParams, LrmfParams};
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

fn dense_heap(n: usize, d: usize, algo: Algorithm) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.3 * i as f32 - 0.8).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let x: Vec<f32> = (0..d)
            .map(|i| (((k * 11 + i * 5) % 17) as f32 - 8.0) / 8.0)
            .collect();
        let s: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        let y = match algo {
            Algorithm::Linear => s,
            Algorithm::Logistic => (s > 0.0) as u8 as f32,
            Algorithm::Svm => {
                if s > 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            Algorithm::Lrmf => unreachable!(),
        };
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn rating_heap(n: usize, rows: usize, cols: usize) -> HeapFile {
    let mut b = HeapFileBuilder::new(Schema::rating(), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let (i, j) = ((k * 7) % rows, (k * 13) % cols);
        let r = 1.0 + ((i * 3 + j * 5) % 4) as f32;
        b.insert(&Tuple::rating(i as i32, j as i32, r)).unwrap();
    }
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let n = if smoke { 400 } else { 4000 };
    let d = 12;
    let mut db = Dana::default_system();

    println!("=== in-database inference: train → predict → evaluate ===\n");

    // ---- the three dense analytics --------------------------------------
    for algo in [Algorithm::Linear, Algorithm::Logistic, Algorithm::Svm] {
        let spec = zoo::spec_for(
            algo,
            DenseParams {
                n_features: d,
                learning_rate: 0.1,
                merge_coef: 8,
                epochs: if smoke { 4 } else { 12 },
            },
        )?;
        let udf = spec.name.clone();
        let table = format!("{udf}_data");
        let scores = format!("{udf}_scores");
        db.create_table(&table, dense_heap(n, d, algo))?;
        db.deploy(&spec, &table)?;

        // Train from SQL.
        let trained = db.execute(&format!("SELECT * FROM dana.{udf}('{table}');"))?;
        // Score from SQL: materialize a prediction table.
        let out =
            db.execute_statement(&format!("PREDICT dana.{udf}('{table}') INTO '{scores}';"))?;
        let StatementOutcome::Predict(p) = out else {
            unreachable!()
        };
        // Evaluate from SQL, on the *materialized* table: the appended
        // prediction column rides along, the label column still reads.
        let out = db.execute_statement(&format!("EVALUATE dana.{udf}('{scores}');"))?;
        let StatementOutcome::Evaluate(e) = out else {
            unreachable!()
        };
        println!(
            "{:<28} {:>6} rows → '{}' ({} pages) | {} = {:.6} | train {:.1} ms, score {:.1} ms",
            algo.name(),
            p.rows_scored,
            p.output_table,
            db.catalog().table(&scores).unwrap().page_count,
            e.metric.name(),
            e.value,
            trained.report.timing.total_seconds * 1e3,
            p.timing.total_seconds * 1e3,
        );
    }

    // ---- LRMF ------------------------------------------------------------
    let (rows, cols, rank) = (40, 30, 10);
    let spec = zoo::lrmf(LrmfParams {
        rows,
        cols,
        rank,
        learning_rate: 0.05,
        merge_coef: 4,
        epochs: if smoke { 3 } else { 10 },
    })?;
    db.create_table("ratings", rating_heap(n, rows, cols))?;
    db.deploy(&spec, "ratings")?;
    let trained = db.execute("SELECT * FROM dana.lrmf('ratings');")?;
    let out = db.execute_statement("PREDICT dana.lrmf('ratings') INTO 'rating_scores';")?;
    let StatementOutcome::Predict(p) = out else {
        unreachable!()
    };
    let out = db.execute_statement("EVALUATE dana.lrmf('rating_scores', 'lrmf_rmse');")?;
    let StatementOutcome::Evaluate(e) = out else {
        unreachable!()
    };
    println!(
        "{:<28} {:>6} rows → '{}' | {} = {:.6} | train {:.1} ms, score {:.1} ms",
        Algorithm::Lrmf.name(),
        p.rows_scored,
        p.output_table,
        e.metric.name(),
        e.value,
        trained.report.timing.total_seconds * 1e3,
        p.timing.total_seconds * 1e3,
    );

    // ---- the prediction tables are real tables ---------------------------
    println!("\ncatalog tables: {:?}", db.catalog().table_names());
    let summary = db.drop_table("linearR_scores")?;
    println!(
        "dropped 'linearR_scores': {} pages evicted",
        summary.pages_evicted
    );
    Ok(())
}

// Satisfy the unused-dep lint for the prelude's breadth.
#[allow(unused_imports)]
use dana_ml as _;
#[allow(unused_imports)]
use dana_workloads as _;
