//! Pushdown-scan demo: filtered training through the compressed scan
//! tier.
//!
//! A large linear-regression table clustered on `x0` is trained twice —
//! full-width full scan, then with a `WHERE x0 < 0.1` pushdown predicate
//! that the zone maps resolve to ~10% of the pages. The demo prints:
//!
//! * `EXPLAIN` — the cost advisor pricing the *filtered* statement: the
//!   scan term shrinks with the predicate's selectivity and carries the
//!   codec's decompress cost, so the backend comparison reflects what
//!   the pushdown scan will actually stream;
//! * the two training runs' simulated timings side by side, the
//!   filtered one showing the new `decompress_seconds` cycle-model slot;
//! * `SHOW STATS ('scan')` — pages skipped, bytes decompressed,
//!   compression ratio, selectivity — and `SHOW STATS ('buffer')`, whose
//!   resident-bytes gauge is the compression ratio's denominator.
//!
//! Run with `cargo run --release --example pushdown_scan`;
//! `DANA_SMOKE=1` shrinks the table for CI.

use dana::prelude::*;
use dana::StatementOutcome;
use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema};

const PAGE: usize = 32 * 1024;

fn clustered_heap(n: usize, d: usize) -> HeapFile {
    let truth: Vec<f32> = (0..d).map(|i| 0.2 * i as f32 - 0.7).collect();
    let mut b = HeapFileBuilder::new(Schema::training(d), PAGE, TupleDirection::Ascending).unwrap();
    for k in 0..n {
        let mut x: Vec<f32> = (0..d)
            .map(|i| (((k * 13 + i * 7) % 29) as f32 - 14.0) / 14.0)
            .collect();
        // Clustered on x0: ascending 0..1 with insertion order, so the
        // per-page zone maps give `WHERE x0 < t` a contiguous page range.
        x[0] = k as f32 / n as f32;
        let y: f32 = x.iter().zip(&truth).map(|(a, b)| a * b).sum();
        b.insert(&Tuple::training(&x, y)).unwrap();
    }
    b.finish()
}

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (n, d) = if smoke { (60_000, 12) } else { (400_000, 12) };

    let mut db = Dana::new(
        FpgaSpec::vu9p(),
        BufferPoolConfig {
            pool_bytes: 1 << 30,
            page_size: PAGE,
        },
        DiskModel::ssd(),
    );
    let heap = clustered_heap(n, d);
    let pages = heap.page_count();
    db.create_table("facts", heap).unwrap();
    let spec = dana_dsl::zoo::linear_regression(dana_dsl::zoo::DenseParams {
        n_features: d,
        learning_rate: 0.1,
        merge_coef: 8,
        epochs: 2,
    })
    .unwrap();
    db.deploy(&spec, "facts").unwrap();

    println!("=== pushdown_scan: {n} × {d} training table, {pages} pages ===\n");

    // The advisor prices the filtered statement before anything runs:
    // the scan term reflects the predicate's selectivity and the codec's
    // decompress cost.
    let filtered_sql = "SELECT * FROM dana.linearR('facts') WHERE x0 < 0.1;";
    let out = db
        .execute_statement(&format!("EXPLAIN {filtered_sql}"))
        .unwrap();
    let StatementOutcome::Explain(cmp) = out else {
        panic!("expected EXPLAIN outcome");
    };
    println!("EXPLAIN {filtered_sql}\n{cmp}\n");

    // Full scan, then the pushdown scan, both cold-cache.
    let mut train = |sql: &str| {
        db.clear_cache();
        let out = db.execute_statement(sql).unwrap();
        let StatementOutcome::Train(q) = out else {
            panic!("expected train outcome");
        };
        q.report
    };
    let full = train("SELECT * FROM dana.linearR('facts');");
    let filtered = train(filtered_sql);
    println!(
        "full scan:     sim {:.4}s over {} tuples",
        full.timing.total_seconds, n
    );
    println!(
        "pushdown scan: sim {:.4}s over {} tuples (decompress {:.6}s) -> {:.2}x",
        filtered.timing.total_seconds,
        filtered.access.tuples,
        filtered.timing.decompress_seconds,
        full.timing.total_seconds / filtered.timing.total_seconds
    );

    // The scan tier's own counters, then the buffer gauges that give the
    // compression ratio its denominator.
    for subsystem in ["scan", "buffer"] {
        let out = db
            .execute_statement(&format!("SHOW STATS ('{subsystem}');"))
            .unwrap();
        let StatementOutcome::Stats(snap) = out else {
            panic!("expected stats outcome");
        };
        println!("\nSHOW STATS ('{subsystem}');\n{}", snap.render_table());
    }
}
