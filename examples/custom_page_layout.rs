//! Programming Striders for different page layouts.
//!
//! The Strider ISA exists so one hardware design can "cater to the
//! variations in the database page organization" (§1). This example builds
//! the same table twice — ascending tuple placement (the paper's walk-by-
//! adding listing) and descending placement (stock PostgreSQL) — shows the
//! *different* generated programs, and proves both extract identical data.
//!
//! ```sh
//! cargo run --release --example custom_page_layout
//! ```

use dana_storage::page::TupleDirection;
use dana_storage::{HeapFileBuilder, Schema, Tuple};
use dana_strider::{disassemble, strider_program_for_layout, AccessEngine, AccessEngineConfig};

fn build(dir: TupleDirection) -> dana_storage::HeapFile {
    let schema = Schema::training(6);
    let mut b = HeapFileBuilder::new(schema, 8 * 1024, dir).unwrap();
    for k in 0..200 {
        let x: Vec<f32> = (0..6).map(|i| (k * 10 + i) as f32).collect();
        b.insert(&Tuple::training(&x, k as f32)).unwrap();
    }
    b.finish()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut extracted = Vec::new();
    for dir in [TupleDirection::Ascending, TupleDirection::Descending] {
        let heap = build(dir);
        let (program, config) = strider_program_for_layout(heap.layout());
        println!("=== {dir:?} layout ===");
        println!(
            "page {} B, {} tuples/page, tuple {} B, data starts at {}",
            heap.layout().page_size,
            heap.layout().capacity,
            heap.layout().tuple_bytes,
            heap.layout().data_start()
        );
        println!(
            "config registers: page_size={} tuples/page={} tuple_bytes={} header={}",
            config[0], config[1], config[2], config[5]
        );
        println!("{}", disassemble(&program));

        let engine = AccessEngine::for_table(
            *heap.layout(),
            heap.schema().clone(),
            AccessEngineConfig::new(
                4,
                dana_fpga::Clock::FPGA_150MHZ,
                dana_fpga::AxiLink::with_bandwidth(2.5e9),
            ),
        );
        let (batch, stats) = engine.extract_heap(&heap)?;
        println!(
            "extracted {} tuples into one flat batch in {} Strider cycles ({} per page)\n",
            batch.len(),
            stats.strider_cycles,
            stats.strider_cycles / stats.pages
        );
        extracted.push(batch);
    }
    assert_eq!(
        extracted[0], extracted[1],
        "both layouts yield identical tuples"
    );
    println!(
        "both layouts extract byte-identical training data — the ISA's portability claim holds"
    );
    Ok(())
}
