//! Online serving demo: point PREDICTs riding the fast path while gang
//! training churns in the background.
//!
//! One `DanaServer` hosts a deployed, trained linear model. A training
//! client keeps re-running the gang on the full table (the batch-class
//! traffic that would otherwise starve interactive work) while four
//! point clients hammer the serving tier with single-row predictions
//! through [`dana_serve::ServeTier`]:
//!
//! * repeated rows are answered from the staleness-aware prediction
//!   cache without touching the server at all;
//! * concurrent misses against the same accelerator coalesce into one
//!   SoA dispatch (watch `batch_rows` on the replies);
//! * point queries are admitted `Interactive`, so they overtake the
//!   queued training gangs instead of waiting behind them.
//!
//! The demo closes with the SQL VALUES form of the same fast path and
//! the `SHOW STATS ('serving')` counter table.
//!
//! Run with `cargo run --release --example online_serving`;
//! `DANA_SMOKE=1` shrinks the burst for CI.

use std::sync::Arc;
use std::time::Duration;

use dana::prelude::*;
use dana_serve::{BatcherConfig, CacheConfig, ServeConfig, ServeTier};
use dana_server::{DanaServer, QueryRequest, ServerConfig, SystemCoreConfig};
use dana_storage::BufferPoolConfig;
use dana_workloads::{generate, workload};

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let (point_clients, points_per_client) = if smoke { (2, 20) } else { (4, 200) };
    let training_runs = if smoke { 1 } else { 3 };

    let srv = Arc::new(DanaServer::start(ServerConfig {
        accelerators: 2,
        workers: 2,
        admission: Default::default(),
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 128 << 20,
                page_size: 32 * 1024,
            },
            pool_shards: 8,
            disk: DiskModel::ssd(),
        },
    }));

    // One deployed, trained linear model over the Patient workload.
    let mut w = workload("Patient").unwrap().scaled(0.02);
    w.epochs = 2;
    w.merge_coef = 8;
    let table = generate(&w, 32 * 1024, 7).unwrap();
    srv.create_table("patients", table.heap).unwrap();
    srv.prewarm("patients").unwrap();
    let mut spec = w.spec();
    spec.name = "scorer".to_string();
    srv.deploy(&spec, "patients").unwrap();
    let admin = srv.open_session("admin");
    srv.call(
        admin,
        QueryRequest::Sql("EXECUTE dana.scorer('patients');".into()),
    )
    .unwrap();

    // The serving tier: default cache, a 300µs coalescing window.
    let tier = Arc::new(ServeTier::new(
        Arc::clone(&srv),
        ServeConfig {
            cache: CacheConfig::default(),
            batcher: BatcherConfig {
                max_batch: 16,
                window: Duration::from_micros(300),
            },
        },
    ));
    let rows: Vec<Vec<f32>> = srv
        .core()
        .table_snapshot("patients")
        .unwrap()
        .scan_batch()
        .unwrap()
        .rows()
        .take(32)
        .map(|r| r.to_vec())
        .collect();

    std::thread::scope(|scope| {
        // Batch-class background traffic: gang training on the full
        // table, repeatedly.
        scope.spawn(|| {
            let session = srv.open_session("trainer");
            for _ in 0..training_runs {
                srv.call(
                    session,
                    QueryRequest::Sql("EXECUTE dana.scorer('patients') WITH (shards = 2);".into()),
                )
                .unwrap();
            }
            let stats = srv.close_session(session).unwrap();
            println!(
                "[trainer] {} gang runs, sim {:.3}s",
                stats.completed, stats.sim_seconds
            );
        });

        // Interactive point clients: each loops over a small working
        // set, so later iterations hit the cache; concurrent misses
        // coalesce.
        for c in 0..point_clients {
            let tier = Arc::clone(&tier);
            let srv = Arc::clone(&srv);
            let rows = &rows;
            scope.spawn(move || {
                let session = srv.open_session(&format!("point-{c}"));
                let (mut hits, mut max_batch) = (0usize, 0usize);
                for i in 0..points_per_client {
                    let row = &rows[(c + i * 3) % rows.len()];
                    let reply = tier.predict_point(session, "scorer", row).unwrap();
                    hits += reply.cached as usize;
                    max_batch = max_batch.max(reply.batch_rows);
                }
                println!(
                    "[point-{c}] {points_per_client} predictions: {hits} cache hits, \
                     widest shared dispatch {max_batch} rows"
                );
            });
        }
    });

    // The same fast path, spelled in SQL (the echo truncates the
    // 300-odd feature literals; the statement carries them all).
    let vals: Vec<String> = rows[0].iter().map(|v| format!("{v}")).collect();
    let sql = format!("PREDICT dana.scorer(VALUES ({}));", vals.join(", "));
    let reply = srv.call(admin, QueryRequest::Sql(sql)).unwrap();
    let report = reply.point_report();
    println!(
        "\nPREDICT dana.scorer(VALUES ({}, … {} more));\n-> {:.6} ({:?} tier)",
        vals[..3.min(vals.len())].join(", "),
        vals.len().saturating_sub(3),
        report.predictions[0],
        report.backend
    );

    // The serving tier's counter surface.
    let reply = srv
        .call(admin, QueryRequest::Sql("SHOW STATS ('serving');".into()))
        .unwrap();
    println!(
        "\nSHOW STATS ('serving');\n{}",
        reply.stats().render_table()
    );

    srv.close_session(admin).unwrap();
}
