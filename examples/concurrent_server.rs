//! Concurrent serving demo: N clients training different model-zoo
//! entries at once against one `DanaServer`.
//!
//! Each client opens a session, deploys its own UDF over its own table
//! (linear regression, logistic regression, SVM, ...), and fires a burst
//! of training queries. The server admits them, schedules them over a
//! 4-instance accelerator pool, and the demo prints per-session latency
//! plus the pool's simulated utilization.
//!
//! Run with `cargo run --release --example concurrent_server`;
//! `DANA_SMOKE=1` shrinks the burst for CI.

use std::time::Instant;

use dana::prelude::*;
use dana_server::{DanaServer, QueryRequest, ServerConfig, SystemCoreConfig};
use dana_storage::BufferPoolConfig;
use dana_workloads::{generate, workload};

fn main() {
    let smoke = std::env::var("DANA_SMOKE").is_ok();
    let queries_per_client: usize = if smoke { 1 } else { 4 };

    // Four clients, four different model-zoo entries.
    let zoo: Vec<(&str, &str, f64)> = vec![
        ("alice", "Patient", 0.02),             // linear regression
        ("bob", "Remote Sensing LR", 0.004),    // logistic regression
        ("carol", "Remote Sensing SVM", 0.004), // SVM
        ("dave", "Blog Feedback", 0.004),       // linear regression, wide
    ];

    let srv = DanaServer::start(ServerConfig {
        accelerators: 4,
        workers: 4,
        admission: Default::default(),
        default_timeout_ms: None,
        core: SystemCoreConfig {
            fpga: FpgaSpec::vu9p(),
            pool: BufferPoolConfig {
                pool_bytes: 256 << 20,
                page_size: 32 * 1024,
            },
            pool_shards: 8,
            disk: DiskModel::ssd(),
        },
    });

    // DDL: every client's table + accelerator, deployed up front.
    let mut specs = Vec::new();
    for (client, wname, scale) in &zoo {
        let mut w = workload(wname).unwrap().scaled(*scale);
        w.epochs = 2;
        w.merge_coef = 8;
        let table = generate(&w, 32 * 1024, 99).unwrap();
        let tname = format!("{client}_table");
        srv.create_table(&tname, table.heap).unwrap();
        srv.prewarm(&tname).unwrap();
        let mut spec = w.spec();
        spec.name = format!("{client}_udf");
        let info = srv.deploy(&spec, &tname).unwrap();
        println!(
            "deployed {:<12} over {:<18} ({} threads, {} Striders)",
            spec.name, wname, info.num_threads, info.num_striders
        );
        specs.push((client.to_string(), tname, spec.name.clone()));
    }

    // Clients: concurrent bursts of SQL queries.
    println!(
        "\n{queries_per_client} quer{} per client, 4 clients, pool of 4 ...",
        if queries_per_client == 1 { "y" } else { "ies" }
    );
    let wall = Instant::now();
    crossbeam::thread::scope(|s| {
        let srv = &srv;
        for (client, _table, udf) in &specs {
            let sql = format!("SELECT * FROM dana.{udf}('{client}_table');");
            s.spawn(move |_| {
                let session = srv.open_session(client);
                for _ in 0..queries_per_client {
                    let reply = srv.call(session, QueryRequest::Sql(sql.clone())).unwrap();
                    assert!(!reply.report().models.is_empty());
                }
            });
        }
    })
    .unwrap();
    let wall_s = wall.elapsed().as_secs_f64();

    // Per-session accounting.
    println!("\nsession      queries   sim accel time   host exec time   max query");
    for (_, stats) in srv.all_session_stats() {
        println!(
            "{:<12} {:>7}   {:>11.4}s   {:>11.4}s   {:>8.4}s",
            stats.name,
            stats.completed,
            stats.sim_seconds,
            stats.wall_seconds,
            stats.max_wall_seconds
        );
    }

    let queue = srv.queue_stats();
    let util = srv.shutdown();
    println!(
        "\nadmitted {} / rejected {} queries; host wall {:.2}s",
        queue.admitted, queue.rejected, wall_s
    );
    println!(
        "pool: {} instances, makespan {:.3}s (serial would be {:.3}s), {:.2}x speedup, {:.1}% utilization",
        util.instances(),
        util.makespan_seconds(),
        util.serial_seconds(),
        util.speedup_vs_serial(),
        util.utilization() * 100.0
    );
    for (i, (busy, leases)) in util.busy_seconds.iter().zip(&util.leases).enumerate() {
        println!("  accelerator {i}: {leases} queries, {busy:.3}s simulated busy");
    }
}
