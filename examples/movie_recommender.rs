//! Movie recommendation with low-rank matrix factorization — the paper's
//! Netflix workload at demo scale. Shows the row-indexed model path
//! (lookup/setModelRow) end to end, then recommends unseen movies.
//!
//! ```sh
//! cargo run --release --example movie_recommender
//! ```

use dana::prelude::*;
use dana_ml::metrics;
use dana_workloads::{generate, workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (users, movies, rank) = (120usize, 80usize, 10usize);
    let mut w = workload("Netflix").unwrap();
    w.lrmf = Some((users, movies, rank));
    w.tuples = 15_000;
    w.epochs = 30;
    w.merge_coef = 8;
    w.learning_rate = 0.05;

    let table = generate(&w, 32 * 1024, 2024)?;
    let ratings = table.heap.scan_batch()?;

    let mut db = Dana::default_system();
    db.create_table("ratings", table.heap)?;
    db.prewarm("ratings")?;

    // The LRMF UDF in DSL text: lookup() gathers the user/movie factor
    // rows; setModelRow() scatters the updates back.
    let udf = dana_dsl::zoo::lrmf_source(users, movies, rank, 8, w.epochs);
    println!("--- LRMF UDF ---\n{udf}");
    db.deploy_source(&udf, "lrmfA", "ratings")?;
    let out = db.execute("SELECT * FROM dana.lrmfA('ratings');")?;

    let model = dana_ml::LrmfModel {
        l: out.report.model("L").unwrap().to_vec(),
        r: out.report.model("R").unwrap().to_vec(),
        rows: users,
        cols: movies,
        rank,
    };
    let rmse = metrics::lrmf_rmse(&model, &ratings).unwrap();
    println!(
        "trained on {} ratings, {} epochs: rmse {:.3} (simulated {:.1} ms, {} threads)",
        ratings.len(),
        out.report.epochs_run,
        rmse,
        out.report.timing.total_seconds * 1e3,
        out.report.num_threads
    );

    // Recommend: for user 7, rank unseen movies by predicted rating.
    let user = 7usize;
    let seen: Vec<usize> = ratings
        .rows()
        .filter(|t| t[0] as usize == user)
        .map(|t| t[1] as usize)
        .collect();
    let mut predictions: Vec<(usize, f32)> = (0..movies)
        .filter(|m| !seen.contains(m))
        .map(|m| (m, model.predict(user, m)))
        .collect();
    predictions.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\ntop 5 recommendations for user {user} (movie id, predicted rating):");
    for (m, score) in predictions.iter().take(5) {
        println!("  movie {m:>3}  {score:+.3}");
    }
    Ok(())
}
